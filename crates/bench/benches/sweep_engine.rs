//! Sweep-engine throughput: the Fig. 9 TF0 aspect-ratio study evaluated
//! serially (`jobs = 1`) versus on the full worker pool, plus a warm-cache
//! rerun where every point is a memoization hit.
//!
//! The cold comparison is the headline: on a multi-core host the parallel
//! run should finish the same 15-point plan at least ~2x faster than the
//! serial one, while `sweep_is_deterministic_and_counts_cache_hits` (CLI
//! e2e) and `parallel_output_is_byte_identical_to_serial` (core) pin down
//! that the extra workers never change a byte of output.
//!
//! Cold iterations clear the process-global layer-result cache first —
//! otherwise the second "cold" sample would answer every layer from
//! memory and measure nothing.
//!
//! Besides the criterion groups, `main` takes one wall-clock measurement
//! of each cache tier (cold / traced-cold / layer-warm / point-warm) and
//! writes it to
//! `BENCH_sweep.json` at the repo root together with the demand-stream
//! compression ratio, the layer-cache hit rate, the explore tier
//! (stage-0 candidates/sec over a 10^5-point plan, plus end-to-end
//! analytical-guided exploration of the Fig. 9 plan against its
//! exhaustive cold sweep), a tail-latency tier (p50/p99 per-point
//! latency, steal count and per-worker busy fractions from the
//! work-stealing executor), and a kernel tier (ns/run through the
//! data-oriented run-merge / buffer-epoch / reuse-profile kernels), so
//! perf regressions show up in review as a diff of committed numbers.

use std::time::Instant;

use criterion::{criterion_group, BatchSize, Criterion};

use scalesim::sweep::{AspectAxis, DataflowChoice, SweepEngine, SweepPlan, SweepWorkload};
use scalesim::{layer_cache, telemetry_names, Dataflow, ExploreEngine, ExploreOptions};
use scalesim_memory::{AddrRuns, ReuseProfile, RunBuffer};
use scalesim_topology::{Layer, Topology};

/// The Fig. 9 search-space study for TF0 at a 2^10 MAC budget: every
/// power-of-two partition count crossed with every aspect ratio down to
/// the 8x8 floor (15 distinct points). Small SRAM keeps one point cheap
/// enough to sample.
fn fig9_tf0_plan() -> SweepPlan {
    SweepPlan::parse(
        "name = fig9-tf0\n\
         workload = TF0\n\
         budget = 2^10\n\
         aspect = all\n\
         config.IfmapSramSz = 64\n\
         config.FilterSramSz = 64\n\
         config.OfmapSramSz = 32\n",
    )
    .expect("the Fig. 9 plan parses")
}

/// A >= 10^5-candidate plan for the explore stage-0 throughput tier: 251
/// synthetic GEMM workloads x four budgets x all aspect ratios x all four
/// dataflow choices (the same shape as the `explore_pipeline` integration
/// test). Only the analytical stages run over it, so size is free.
fn stage0_plan() -> SweepPlan {
    let mut plan = SweepPlan::new("explore-stage0");
    plan.base.dram_bandwidth = Some(16.0);
    for i in 0..251u64 {
        let m = 150 + (i % 50) * 4;
        let n = 150 + ((i * 13) % 50) * 4;
        let k = 8 + (i % 7) * 4;
        let label = format!("G{i:03}");
        plan.workloads.push(SweepWorkload {
            label: label.clone(),
            topology: Topology::from_layers(&label, vec![Layer::gemm("l0", m, k, n)]),
        });
    }
    plan.budgets = vec![1 << 10, 1 << 11, 1 << 12, 1 << 13];
    plan.aspects = AspectAxis::All;
    plan.dataflows = vec![
        DataflowChoice::Fixed(Dataflow::OutputStationary),
        DataflowChoice::Fixed(Dataflow::WeightStationary),
        DataflowChoice::Fixed(Dataflow::InputStationary),
        DataflowChoice::Auto,
    ];
    plan
}

fn bench_sweep_engine(c: &mut Criterion) {
    let plan = fig9_tf0_plan();
    let points = plan.expand().expect("plan expands").len();
    assert_eq!(points, 15, "the study is 15 distinct points");
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    // The engine's LRU is sharded 16 ways with per-shard eviction, so the
    // capacity must leave per-shard headroom (256 / 16 = 16 >= 15 points)
    // for the warm rerun to be all hits even if every key lands in one
    // shard.
    let cache_capacity = 256;

    let mut group = c.benchmark_group("sweep_engine_fig9_tf0");
    group.sample_size(10);

    // Cold cache: a fresh engine per iteration and an emptied layer-result
    // cache, so every point simulates from scratch.
    group.bench_function("cold_jobs_1", |b| {
        b.iter_batched(
            || {
                layer_cache::clear();
                SweepEngine::new(cache_capacity)
            },
            |engine| {
                let outcome = engine.run(&plan, 1).expect("sweep runs");
                assert_eq!(outcome.simulations as usize, points);
                outcome
            },
            BatchSize::PerIteration,
        )
    });
    // On a single-hardware-thread host the pool run is the serial run;
    // skip the duplicate measurement.
    if jobs > 1 {
        group.bench_function(format!("cold_jobs_{jobs}"), |b| {
            b.iter_batched(
                || {
                    layer_cache::clear();
                    SweepEngine::new(cache_capacity)
                },
                |engine| {
                    let outcome = engine.run(&plan, jobs).expect("sweep runs");
                    assert_eq!(outcome.simulations as usize, points);
                    outcome
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Warm cache: one shared engine already holds every result, so reruns
    // measure pure memoization overhead (hashing + LRU lookups).
    let engine = SweepEngine::new(cache_capacity);
    engine.run(&plan, jobs).expect("warm-up sweep runs");
    group.bench_function("warm_rerun", |b| {
        b.iter(|| {
            let outcome = engine.run(&plan, jobs).expect("sweep runs");
            assert_eq!(outcome.simulations, 0, "warm reruns must be all hits");
            assert_eq!(outcome.cache_hits as usize, points);
            outcome
        })
    });
    group.finish();

    // Explore stage 0: analytical prediction + Pareto-band pruning over
    // the 10^5-candidate plan — no simulation, pure cost-model throughput.
    let big = stage0_plan();
    let mut group = c.benchmark_group("explore_stage0");
    group.sample_size(10);
    group.bench_function("prune_100k_candidates", |b| {
        let engine = ExploreEngine::new(64);
        b.iter(|| {
            let pruned = engine.prune(&big, 10.0).expect("prune runs");
            assert!(pruned.candidates >= 100_000);
            pruned.survivors.len()
        })
    });
    group.finish();
}

/// Kernel tier: nanoseconds per *run* through each data-oriented hot-path
/// kernel, on a fig9-shaped synthetic stream (runs of 16-64 elements over
/// a bounded window with periodic revisits). The per-kernel comparisons
/// against their scalar twins live in the `kernels` criterion bench; this
/// single number per kernel goes into `BENCH_sweep.json` so regressions
/// show up in review.
fn kernel_tier() -> (f64, f64, f64) {
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    let runs = 4096usize;
    let window = 1u64 << 16;
    let mut stream = AddrRuns::with_capacity(runs);
    for i in 0..runs {
        let start = if i % 5 == 4 {
            next() % window
        } else {
            (i as u64 * 48) % window
        };
        stream.push(start, 16 + next() % 48);
    }
    let total_runs = stream.run_count() as f64;

    let time_per_run = |mut body: Box<dyn FnMut() -> u64>| -> f64 {
        let iters = 64u32;
        let mut sink = 0u64;
        let started = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(body());
        }
        let nanos = started.elapsed().as_nanos() as f64;
        std::hint::black_box(sink);
        nanos / (iters as f64 * total_runs)
    };

    let merge_src = stream.clone();
    let run_merge_ns = time_per_run(Box::new(move || {
        let mut acc = AddrRuns::new();
        acc.extend_runs(&merge_src);
        acc.element_count()
    }));
    let epoch_src = stream.clone();
    let epoch_ns = time_per_run(Box::new(move || {
        let mut buf = RunBuffer::new(window / 2);
        buf.epoch(&epoch_src).misses
    }));
    let reuse_src = stream.clone();
    let reuse_ns = time_per_run(Box::new(move || {
        ReuseProfile::from_runs(&reuse_src).total_accesses()
    }));
    (run_merge_ns, epoch_ns, reuse_ns)
}

/// One timed pass per cache tier, written as machine-readable JSON.
fn write_bench_json() {
    let registry = scalesim_telemetry::global();
    let counter = |name: &str| registry.counter_value(name, &[]).unwrap_or(0);
    let plan = fig9_tf0_plan();
    let points = plan.expand().expect("plan expands").len();
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    // Tier 0 — cold: nothing cached anywhere; every layer walks the
    // run-compressed demand streams. Also the window we measure the
    // element/run compression ratio over.
    layer_cache::clear();
    let engine = SweepEngine::new(256);
    let elements_before = counter(telemetry_names::DEMAND_ELEMENTS);
    let runs_before = counter(telemetry_names::DEMAND_RUNS);
    let started = Instant::now();
    let cold_outcome = engine.run(&plan, jobs).expect("cold sweep runs");
    let cold_seconds = started.elapsed().as_secs_f64();
    let demand_elements = counter(telemetry_names::DEMAND_ELEMENTS) - elements_before;
    let demand_runs = counter(telemetry_names::DEMAND_RUNS) - runs_before;

    // Tail-latency tier: per-point wall latency (first layer task started
    // to report assembled) under the work-stealing executor, plus how busy
    // each worker stayed. Unlucky static scheduling shows up here as a fat
    // p99 and idle workers; stealing is supposed to keep both flat.
    let mut latencies = cold_outcome.point_latencies_micros.clone();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    let tail_p50_micros = percentile(50.0);
    let tail_p99_micros = percentile(99.0);
    let exec_steals = cold_outcome.exec.steals;
    let worker_busy = cold_outcome
        .exec
        .worker_busy
        .iter()
        .map(|b| format!("{b:.3}"))
        .collect::<Vec<_>>()
        .join(", ");

    // Tier 0b — traced cold: the same cold sweep with the trace ring
    // installed and recording, so the span overhead (clock reads + ring
    // slots per layer/phase) shows up as a diff against `cold_seconds`.
    // Recording is switched off again before the remaining tiers so they
    // measure the default disabled path (one relaxed atomic load per span).
    layer_cache::clear();
    scalesim_telemetry::trace::install(scalesim_telemetry::trace::DEFAULT_CAPACITY);
    scalesim_telemetry::trace::set_enabled(true);
    let engine = SweepEngine::new(256);
    let started = Instant::now();
    engine.run(&plan, jobs).expect("traced cold sweep runs");
    let traced_cold_seconds = started.elapsed().as_secs_f64();
    scalesim_telemetry::trace::set_enabled(false);
    scalesim_telemetry::trace::clear();

    // Tier 1 — layer-warm: a fresh engine (empty point cache) over a warm
    // layer cache; every simulation is a layer-cache hit.
    let engine = SweepEngine::new(256);
    let hits_before = counter(telemetry_names::LAYER_CACHE_HITS);
    let misses_before = counter(telemetry_names::LAYER_CACHE_MISSES);
    let started = Instant::now();
    engine.run(&plan, jobs).expect("layer-warm sweep runs");
    let layer_warm_seconds = started.elapsed().as_secs_f64();
    let hits = counter(telemetry_names::LAYER_CACHE_HITS) - hits_before;
    let misses = counter(telemetry_names::LAYER_CACHE_MISSES) - misses_before;

    // Tier 2 — point-warm: the same engine again; the sweep's own result
    // cache answers and `run_layer` is never reached.
    let started = Instant::now();
    let outcome = engine.run(&plan, jobs).expect("point-warm sweep runs");
    let point_warm_seconds = started.elapsed().as_secs_f64();
    assert_eq!(outcome.simulations, 0, "point-warm rerun must be all hits");

    // Explore tier A — stage-0 throughput: analytical prediction + pruning
    // over a >= 10^5-candidate plan, in candidates per second.
    let big = stage0_plan();
    let explorer = ExploreEngine::new(64);
    let pruned = explorer.prune(&big, 10.0).expect("stage-0 prune runs");
    let stage0_candidates = pruned.candidates;
    let stage0_seconds = pruned.analytical_seconds + pruned.prune_seconds;
    let stage0_rate = stage0_candidates as f64 / stage0_seconds.max(1e-9);

    // Explore tier B — end-to-end: analytical-guided exploration of the
    // Fig. 9 plan from a cold cache, against the exhaustive cold sweep of
    // the same plan measured above.
    layer_cache::clear();
    let explorer = ExploreEngine::new(256);
    let started = Instant::now();
    let outcome = explorer
        .run(
            &plan,
            &ExploreOptions {
                jobs,
                ..ExploreOptions::default()
            },
        )
        .expect("explore runs");
    let explore_cold_seconds = started.elapsed().as_secs_f64();
    let explore_simulated = outcome.simulated;

    // Kernel tier: ns/run through each data-oriented hot-path kernel.
    let (kernel_run_merge_ns, kernel_epoch_ns, kernel_reuse_ns) = kernel_tier();

    let compression = demand_elements as f64 / (demand_runs.max(1)) as f64;
    let hit_rate = hits as f64 / ((hits + misses).max(1)) as f64;
    let json = format!(
        "{{\n  \"plan\": \"fig9-tf0\",\n  \"points\": {points},\n  \"jobs\": {jobs},\n  \
         \"cold_seconds\": {cold_seconds:.6},\n  \
         \"tail_p50_micros\": {tail_p50_micros},\n  \
         \"tail_p99_micros\": {tail_p99_micros},\n  \
         \"exec_steals\": {exec_steals},\n  \
         \"worker_busy\": [{worker_busy}],\n  \
         \"traced_cold_seconds\": {traced_cold_seconds:.6},\n  \
         \"layer_warm_seconds\": {layer_warm_seconds:.6},\n  \
         \"point_warm_seconds\": {point_warm_seconds:.6},\n  \
         \"demand_elements\": {demand_elements},\n  \
         \"demand_runs\": {demand_runs},\n  \
         \"demand_compression_ratio\": {compression:.2},\n  \
         \"layer_cache_hit_rate\": {hit_rate:.4},\n  \
         \"explore_stage0_candidates\": {stage0_candidates},\n  \
         \"explore_stage0_candidates_per_sec\": {stage0_rate:.0},\n  \
         \"explore_cold_seconds\": {explore_cold_seconds:.6},\n  \
         \"explore_simulated\": {explore_simulated},\n  \
         \"exhaustive_cold_seconds\": {cold_seconds:.6},\n  \
         \"kernel_run_merge_ns_per_run\": {kernel_run_merge_ns:.2},\n  \
         \"kernel_buffer_epoch_ns_per_run\": {kernel_epoch_ns:.2},\n  \
         \"kernel_reuse_profile_ns_per_run\": {kernel_reuse_ns:.2}\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_sweep_engine);

fn main() {
    benches();
    write_bench_json();
}
