//! Sweep-engine throughput: the Fig. 9 TF0 aspect-ratio study evaluated
//! serially (`jobs = 1`) versus on the full worker pool, plus a warm-cache
//! rerun where every point is a memoization hit.
//!
//! The cold comparison is the headline: on a multi-core host the parallel
//! run should finish the same 15-point plan at least ~2x faster than the
//! serial one, while `sweep_is_deterministic_and_counts_cache_hits` (CLI
//! e2e) and `parallel_output_is_byte_identical_to_serial` (core) pin down
//! that the extra workers never change a byte of output.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use scalesim::sweep::{SweepEngine, SweepPlan};

/// The Fig. 9 search-space study for TF0 at a 2^10 MAC budget: every
/// power-of-two partition count crossed with every aspect ratio down to
/// the 8x8 floor (15 distinct points). Small SRAM keeps one point cheap
/// enough to sample.
fn fig9_tf0_plan() -> SweepPlan {
    SweepPlan::parse(
        "name = fig9-tf0\n\
         workload = TF0\n\
         budget = 2^10\n\
         aspect = all\n\
         config.IfmapSramSz = 64\n\
         config.FilterSramSz = 64\n\
         config.OfmapSramSz = 32\n",
    )
    .expect("the Fig. 9 plan parses")
}

fn bench_sweep_engine(c: &mut Criterion) {
    let plan = fig9_tf0_plan();
    let points = plan.expand().expect("plan expands").len();
    assert_eq!(points, 15, "the study is 15 distinct points");
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    // The engine's LRU is sharded 16 ways with per-shard eviction, so the
    // capacity must leave per-shard headroom (256 / 16 = 16 >= 15 points)
    // for the warm rerun to be all hits even if every key lands in one
    // shard.
    let cache_capacity = 256;

    let mut group = c.benchmark_group("sweep_engine_fig9_tf0");
    group.sample_size(10);

    // Cold cache: a fresh engine per iteration, so every point simulates.
    group.bench_function("cold_jobs_1", |b| {
        b.iter_batched(
            || SweepEngine::new(cache_capacity),
            |engine| {
                let outcome = engine.run(&plan, 1).expect("sweep runs");
                assert_eq!(outcome.simulations as usize, points);
                outcome
            },
            BatchSize::PerIteration,
        )
    });
    // On a single-hardware-thread host the pool run is the serial run;
    // skip the duplicate measurement.
    if jobs > 1 {
        group.bench_function(format!("cold_jobs_{jobs}"), |b| {
            b.iter_batched(
                || SweepEngine::new(cache_capacity),
                |engine| {
                    let outcome = engine.run(&plan, jobs).expect("sweep runs");
                    assert_eq!(outcome.simulations as usize, points);
                    outcome
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Warm cache: one shared engine already holds every result, so reruns
    // measure pure memoization overhead (hashing + LRU lookups).
    let engine = SweepEngine::new(cache_capacity);
    engine.run(&plan, jobs).expect("warm-up sweep runs");
    group.bench_function("warm_rerun", |b| {
        b.iter(|| {
            let outcome = engine.run(&plan, jobs).expect("sweep runs");
            assert_eq!(outcome.simulations, 0, "warm reruns must be all hits");
            assert_eq!(outcome.cache_hits as usize, points);
            outcome
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engine);
criterion_main!(benches);
