//! Trace-engine throughput: events generated per second, per dataflow,
//! plus the closed-form `analyze` path used by design-space sweeps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_memory::{GemmAddressMap, RegionOffsets};
use scalesim_systolic::{analyze, simulate, ArrayShape, CountingSink, Dataflow};
use scalesim_topology::GemmShape;

fn bench_trace_engines(c: &mut Criterion) {
    let shape = GemmShape::new(256, 64, 256);
    let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
    let array = ArrayShape::square(32);

    let mut group = c.benchmark_group("trace_engine");
    for df in Dataflow::ALL {
        let dims = shape.project(df);
        group.bench_function(df.mnemonic(), |b| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                simulate(black_box(&dims), array, &map, &mut sink);
                black_box(sink.counts())
            })
        });
    }
    group.finish();
}

fn bench_analyze(c: &mut Criterion) {
    // The closed-form report used inside sweeps: must be microseconds.
    let dims = GemmShape::new(31999, 84, 1024).project(Dataflow::OutputStationary);
    c.bench_function("analyze_tf0_128x128", |b| {
        b.iter(|| black_box(analyze(black_box(&dims), ArrayShape::square(128))))
    });
}

criterion_group!(benches, bench_trace_engines, bench_analyze);
criterion_main!(benches);
