//! Hot-path kernel microbenches: the data-oriented SoA kernels against
//! their scalar twins, at the granularity the simulator actually calls
//! them — per run, not per element.
//!
//! Three tiers, matching the `kernel_*` keys in `BENCH_sweep.json`:
//!
//! * **run-merge** — `AddrRuns::extend_runs` (one boundary check + two
//!   memcpys) vs the per-run push loop, and `IntervalSet::insert_with_gaps`
//!   (fused probe/gap-walk/union) vs the `BTreeMap` twin.
//! * **buffer epoch** — `RunBuffer::epoch` span-batched FIFO miss
//!   classification vs `DoubleBuffer::epoch` walking the same stream
//!   element by element.
//! * **reuse profile** — batched `ReuseProfile::from_runs` vs the
//!   element-walk `from_demands`.
//!
//! All inputs come from a fixed LCG so runs are reproducible; stream
//! shapes mimic the fig9 sweep (runs of ~16-64 elements, moderate reuse).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_memory::scalar::{extend_runs_scalar, ScalarIntervalSet};
use scalesim_memory::{AddrRuns, DoubleBuffer, IntervalSet, ReuseProfile, RunBuffer};

/// Deterministic address-stream generator (LCG, fixed seed).
struct Lcg(u64);

impl Lcg {
    fn new() -> Self {
        Lcg(0x2545F4914F6CDD1D)
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A demand stream of `runs` runs with fig9-like shape: mostly ascending
/// spans of 16-64 elements over a bounded window, with periodic re-visits
/// so buffers and reuse profiles see real hits.
fn synthetic_stream(runs: usize, window: u64) -> AddrRuns {
    let mut lcg = Lcg::new();
    let mut out = AddrRuns::with_capacity(runs);
    for i in 0..runs {
        let start = if i % 5 == 4 {
            // Revisit: jump back into the window already touched.
            lcg.next() % window
        } else {
            (i as u64 * 48) % window
        };
        let len = 16 + lcg.next() % 48;
        out.push(start, len);
    }
    out
}

/// Random half-open spans for the interval-set union benchmark.
fn synthetic_spans(n: usize, window: u64) -> Vec<(u64, u64)> {
    let mut lcg = Lcg::new();
    (0..n)
        .map(|_| {
            let s = lcg.next() % window;
            (s, s + 1 + lcg.next() % 64)
        })
        .collect()
}

fn bench_run_merge(c: &mut Criterion) {
    let chunks: Vec<AddrRuns> = (0..64).map(|_| synthetic_stream(256, 1 << 20)).collect();
    let mut group = c.benchmark_group("kernel_run_merge");
    group.bench_function("extend_runs_soa", |b| {
        b.iter(|| {
            let mut acc = AddrRuns::new();
            for chunk in &chunks {
                acc.extend_runs(black_box(chunk));
            }
            acc.element_count()
        })
    });
    group.bench_function("extend_runs_scalar", |b| {
        b.iter(|| {
            let mut acc = AddrRuns::new();
            for chunk in &chunks {
                extend_runs_scalar(&mut acc, black_box(chunk));
            }
            acc.element_count()
        })
    });

    let spans = synthetic_spans(4096, 1 << 18);
    group.bench_function("insert_with_gaps_soa", |b| {
        b.iter(|| {
            let mut set = IntervalSet::new();
            let mut covered = 0;
            for &(s, e) in black_box(&spans) {
                set.insert_with_gaps(s, e, |gs, ge| covered += ge - gs);
            }
            covered
        })
    });
    group.bench_function("insert_with_gaps_scalar", |b| {
        b.iter(|| {
            let mut set = ScalarIntervalSet::new();
            let mut covered = 0;
            for &(s, e) in black_box(&spans) {
                set.insert_with_gaps(s, e, |gs, ge| covered += ge - gs);
            }
            covered
        })
    });
    group.finish();
}

fn bench_buffer_epoch(c: &mut Criterion) {
    // ~64 epochs of 256 runs each against a buffer holding half the window,
    // so every epoch mixes hits, misses, and FIFO evictions.
    let epochs: Vec<AddrRuns> = (0..64).map(|_| synthetic_stream(256, 1 << 16)).collect();
    let capacity = 1u64 << 15;
    let mut group = c.benchmark_group("kernel_buffer_epoch");
    group.bench_function("run_buffer", |b| {
        b.iter(|| {
            let mut buf = RunBuffer::new(capacity);
            let mut misses = 0;
            for epoch in black_box(&epochs) {
                misses += buf.epoch(epoch).misses;
            }
            misses
        })
    });
    group.bench_function("double_buffer", |b| {
        b.iter(|| {
            let mut buf = DoubleBuffer::new(capacity as usize);
            let mut misses = 0;
            for epoch in black_box(&epochs) {
                misses += buf.epoch(epoch.iter_elements()).misses;
            }
            misses
        })
    });
    group.finish();
}

fn bench_reuse_profile(c: &mut Criterion) {
    let stream = synthetic_stream(2048, 1 << 16);
    let mut group = c.benchmark_group("kernel_reuse_profile");
    group.bench_function("from_runs", |b| {
        b.iter(|| ReuseProfile::from_runs(black_box(&stream)).total_accesses())
    });
    group.bench_function("from_demands", |b| {
        b.iter(|| ReuseProfile::from_demands(black_box(&stream).iter_elements()).total_accesses())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_run_merge,
    bench_buffer_epoch,
    bench_reuse_profile
);
criterion_main!(benches);
