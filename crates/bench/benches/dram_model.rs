//! DRAM-model throughput: fold demand enumeration plus the double-buffered
//! miss classification, on a convolution with real window-overlap reuse.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_memory::{ConvAddressMap, DramModel, OperandBufferSpec, RegionOffsets};
use scalesim_systolic::{fold_demand_runs, fold_demands, ArrayShape, Dataflow};
use scalesim_topology::ConvLayer;

fn bench_demand_and_dram(c: &mut Criterion) {
    let layer = ConvLayer::new("CB2a_2-like", 58, 58, 3, 3, 64, 64, 1).unwrap();
    let map = ConvAddressMap::new(&layer, RegionOffsets::default());
    let array = ArrayShape::square(32);
    let spec = OperandBufferSpec::from_kb(512, 1);
    let ospec = OperandBufferSpec::from_kb(256, 1);

    let mut group = c.benchmark_group("dram_model");
    group.sample_size(20);
    for df in Dataflow::ALL {
        let dims = layer.shape().project(df);
        group.bench_function(format!("conv_{}", df.mnemonic()), |b| {
            b.iter(|| {
                let mut dram = DramModel::new(spec, spec, ospec);
                for d in fold_demands(black_box(&dims), array, &map) {
                    dram.fold(d.fold.duration, d.a, d.b, d.o_spill, d.o_writes);
                }
                black_box(dram.finish())
            })
        });
        // The run-compressed hot path the simulator actually uses: same
        // miss classification, O(runs) instead of O(elements).
        group.bench_function(format!("conv_{}_runs", df.mnemonic()), |b| {
            b.iter(|| {
                let mut dram = DramModel::new(spec, spec, ospec);
                for d in fold_demand_runs(black_box(&dims), array, &map) {
                    dram.fold_runs(d.fold.duration, &d.a, &d.b, &d.o_spill, &d.o_writes);
                }
                black_box(dram.finish())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demand_and_dram);
criterion_main!(benches);
