//! Golden model vs. vectorized engine: how much the closed-form trace
//! engine buys over literal register-level simulation (it should be orders
//! of magnitude, which is why the golden model is a test oracle and not the
//! production path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_memory::{GemmAddressMap, RegionOffsets};
use scalesim_systolic::pe_grid::{run, Matrix};
use scalesim_systolic::{simulate, ArrayShape, Dataflow, NullSink};
use scalesim_topology::GemmShape;

fn bench_golden_vs_engine(c: &mut Criterion) {
    let n = 24usize;
    let shape = GemmShape::new(n as u64, n as u64, n as u64);
    let dims = shape.project(Dataflow::OutputStationary);
    let array = ArrayShape::square(8);
    let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64 % 9 - 4);
    let b = Matrix::from_fn(n, n, |i, j| (3 * i + j) as i64 % 7 - 3);
    let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());

    let mut group = c.benchmark_group("golden_vs_engine");
    group.bench_function("pe_grid_golden", |bch| {
        bch.iter(|| black_box(run(&a, &b, array, Dataflow::OutputStationary).cycles))
    });
    group.bench_function("trace_engine", |bch| {
        bch.iter(|| black_box(simulate(&dims, array, &map, &mut NullSink).total_cycles))
    });
    group.finish();
}

criterion_group!(benches, bench_golden_vs_engine);
criterion_main!(benches);
