//! Design-space search throughput: the full scale-up and scale-out
//! candidate enumerations the Sec. IV methodology sweeps per workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_analytical::{best_scaleout, best_scaleup, AnalyticalModel, Dataflow};
use scalesim_topology::networks;

fn bench_searches(c: &mut Criterion) {
    let tf0 = networks::language_model("TF0").unwrap();
    let dims = tf0.shape().project(Dataflow::OutputStationary);
    let model = AnalyticalModel;

    c.bench_function("best_scaleup_tf0_2^16", |b| {
        b.iter(|| black_box(best_scaleup(black_box(&dims), 1 << 16, 8, &model)))
    });
    c.bench_function("best_scaleout_tf0_2^16", |b| {
        b.iter(|| black_box(best_scaleout(black_box(&dims), 1 << 16, 8, &model)))
    });
}

criterion_group!(benches, bench_searches);
criterion_main!(benches);
