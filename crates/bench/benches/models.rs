//! Benchmarks for the auxiliary models: occupancy timelines, the stall
//! model, and the advisor/reconfiguration searches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scalesim_analytical::{recommend, reconfiguration_gain, AnalyticalModel, Dataflow, MappedDims};
use scalesim_memory::{ReuseProfile, StallModel};
use scalesim_systolic::{occupancy_histogram, ArrayShape};
use scalesim_topology::networks;

fn bench_occupancy(c: &mut Criterion) {
    let tf0 = networks::language_model("TF0").unwrap();
    let dims = tf0.shape().project(Dataflow::OutputStationary);
    c.bench_function("occupancy_histogram_tf0_128x128", |b| {
        b.iter(|| {
            black_box(occupancy_histogram(
                black_box(&dims),
                ArrayShape::square(128),
            ))
        })
    });
}

fn bench_stall_model(c: &mut Criterion) {
    c.bench_function("stall_model_10k_folds", |b| {
        b.iter(|| {
            let mut m = StallModel::new(64.0);
            for i in 0..10_000u64 {
                m.fold(100, 3200 + (i % 7) * 100, 800);
            }
            black_box(m.finish())
        })
    });
}

fn bench_advisor(c: &mut Criterion) {
    let workloads: Vec<MappedDims> = networks::language_models()
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();
    let model = AnalyticalModel;
    let mut group = c.benchmark_group("advisor");
    group.sample_size(20);
    group.bench_function("recommend_10_workloads_2^16", |b| {
        b.iter(|| black_box(recommend(&workloads, 1 << 16, 8, Some(1024.0), &model)))
    });
    group.bench_function("reconfig_gain_10_workloads_2^14", |b| {
        b.iter(|| black_box(reconfiguration_gain(&workloads, 1 << 14, 8, &model)))
    });
    group.finish();
}

fn bench_reuse_profile(c: &mut Criterion) {
    // A looping demand stream with a 4k-element working set.
    let demands: Vec<u64> = (0..50u64)
        .flat_map(|round| (0..4096u64).map(move |a| a + (round % 3) * 64))
        .collect();
    let mut group = c.benchmark_group("reuse_profile");
    group.sample_size(10);
    group.bench_function("mattson_200k_accesses", |b| {
        b.iter(|| black_box(ReuseProfile::from_demands(demands.iter().copied())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_occupancy,
    bench_stall_model,
    bench_advisor,
    bench_reuse_profile
);
criterion_main!(benches);
