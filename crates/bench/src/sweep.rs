//! Sweep helpers for the figure harnesses.
//!
//! The partition-sweep machinery itself (point expansion, the parallel
//! memoizing engine, sweet-spot search) lives in [`scalesim::sweep`]; the
//! figure binaries call [`scalesim::run_partition_sweep`] directly. This
//! module re-exports the shape helper a few harnesses still use.

pub use scalesim::sweep::squareish;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squareish_splits() {
        assert_eq!(squareish(1), (1, 1));
        assert_eq!(squareish(2), (2, 1));
        assert_eq!(squareish(4), (2, 2));
        assert_eq!(squareish(8), (4, 2));
        assert_eq!(squareish(1 << 16), (256, 256));
    }

    #[test]
    #[should_panic(expected = "power")]
    fn non_power_of_two_panics() {
        let _ = squareish(12);
    }
}
