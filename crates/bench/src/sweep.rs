//! Shared sweep definitions for the figure harnesses.

use scalesim::{ArrayShape, PartitionGrid};

/// Splits a power-of-two `n` into the most square `(rows, cols)` pair
/// (`rows ≥ cols`, `rows · cols = n`).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn squareish(n: u64) -> (u64, u64) {
    assert!(n.is_power_of_two(), "need a power of two, got {n}");
    let e = n.trailing_zeros();
    let rows = 1u64 << e.div_ceil(2);
    (rows, n / rows)
}

/// One point of the Fig. 11/12 partition sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Partition grid (square-ish arrangement of `P` partitions).
    pub grid: PartitionGrid,
    /// Per-partition array (square-ish shape of `budget / P` MACs).
    pub array: ArrayShape,
}

impl SweepPoint {
    /// Number of partitions.
    pub fn partitions(&self) -> u64 {
        self.grid.count()
    }
}

/// The partition sweep of Figs. 11–12: for a fixed MAC budget, partition
/// counts `P = 1, 2, 4, …` (square-ish grids) with square-ish per-partition
/// arrays, stopping at the paper's `min_dim × min_dim` floor.
///
/// # Panics
///
/// Panics if `budget`/`min_dim` are not powers of two or the budget cannot
/// fit one `min_dim × min_dim` array.
pub fn partition_sweep(budget: u64, min_dim: u64) -> Vec<SweepPoint> {
    assert!(
        budget.is_power_of_two() && min_dim.is_power_of_two(),
        "budget and min_dim must be powers of two"
    );
    assert!(budget >= min_dim * min_dim, "budget too small");
    let mut points = Vec::new();
    let mut p = 1u64;
    while budget / p >= min_dim * min_dim {
        let (gr, gc) = squareish(p);
        let (ar, ac) = squareish(budget / p);
        points.push(SweepPoint {
            grid: PartitionGrid::new(gr, gc),
            array: ArrayShape::new(ar, ac),
        });
        p *= 2;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squareish_splits() {
        assert_eq!(squareish(1), (1, 1));
        assert_eq!(squareish(2), (2, 1));
        assert_eq!(squareish(4), (2, 2));
        assert_eq!(squareish(8), (4, 2));
        assert_eq!(squareish(1 << 16), (256, 256));
    }

    #[test]
    fn sweep_conserves_budget_and_respects_floor() {
        let points = partition_sweep(1 << 14, 8);
        for p in &points {
            assert_eq!(p.grid.count() * p.array.macs(), 1 << 14);
            assert!(p.array.rows() >= 8 && p.array.cols() >= 8);
        }
        // 2^14 budget, 8x8 floor: P from 1 to 2^8 -> 9 points.
        assert_eq!(points.len(), 9);
        assert_eq!(points[0].partitions(), 1);
        assert_eq!(points.last().unwrap().partitions(), 256);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn non_power_of_two_panics() {
        let _ = squareish(12);
    }
}
