//! Tiny table/series printing helpers shared by the figure harnesses.

/// A named data series: `(x, y)` pairs plus a label, printed as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"2^14 MACs"`).
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl ToString, y: f64) {
        self.points.push((x.to_string(), y));
    }
}

/// Prints series as CSV: a header of x labels, then one row per series.
/// All series must share the same x axis (asserted).
pub fn print_series(title: &str, x_name: &str, series: &[Series]) {
    println!("# {title}");
    if series.is_empty() {
        return;
    }
    let xs: Vec<&str> = series[0].points.iter().map(|(x, _)| x.as_str()).collect();
    for s in series {
        assert_eq!(
            s.points.len(),
            xs.len(),
            "series `{}` has a different x axis",
            s.label
        );
    }
    println!("{x_name},{}", xs.join(","));
    for s in series {
        let ys: Vec<String> = s.points.iter().map(|(_, y)| format!("{y:.6}")).collect();
        println!("{},{}", s.label, ys.join(","));
    }
    println!();
}

/// The MAC budgets the paper sweeps (Figs. 9–12): powers of two from
/// `2^lo` to `2^hi` inclusive.
pub fn mac_budgets(lo: u32, hi: u32) -> Vec<u64> {
    (lo..=hi).map(|e| 1u64 << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("test");
        s.push(1024, 2.0);
        s.push("2048", 4.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].0, "1024");
    }

    #[test]
    fn budgets_are_powers_of_two() {
        let b = mac_budgets(8, 12);
        assert_eq!(b, vec![256, 512, 1024, 2048, 4096]);
    }

    #[test]
    #[should_panic(expected = "different x axis")]
    fn mismatched_series_panic() {
        let mut a = Series::new("a");
        a.push(1, 1.0);
        let b = Series::new("b");
        print_series("t", "x", &[a, b]);
    }
}
