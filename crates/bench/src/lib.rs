//! Shared helpers for the benchmark and figure-harness binaries.
//!
//! The actual deliverables live in `src/bin/` (one binary per paper table /
//! figure) and `benches/` (criterion performance benchmarks of the
//! simulator itself); this library holds the small amount of code they
//! share.

pub mod harness;
pub mod sweep;

pub use harness::{mac_budgets, print_series, Series};
pub use sweep::squareish;
