//! Extension experiment: inter-layer pipelining (Tangram-style).
//!
//! SCALE-Sim serializes layers; tiled accelerators can pipeline them. For
//! AlexNet and ResNet-18 on equal total hardware, this harness compares
//! serial execution on one big partitioned accelerator against a pipeline
//! of S smaller accelerators (the same MACs split S ways), for a stream of
//! 256 inputs. Expected shape: pipelines win on throughput once stages
//! balance, with diminishing returns as the bottleneck stage stops
//! shrinking.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_pipeline`

use scalesim::{run_pipeline, ArrayShape, PartitionGrid, SimConfig, Simulator};
use scalesim_bench::squareish;
use scalesim_topology::{networks, Topology};

const INPUTS: u64 = 256;
const TOTAL_MACS: u64 = 1 << 14;

fn study(net: &Topology) {
    println!(
        "# Extension: pipelining {} over equal total hardware ({TOTAL_MACS} MACs, {INPUTS} inputs)",
        net.name()
    );
    println!("stages,per_stage_array,bottleneck_cycles,fill_cycles,total_cycles,speedup_vs_serial,imbalance");

    // Serial baseline: all MACs in one (partitioned) accelerator, inputs
    // processed back to back.
    let (ar, ac) = squareish(TOTAL_MACS);
    let serial_cfg = SimConfig::builder().array(ArrayShape::new(ar, ac)).build();
    let serial_once: u64 = Simulator::new(serial_cfg)
        .run_topology(net)
        .layers()
        .iter()
        .map(|l| l.total_cycles)
        .sum();
    let serial_total = serial_once * INPUTS;
    println!(
        "1,{}x{},{serial_once},{serial_once},{serial_total},1.000,1.00",
        ar, ac
    );

    for stages in [2usize, 4, 8] {
        let per_stage = TOTAL_MACS / stages as u64;
        let (sr, sc) = squareish(per_stage);
        let cfg = SimConfig::builder().array(ArrayShape::new(sr, sc)).build();
        let pipe = run_pipeline(net, &cfg, PartitionGrid::monolithic(), stages);
        let total = pipe.total_cycles(INPUTS);
        println!(
            "{stages},{}x{},{},{},{},{:.3},{:.2}",
            sr,
            sc,
            pipe.bottleneck_cycles,
            pipe.fill_cycles,
            total,
            serial_total as f64 / total as f64,
            pipe.imbalance(),
        );
    }
    println!();
}

fn main() {
    study(&networks::alexnet());
    study(&networks::resnet18());
}
