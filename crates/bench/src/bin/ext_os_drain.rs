//! Ablation: the OS drain path (Section II-A's "separate data plane").
//!
//! The baseline OS dataflow drains outputs through the MAC links — the
//! `2·S_R` term of Eq. 1. The paper mentions (and dismisses as costly) a
//! separate output plane that would overlap drain with the next fold. This
//! harness prices that choice: per-layer runtime under both drain
//! implementations across array heights, and how much of Fig. 10's
//! monolithic slowdown the drain term explains.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_os_drain`

use scalesim_analytical::{drain_fraction, scaleup_with_drain, ArrayShape, Dataflow, OsDrain};
use scalesim_topology::networks;

fn main() {
    println!("# Ablation: OS drain through the array vs a separate output plane");
    println!("layer,array,through_array_cycles,separate_plane_cycles,drain_fraction");
    let resnet = networks::resnet50();
    let mut layers = vec![
        resnet.layer("CB2a_3").unwrap().clone(),
        resnet.layer("Conv1").unwrap().clone(),
    ];
    layers.push(networks::language_model("TF0").unwrap());
    layers.push(networks::language_model("GNMT0").unwrap());

    for layer in &layers {
        let dims = layer.shape().project(Dataflow::OutputStationary);
        for array in [
            ArrayShape::new(32, 32),
            ArrayShape::new(128, 128),
            ArrayShape::new(512, 32), // tall: drain-dominated
            ArrayShape::new(32, 512), // wide: drain-light
        ] {
            let base = scaleup_with_drain(&dims, array, OsDrain::ThroughArray);
            let fast = scaleup_with_drain(&dims, array, OsDrain::SeparatePlane);
            println!(
                "{},{},{},{},{:.4}",
                layer.name(),
                array,
                base,
                fast,
                drain_fraction(&dims, array),
            );
        }
    }
    println!();
    println!("# tall arrays spend the largest runtime share on drain — part of why");
    println!("# Fig. 10's monolithic configurations lose, and what a separate output");
    println!("# plane (at its wiring cost) would claw back.");
}
