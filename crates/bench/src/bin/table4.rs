//! Table IV: the language-model GEMM workloads.
//!
//! Regenerates the paper's Table IV from the built-in workload suite,
//! with the derived MAC counts appended for context.
//!
//! Run: `cargo run --release -p scalesim-bench --bin table4`

use scalesim::Dataflow;
use scalesim_topology::networks;

fn main() {
    println!("# Table IV: matrix dimensions of the language model workloads");
    println!("name,S_R,T,S_C,macs");
    for layer in &networks::language_models() {
        let dims = layer.shape().project(Dataflow::OutputStationary);
        println!(
            "{},{},{},{},{}",
            layer.name(),
            dims.spatial_rows,
            dims.temporal,
            dims.spatial_cols,
            layer.macs()
        );
    }
}
