//! Fig. 11: stall-free runtime vs. DRAM bandwidth requirement as the
//! partition count grows — the central trade-off of the paper.
//!
//! Cycle-accurate runs (compute schedule + double-buffered DRAM model) of
//! the ResNet-50 `CB2a_3` layer and the Transformer `TF0` layer, for MAC
//! budgets 2^14 / 2^16 / 2^18, sweeping the number of partitions from
//! monolithic up to the 8×8-array floor. Total SRAM is the paper's
//! 512 KB IFMAP + 512 KB filter + 256 KB OFMAP, divided evenly among
//! partitions. Expected shape: runtime falls monotonically with partitions
//! while the aggregate DRAM bandwidth requirement rises — the sweet spot is
//! where the curves cross.
//!
//! Points are evaluated by the parallel, memoizing
//! [`scalesim::run_partition_sweep`] engine; each row is byte-identical to
//! a direct single-shot `Simulator::run_layer` of the same point.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig11_runtime_bw`

use scalesim::{run_partition_sweep, SimConfig};
use scalesim_topology::{networks, Layer};

fn sweep_layer(layer: &Layer, budget_exp: u32) {
    println!(
        "# Fig. 11: {} at 2^{budget_exp} MACs (OS dataflow, 512/512/256 KB SRAM)",
        layer.name()
    );
    println!(
        "partitions,grid,array,cycles,req_bw_bytes_per_cycle,avg_bw_bytes_per_cycle,dram_bytes"
    );
    for point in run_partition_sweep(layer, &SimConfig::default(), 1 << budget_exp, 8) {
        let report = &point.report;
        println!(
            "{},{},{},{},{:.3},{:.3},{}",
            point.partitions(),
            point.grid,
            point.array,
            report.total_cycles,
            report.required_bandwidth(),
            report.average_bandwidth(),
            report.dram.total_bytes(),
        );
    }
    println!();
}

fn main() {
    let resnet = networks::resnet50();
    let cb2a3 = resnet.layer("CB2a_3").expect("CB2a_3 is built in").clone();
    let tf0 = networks::language_model("TF0").expect("TF0 is built in");

    // Paper panels (a)-(c): ResNet layer at 2^18, 2^16, 2^14 MACs.
    for exp in [18u32, 16, 14] {
        sweep_layer(&cb2a3, exp);
    }
    // Panels (d)-(f): TF0 at the same budgets.
    for exp in [18u32, 16, 14] {
        sweep_layer(&tf0, exp);
    }
}
