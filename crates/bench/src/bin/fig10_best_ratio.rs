//! Fig. 10: best monolithic vs. best partitioned runtime.
//!
//! For (a) the first and last five ResNet-50 layers plus its FC layer, and
//! (b) the Table IV language-model layers, the stall-free runtime of the
//! best *scale-up* (monolithic) configuration divided by the best
//! *scale-out* (partitioned) configuration with the same number of MAC
//! units — the paper observes ratios up to ~25× (ResNet) and ~50×
//! (language models), never below 1, growing with the MAC budget.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig10_best_ratio`

use scalesim_analytical::{best_scaleout, best_scaleup, AnalyticalModel, Dataflow};
use scalesim_bench::{mac_budgets, print_series, Series};
use scalesim_topology::{networks, Layer, Topology};

fn ratio_series(topology: &Topology, budgets: &[u64]) -> Vec<Series> {
    let model = AnalyticalModel;
    topology
        .iter()
        .map(|layer: &Layer| {
            let dims = layer.shape().project(Dataflow::OutputStationary);
            let mut series = Series::new(layer.name());
            for &budget in budgets {
                let up = best_scaleup(&dims, budget, 8, &model).cycles;
                let (_, out) = best_scaleout(&dims, budget, 8, &model);
                series.push(
                    format!("2^{}", budget.trailing_zeros()),
                    up as f64 / out as f64,
                );
            }
            series
        })
        .collect()
}

fn main() {
    let budgets = mac_budgets(10, 16)
        .into_iter()
        .step_by(2)
        .collect::<Vec<_>>();

    let resnet = networks::resnet50_edges();
    print_series(
        "Fig. 10(a): best scale-up / best scale-out runtime ratio, ResNet-50 edge layers",
        "layer",
        &ratio_series(&resnet, &budgets),
    );

    let lang = networks::language_models();
    print_series(
        "Fig. 10(b): best scale-up / best scale-out runtime ratio, language models",
        "layer",
        &ratio_series(&lang, &budgets),
    );
}
