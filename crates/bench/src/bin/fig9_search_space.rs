//! Fig. 9: the scale-up × scale-out search space for the TF0 layer.
//!
//! (a) For each MAC budget, every `(partition grid, per-partition aspect
//!     ratio)` point with its stall-free runtime normalized to the *worst*
//!     configuration at that budget (the paper's color scale). Monolithic
//!     configurations are the `1x1` grid rows.
//! (b-c) The aspect-ratio sweep for monolithic arrays at 2^14 and 2^16
//!     MACs: runtime and array (mapping) utilization per ratio.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig9_search_space`

use scalesim_analytical::{
    rank_scaleup, scaleout_configs, scaleout_runtime, AnalyticalModel, Dataflow,
};
use scalesim_topology::networks;

fn main() {
    let tf0 = networks::language_model("TF0").expect("TF0 is built in");
    let dims = tf0.shape().project(Dataflow::OutputStationary);
    let model = AnalyticalModel;

    println!("# Fig. 9(a): normalized stall-free runtime, TF0, OS dataflow");
    println!("# (normalized to the slowest configuration at each MAC budget; lower is better)");
    println!("mac_budget,partitions,grid,array,cycles,normalized_runtime");
    for exp in [10u32, 12, 14, 16, 18] {
        let budget = 1u64 << exp;
        let configs = scaleout_configs(budget, 8);
        let scored: Vec<(u64, String, String, u64)> = configs
            .iter()
            .map(|c| {
                (
                    c.grid.count(),
                    c.grid.to_string(),
                    c.array.to_string(),
                    scaleout_runtime(&dims, c, &model),
                )
            })
            .collect();
        let worst = scored.iter().map(|s| s.3).max().unwrap() as f64;
        for (parts, grid, array, cycles) in scored {
            println!(
                "2^{exp},{parts},{grid},{array},{cycles},{:.6}",
                cycles as f64 / worst
            );
        }
    }
    println!();

    for exp in [14u32, 16] {
        println!(
            "# Fig. 9({}): TF0 monolithic aspect-ratio sweep, 2^{exp} MACs",
            if exp == 14 { 'b' } else { 'c' }
        );
        println!("array,cycles,mapping_utilization");
        let mut ranked = rank_scaleup(&dims, 1 << exp, 8, &model);
        // Present tall-to-wide (the paper's x axis), not by rank.
        ranked.sort_by_key(|s| std::cmp::Reverse(s.array.rows()));
        for s in ranked {
            println!("{},{},{:.4}", s.array, s.cycles, s.mapping_utilization);
        }
        println!();
    }
}
