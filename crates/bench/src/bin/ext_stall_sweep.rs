//! Extension experiment: runtime under *finite* DRAM bandwidth.
//!
//! The paper reports the bandwidth each configuration needs for stall-free
//! operation (Fig. 11) and notes that at large MAC counts the sweet spot
//! exceeds traditional DRAM. This harness closes the loop: for TF0 at a
//! fixed MAC budget, it sweeps the *available* bandwidth and reports the
//! stalled runtime of a monolithic configuration vs. two partitioned ones.
//! Expected shape: with scarce bandwidth the monolithic array (more reuse,
//! less traffic) wins or ties; as bandwidth grows the partitioned
//! configurations overtake it and approach their stall-free runtimes — the
//! scaling choice literally depends on the memory system.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_stall_sweep`

use scalesim::{ArrayShape, PartitionGrid, SimConfig, Simulator};
use scalesim_bench::squareish;
use scalesim_topology::networks;

fn main() {
    let layer = networks::language_model("TF0").expect("TF0 is built in");
    let budget: u64 = 1 << 14;

    println!("# Extension: TF0 stalled runtime vs available DRAM bandwidth, 2^14 MACs");
    println!("bandwidth_bytes_per_cycle,partitions,array,compute_cycles,stalled_cycles,slowdown");
    for bw_exp in [2u32, 4, 6, 8, 10, 12] {
        let bandwidth = (1u64 << bw_exp) as f64;
        for partitions in [1u64, 16, 256] {
            let (gr, gc) = squareish(partitions);
            let per = budget / partitions;
            let (ar, ac) = squareish(per);
            let config = SimConfig::builder()
                .array(ArrayShape::new(ar, ac))
                .dram_bandwidth(bandwidth)
                .build();
            let report = Simulator::new(config)
                .with_grid(PartitionGrid::new(gr, gc))
                .run_layer(&layer);
            let stall = report.stall.expect("bandwidth was configured");
            println!(
                "{bandwidth},{partitions},{}x{},{},{},{:.3}",
                ar,
                ac,
                report.total_cycles,
                stall.stalled_cycles,
                stall.slowdown(),
            );
        }
    }
    println!();
    println!("# reading guide: at each bandwidth, compare stalled_cycles across partition");
    println!("# counts — the winner flips from monolithic to partitioned as bandwidth grows.");
}
