//! Extension experiment: the value of a morphable (per-layer
//! reconfigurable) array versus the paper's fixed pareto-optimal pick.
//!
//! Related work (DyHard-DNN) proposes arrays that re-shape per layer; the
//! paper's own method commits to one configuration per workload set. This
//! harness reports, per MAC budget, how much total runtime free per-layer
//! reconfiguration would save on ResNet-50 and on the Table IV suite —
//! an upper bound on morphable-hardware benefit under this cost model.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_reconfig`

use scalesim_analytical::{reconfiguration_gain, AnalyticalModel, Dataflow, MappedDims};
use scalesim_topology::{networks, Topology};

fn report(title: &str, topo: &Topology) {
    println!("# Extension: reconfiguration gain — {title}");
    println!("mac_budget,fixed_config,fixed_cycles,reconfig_cycles,speedup,layers_switching");
    let workloads: Vec<MappedDims> = topo
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();
    let model = AnalyticalModel;
    for exp in [10u32, 12, 14, 16] {
        let gain = reconfiguration_gain(&workloads, 1 << exp, 8, &model);
        println!(
            "2^{exp},{},{},{},{:.3},{}/{}",
            gain.fixed_config,
            gain.fixed_cycles,
            gain.reconfigurable_cycles,
            gain.speedup(),
            gain.layers_that_switch(),
            workloads.len(),
        );
    }
    println!();
}

fn main() {
    report("ResNet-50", &networks::resnet50());
    report("language models", &networks::language_models());
    report("VGG-16", &networks::vgg16());
}
