//! Extension experiment: dataflow choice per workload.
//!
//! Section III-B: for a fixed workload and array, the dataflow decides
//! which dimensions map to space and which to time, "which could be
//! selected to minimize τ". This harness ranks OS/WS/IS for every Table IV
//! layer and for representative ResNet-50 layers on a 128×128 array, and
//! reports each layer's winner and the spread.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_dataflow_compare`

use scalesim::ArrayShape;
use scalesim_analytical::{rank_dataflows, AnalyticalModel};
use scalesim_topology::networks;

fn main() {
    let array = ArrayShape::square(128);
    let model = AnalyticalModel;

    println!("# Extension: best dataflow per layer on a {array} array (stall-free cycles)");
    println!("layer,os_cycles,ws_cycles,is_cycles,winner,worst_over_best");

    let resnet = networks::resnet50();
    let picks = ["Conv1", "CB2a_2", "CB3a_3", "ID4b_1", "ID5c_2", "FC1000"];
    let mut layers: Vec<scalesim_topology::Layer> = picks
        .iter()
        .map(|n| resnet.layer(n).expect("built-in layer").clone())
        .collect();
    layers.extend(networks::language_models());

    for layer in &layers {
        let ranked = rank_dataflows(layer.shape(), array, &model);
        let by = |df: scalesim_topology::Dataflow| {
            ranked
                .iter()
                .find(|s| s.dataflow == df)
                .expect("all three present")
                .cycles
        };
        use scalesim_topology::Dataflow::*;
        println!(
            "{},{},{},{},{},{:.2}",
            layer.name(),
            by(OutputStationary),
            by(WeightStationary),
            by(InputStationary),
            ranked[0].dataflow,
            ranked[2].cycles as f64 / ranked[0].cycles as f64,
        );
    }
}
