//! Fig. 14: multi-workload pareto optimization over *scale-out* candidates.
//!
//! The scale-out twin of Fig. 13: each layer's runtime-optimal partitioned
//! configuration (grid × per-partition aspect ratio) is a candidate;
//! candidates are ranked by total runtime across the workload set and
//! their loss versus the pareto optimum reported.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig14_pareto_scaleout`

use scalesim_analytical::{
    best_scaleout, pareto_optimal, scaleout_runtime, AnalyticalModel, Dataflow, MappedDims,
    ScaleOutConfig,
};
use scalesim_topology::{networks, Topology};

fn report(title: &str, topology: &Topology) {
    println!("# Fig. 14: {title} — loss vs. pareto-optimal scale-out config");
    println!("mac_budget,rank,config,total_cycles,loss");
    let workloads: Vec<MappedDims> = topology
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();
    let model = AnalyticalModel;
    for exp in [8u32, 10, 12, 14, 16] {
        let budget = 1u64 << exp;
        let mut candidates: Vec<ScaleOutConfig> = workloads
            .iter()
            .map(|w| best_scaleout(w, budget, 8, &model).0)
            .collect();
        candidates.sort();
        candidates.dedup();
        let outcome = pareto_optimal(&workloads, &candidates, |w, c| {
            scaleout_runtime(w, c, &model)
        });
        for (rank, c) in outcome.ranked.iter().enumerate() {
            println!(
                "2^{exp},{},{},{},{:.4}",
                rank + 1,
                c.config,
                c.total_cycles,
                c.loss_versus(outcome.best().total_cycles)
            );
        }
    }
    println!();
}

fn main() {
    report("ResNet-50", &networks::resnet50());
    report("language models", &networks::language_models());
}
