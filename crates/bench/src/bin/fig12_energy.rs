//! Fig. 12: energy vs. partition count.
//!
//! Same cycle-accurate sweep as Fig. 11, reporting the energy model's
//! totals and breakdown. Expected shape (Sec. IV-A): for small MAC budgets
//! (2^8–2^12) the minimum-energy point is the monolithic configuration;
//! as the budget grows the minimum moves toward more partitions, because
//! the idle energy a slow monolithic array burns across its huge PE count
//! outweighs the reuse (SRAM/DRAM) energy partitioning sacrifices.
//!
//! Points are evaluated by the parallel, memoizing
//! [`scalesim::run_partition_sweep`] engine; each row is byte-identical to
//! a direct single-shot `Simulator::run_layer` of the same point.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig12_energy`

use scalesim::{run_partition_sweep, SimConfig};
use scalesim_topology::{networks, Layer};

fn sweep_layer(layer: &Layer, budget_exp: u32) {
    println!(
        "# Fig. 12: energy for {} at 2^{budget_exp} MACs",
        layer.name()
    );
    println!("partitions,grid,array,cycles,e_total,e_mac,e_idle,e_sram,e_dram");
    let mut best: Option<(u64, f64)> = None;
    for point in run_partition_sweep(layer, &SimConfig::default(), 1 << budget_exp, 8) {
        let report = &point.report;
        let e = &report.energy;
        println!(
            "{},{},{},{},{:.0},{:.0},{:.0},{:.0},{:.0}",
            point.partitions(),
            point.grid,
            point.array,
            report.total_cycles,
            e.total(),
            e.mac,
            e.idle,
            e.sram,
            e.dram,
        );
        if best.is_none_or(|(_, b)| e.total() < b) {
            best = Some((point.partitions(), e.total()));
        }
    }
    if let Some((parts, _)) = best {
        println!("# minimum-energy partition count: {parts}");
    }
    println!();
}

fn main() {
    let resnet = networks::resnet50();
    let cb2a3 = resnet.layer("CB2a_3").expect("CB2a_3 is built in").clone();
    let tf0 = networks::language_model("TF0").expect("TF0 is built in");

    for layer in [&cb2a3, &tf0] {
        for exp in [8u32, 10, 12, 14, 16, 18] {
            sweep_layer(layer, exp);
        }
    }
}
