//! Utility: export a built-in network as a Table II topology CSV.
//!
//! Run: `cargo run --release -p scalesim-bench --bin dump_topology -- resnet50`

use std::env;
use std::process::ExitCode;

use scalesim_topology::{networks, topology_to_csv};

fn main() -> ExitCode {
    let name = match env::args().nth(1) {
        Some(n) => n,
        None => {
            eprintln!("usage: dump_topology <network>");
            return ExitCode::FAILURE;
        }
    };
    let topo = match name.as_str() {
        "resnet50" => networks::resnet50(),
        "resnet18" => networks::resnet18(),
        "alexnet" => networks::alexnet(),
        "googlenet" => networks::googlenet(),
        "mobilenet_v1" => networks::mobilenet_v1(),
        "vgg16" => networks::vgg16(),
        "yolo_tiny" => networks::yolo_tiny(),
        "language_models" => networks::language_models(),
        other => {
            eprintln!("unknown network `{other}`");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", topology_to_csv(&topo));
    ExitCode::SUCCESS
}
