//! Fig. 4: validation of the trace engine against the register-level
//! golden model (our stand-in for the paper's RTL implementation).
//!
//! The paper runs square matrix multiplications at full utilization with
//! the OS dataflow on arrays of varying size and shows RTL and SCALE-Sim
//! cycle counts in agreement. Here, for each array size we run an
//! `n × n · n × n` product (one full fold) through:
//!
//! 1. the PE-grid golden model (every register simulated, values checked),
//! 2. the vectorized trace engine,
//! 3. the analytical Eq. 1,
//!
//! and print all three cycle counts. They must agree exactly.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig4_validation`

use scalesim::{ArrayShape, Dataflow, GemmShape};
use scalesim_analytical::eq1_unlimited;
use scalesim_systolic::pe_grid::{run, Matrix};
use scalesim_systolic::{analyze, simulate, NullSink};

fn main() {
    println!("# Fig. 4: cycles for square matmuls at full utilization (OS dataflow)");
    println!("array_size,golden_model_cycles,trace_engine_cycles,eq1_cycles,values_ok");
    let mut all_match = true;
    for n in [4u64, 8, 16, 24, 32, 48, 64] {
        let array = ArrayShape::square(n);
        let shape = GemmShape::new(n, n, n);
        let dims = shape.project(Dataflow::OutputStationary);

        let a = Matrix::from_fn(n as usize, n as usize, |i, j| {
            ((i * 7 + j * 3) % 17) as i64 - 8
        });
        let b = Matrix::from_fn(n as usize, n as usize, |i, j| {
            ((i * 5 + j * 11) % 13) as i64 - 6
        });
        let golden = run(&a, &b, array, Dataflow::OutputStationary);
        let values_ok = golden.output == a.matmul(&b);

        let engine = simulate(&dims, array, &dummy_map(shape), &mut NullSink);
        let analytic = analyze(&dims, array);
        debug_assert_eq!(engine.total_cycles, analytic.total_cycles);

        println!(
            "{n},{},{},{},{}",
            golden.cycles,
            engine.total_cycles,
            eq1_unlimited(&dims),
            values_ok
        );
        all_match &= golden.cycles == engine.total_cycles
            && engine.total_cycles == eq1_unlimited(&dims)
            && values_ok;
    }
    println!(
        "# agreement: {}",
        if all_match {
            "EXACT (all rows)"
        } else {
            "MISMATCH"
        }
    );
    assert!(all_match, "validation failed");
}

fn dummy_map(shape: GemmShape) -> scalesim_memory::GemmAddressMap {
    scalesim_memory::GemmAddressMap::from_shape(shape, scalesim_memory::RegionOffsets::default())
}
