//! Ablation: sensitivity of the DRAM traffic to SRAM provisioning.
//!
//! Figs. 11–12 fix the SRAM budget at the paper's 512+512+256 KB; this
//! ablation sweeps it. Expected shape: above the layer's working set, DRAM
//! traffic flattens at the compulsory minimum (every unique element once);
//! below it, refetch traffic and the bandwidth requirement climb steeply —
//! the double-buffer model's capacity misses at work. Run on a convolution
//! (window reuse to lose) and a GEMM (no reuse to lose) for contrast.
//!
//! Run: `cargo run --release -p scalesim-bench --bin ext_sram_sweep`

use scalesim::{ArrayShape, Dataflow, SimConfig, Simulator};
use scalesim_memory::{AddrRuns, ConvAddressMap, GemmAddressMap, RegionOffsets, ReuseProfile};
use scalesim_systolic::fold_demand_runs;
use scalesim_topology::{networks, Layer};

fn sweep(layer: &Layer) {
    println!("# Ablation: DRAM traffic vs SRAM size for {}", layer.name());
    println!("sram_kb_each,dram_read_bytes,dram_write_bytes,req_bw_bytes_per_cycle");
    for kb in [4u64, 16, 64, 256, 1024, 4096] {
        let config = SimConfig::builder()
            .array(ArrayShape::square(32))
            .sram_kb(kb, kb, kb / 2)
            .build();
        let report = Simulator::new(config).run_layer(layer);
        println!(
            "{kb},{},{},{:.3}",
            report.dram.read_bytes(),
            report.dram.write_bytes(),
            report.required_bandwidth(),
        );
    }
    println!();
}

/// One-pass LRU reuse analysis of the IFMAP demand stream: the theoretical
/// floor against which the FIFO double-buffer numbers above compare.
fn reuse_curve(layer: &Layer) {
    println!(
        "# Reuse-distance (LRU) miss curve for {}'s IFMAP stream",
        layer.name()
    );
    println!("capacity_elems,misses,hit_rate");
    let array = ArrayShape::square(32);
    let dims = layer.shape().project(Dataflow::OutputStationary);
    let offsets = RegionOffsets::default();
    let mut demands = AddrRuns::new();
    match layer {
        Layer::Conv(conv) => {
            let map = ConvAddressMap::new(conv, offsets);
            for d in fold_demand_runs(&dims, array, &map) {
                demands.extend_runs(&d.a);
            }
        }
        Layer::Gemm { shape, .. } => {
            let map = GemmAddressMap::from_shape(*shape, offsets);
            for d in fold_demand_runs(&dims, array, &map) {
                demands.extend_runs(&d.a);
            }
        }
    }
    let profile = ReuseProfile::from_runs(&demands);
    for exp in [10u32, 12, 14, 16, 18, 20] {
        let cap = 1usize << exp;
        println!(
            "{cap},{},{:.4}",
            profile.misses_at(cap),
            profile.hit_rate_at(cap)
        );
    }
    println!(
        "# compulsory floor: {} misses ({} accesses total)",
        profile.cold_accesses(),
        profile.total_accesses()
    );
    println!();
}

fn main() {
    let resnet = networks::resnet50();
    let conv = resnet.layer("CB2a_2").expect("built in");
    sweep(conv);
    sweep(&networks::language_model("TF1").expect("built in"));
    reuse_curve(conv);
}
