//! Fig. 13: multi-workload pareto optimization over *scale-up* candidates.
//!
//! Following Sec. IV-B: each layer's runtime-optimal monolithic aspect
//! ratio becomes a candidate; every candidate is scored on the whole
//! workload set (total runtime is additive); the loss of each ranked
//! candidate versus the pareto optimum is reported per MAC budget.
//! Expected shape: 2nd/3rd best within ~20% at small budgets, the spread
//! (and the worst candidate's loss, up to ~8×) growing with scale.
//!
//! Run: `cargo run --release -p scalesim-bench --bin fig13_pareto_scaleup`

use scalesim_analytical::{
    best_scaleup, exact_scaleup, pareto_optimal, AnalyticalModel, ArrayShape, Dataflow, MappedDims,
};
use scalesim_topology::{networks, Topology};

fn report(title: &str, topology: &Topology) {
    println!("# Fig. 13: {title} — loss vs. pareto-optimal scale-up config");
    println!("mac_budget,rank,array,total_cycles,loss");
    let workloads: Vec<MappedDims> = topology
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();
    let model = AnalyticalModel;
    for exp in [8u32, 10, 12, 14, 16] {
        let budget = 1u64 << exp;
        let mut candidates: Vec<ArrayShape> = workloads
            .iter()
            .map(|w| best_scaleup(w, budget, 8, &model).array)
            .collect();
        candidates.sort();
        candidates.dedup();
        let outcome = pareto_optimal(&workloads, &candidates, |w, a| exact_scaleup(w, *a));
        for (rank, c) in outcome.ranked.iter().enumerate() {
            println!(
                "2^{exp},{},{},{},{:.4}",
                rank + 1,
                c.config,
                c.total_cycles,
                c.loss_versus(outcome.best().total_cycles)
            );
        }
    }
    println!();
}

fn main() {
    report("ResNet-50", &networks::resnet50());
    report("language models", &networks::language_models());
}
