//! A structured line logger gated by the `SCALESIM_LOG` environment
//! variable.
//!
//! `SCALESIM_LOG` is a comma-separated list of tokens: a level (`off`,
//! `error`, `warn`, `info`, `debug`) and/or a format (`text`, `json`).
//! Unset or empty means *off* — the simulator stays silent unless asked.
//! Examples:
//!
//! * `SCALESIM_LOG=info` — human-readable lines at info and above.
//! * `SCALESIM_LOG=debug,json` — one JSON object per line, including span
//!   enter/exit events.
//!
//! Lines go to stderr (stdout is reserved for reports and CSV). Each line
//! is a single timestamped event with `key=value` fields (text) or a flat
//! JSON object (json); formatting is a pure function ([`format_line`]) so
//! tests can pin the output byte for byte.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped-work conditions.
    Error,
    /// Suspicious but tolerated conditions.
    Warn,
    /// Request/operation summaries (access logs).
    Info,
    /// Span enter/exit and other high-volume detail.
    Debug,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn tag_lower(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Output line format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `TIMESTAMP LEVEL event key=value ...`
    Text,
    /// One flat JSON object per line.
    Json,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    /// `None` disables logging entirely.
    level: Option<Level>,
    format: Format,
}

/// Parses a `SCALESIM_LOG` value. Unknown tokens are ignored rather than
/// fatal — a typo in an env var must never take the service down.
fn parse_config(value: &str) -> Config {
    let mut config = Config {
        level: None,
        format: Format::Text,
    };
    for token in value.split(',') {
        match token.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => config.level = None,
            "error" => config.level = Some(Level::Error),
            "warn" => config.level = Some(Level::Warn),
            "info" => config.level = Some(Level::Info),
            "debug" => config.level = Some(Level::Debug),
            "text" => config.format = Format::Text,
            "json" => config.format = Format::Json,
            _ => {}
        }
    }
    // A bare format token (`SCALESIM_LOG=json`) implies info level: the
    // user clearly wants output.
    if config.level.is_none() && !value.trim().is_empty() && config.format == Format::Json {
        config.level = Some(Level::Info);
    }
    config
}

fn config() -> Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    *CONFIG.get_or_init(|| {
        std::env::var("SCALESIM_LOG")
            .map(|v| parse_config(&v))
            .unwrap_or(Config {
                level: None,
                format: Format::Text,
            })
    })
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    config().level.is_some_and(|max| level <= max)
}

/// Emits one structured event at `level` with `key=value` fields.
/// No-op (one branch) when the level is disabled.
pub fn emit(level: Level, event: &str, fields: &[(&str, &str)]) {
    let cfg = config();
    if cfg.level.is_none_or(|max| level > max) {
        return;
    }
    let now_millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    eprintln!(
        "{}",
        format_line(cfg.format, level, event, fields, now_millis)
    );
}

/// Convenience: an info-level event.
pub fn info(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Info, event, fields);
}

/// Convenience: an error-level event.
pub fn error(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Error, event, fields);
}

/// Convenience: a debug-level event.
pub fn debug(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Debug, event, fields);
}

/// Formats one log line; pure, so golden tests can pin it.
pub fn format_line(
    format: Format,
    level: Level,
    event: &str,
    fields: &[(&str, &str)],
    epoch_millis: u64,
) -> String {
    let ts = rfc3339_millis(epoch_millis);
    match format {
        Format::Text => {
            let mut out = format!("{ts} {:<5} {event}", level.tag());
            for (k, v) in fields {
                let _ = write!(out, " {k}={}", quote_if_needed(v));
            }
            out
        }
        Format::Json => {
            let mut out = format!(
                "{{\"ts\":\"{ts}\",\"level\":\"{}\",\"event\":\"{}\"",
                level.tag_lower(),
                json_escape(event)
            );
            for (k, v) in fields {
                let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
            out
        }
    }
}

/// Values with spaces, quotes or `=` are double-quoted with backslash
/// escapes; simple values print bare.
fn quote_if_needed(v: &str) -> String {
    if !v.is_empty()
        && v.chars()
            .all(|c| c.is_ascii_graphic() && c != '"' && c != '=' && c != '\\')
    {
        v.to_owned()
    } else {
        let mut out = String::from("\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Epoch milliseconds to `YYYY-MM-DDTHH:MM:SS.mmmZ` (UTC), via the
/// days-to-civil-date algorithm (Howard Hinnant's `civil_from_days`).
fn rfc3339_millis(epoch_millis: u64) -> String {
    let secs = epoch_millis / 1000;
    let millis = epoch_millis % 1000;
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (h, m, s) = (tod / 3600, (tod % 3600) / 60, tod % 60);

    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };

    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_level_and_format_tokens() {
        let c = parse_config("debug,json");
        assert_eq!(c.level, Some(Level::Debug));
        assert_eq!(c.format, Format::Json);
        let c = parse_config("info");
        assert_eq!(c.level, Some(Level::Info));
        assert_eq!(c.format, Format::Text);
        assert_eq!(parse_config("").level, None);
        assert_eq!(parse_config("off").level, None);
        assert_eq!(parse_config("frobnicate").level, None);
        // A bare format implies info.
        assert_eq!(parse_config("json").level, Some(Level::Info));
    }

    #[test]
    fn level_ordering_gates_correctly() {
        let c = parse_config("warn");
        let max = c.level.unwrap();
        assert!(Level::Error <= max);
        assert!(Level::Warn <= max);
        assert!(Level::Info > max);
        assert!(Level::Debug > max);
    }

    #[test]
    fn text_line_golden() {
        // 2026-08-05T12:30:05.042Z
        let ts = 1_785_933_005_042u64;
        let line = format_line(
            Format::Text,
            Level::Info,
            "http.request",
            &[("method", "POST"), ("path", "/simulate"), ("ua", "a b")],
            ts,
        );
        assert_eq!(
            line,
            "2026-08-05T12:30:05.042Z INFO  http.request method=POST path=/simulate ua=\"a b\""
        );
    }

    #[test]
    fn json_line_golden() {
        let line = format_line(
            Format::Json,
            Level::Debug,
            "span.exit",
            &[("span", "run_layer"), ("layer", "Conv\"1")],
            0,
        );
        assert_eq!(
            line,
            "{\"ts\":\"1970-01-01T00:00:00.000Z\",\"level\":\"debug\",\"event\":\"span.exit\",\"span\":\"run_layer\",\"layer\":\"Conv\\\"1\"}"
        );
    }

    #[test]
    fn timestamps_cover_leap_years() {
        // 2024-02-29T00:00:00Z = 1709164800.
        assert_eq!(
            rfc3339_millis(1_709_164_800_000),
            "2024-02-29T00:00:00.000Z"
        );
        assert_eq!(rfc3339_millis(0), "1970-01-01T00:00:00.000Z");
    }
}
