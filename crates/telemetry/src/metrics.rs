//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All primitives are lock-free (`Ordering::Relaxed` atomics — these are
//! monotonic telemetry values, not synchronization points) and are handed
//! out as `Arc`s by the [`Registry`](crate::Registry), so instrumented code
//! pays one atomic op per update with no registry lookup on the hot path.
//!
//! Float accumulation (`FloatCounter::add`, `Histogram::observe`) stores the
//! `f64` as its bit pattern in an `AtomicU64` and accumulates with a
//! compare-and-swap loop, the standard std-only idiom for atomic floats.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` counter, for quantities (energy, bytes
/// per second) that are not naturally integral.
#[derive(Debug)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl Default for FloatCounter {
    fn default() -> FloatCounter {
        FloatCounter {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl FloatCounter {
    /// A counter starting at zero.
    pub fn new() -> FloatCounter {
        FloatCounter::default()
    }

    /// Adds `v` (negative or non-finite increments are ignored — a counter
    /// must never decrease or poison the running sum).
    pub fn add(&self, v: f64) {
        if !(v.is_finite() && v >= 0.0) {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An integer gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram in the Prometheus style: cumulative bucket
/// counts over a sorted list of upper bounds, plus a running sum and count.
///
/// Bucket bounds are fixed at construction; an implicit `+Inf` bucket
/// catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` slot; *non*-cumulative — each
    /// observation lands in exactly one slot, cumulation happens at render.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (upper bucket edges). Bounds are sorted
    /// and deduplicated; non-finite bounds are dropped (`+Inf` is implicit).
    pub fn new(bounds: &[f64]) -> Histogram {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        bounds.dedup();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Default buckets for wall-clock durations in seconds: 1 ms .. 60 s.
    pub fn duration_buckets() -> Vec<f64> {
        vec![0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0]
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let slot = self.bounds.partition_point(|&b| b < v);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count at or below each bound, ending with the `+Inf`
    /// total — the `le` series of the Prometheus exposition.
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut total = 0;
        self.counts
            .iter()
            .map(|c| {
                total += c.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn float_counter_accumulates_and_rejects_bad_input() {
        let c = FloatCounter::new();
        c.add(1.5);
        c.add(2.25);
        c.add(-1.0);
        c.add(f64::NAN);
        c.add(f64::INFINITY);
        assert_eq!(c.get(), 3.75);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_observations_at_boundaries() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        // Prometheus buckets are `le` (inclusive upper bound).
        h.observe(0.5); // le=1
        h.observe(1.0); // le=1 (boundary is inclusive)
        h.observe(1.0001); // le=5
        h.observe(5.0); // le=5
        h.observe(7.0); // le=10
        h.observe(10.5); // +Inf
        assert_eq!(h.cumulative_counts(), vec![2, 4, 5, 6]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 25.0001).abs() < 1e-9);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let h = Histogram::new(&[5.0, 1.0, 5.0, f64::INFINITY]);
        assert_eq!(h.bounds(), &[1.0, 5.0]);
        assert_eq!(h.cumulative_counts().len(), 3);
    }

    #[test]
    fn histogram_ignores_non_finite_observations() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_under_concurrency_is_consistent() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(&[10.0, 100.0]));
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 50 + i % 3) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(*h.cumulative_counts().last().unwrap(), 4000);
    }
}
