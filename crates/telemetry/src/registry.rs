//! The metric registry and the Prometheus text-format exporter.
//!
//! A [`Registry`] is a named, label-aware collection of metric families.
//! `counter`/`gauge`/`histogram` are *get-or-create*: the first call for a
//! `(name, labels)` pair creates the series, later calls return the same
//! `Arc`, so callers can either hold the handle (hot paths) or re-resolve
//! it by name (cold paths). Families render in registration order, series
//! in creation order, which keeps the exposition deterministic — the golden
//! tests rely on that.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram};

/// The concrete metric behind one labeled series.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    FloatCounter(Arc<FloatCounter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::FloatCounter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A thread-safe collection of metric families with a Prometheus
/// text-format renderer.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Borrowed label pairs, e.g. `&[("layer", "Conv1")]`.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter series under `labels`.
    pub fn counter_with(&self, name: &str, help: &str, labels: Labels) -> Arc<Counter> {
        match self.resolve(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create an unlabeled float counter.
    pub fn float_counter(&self, name: &str, help: &str) -> Arc<FloatCounter> {
        self.float_counter_with(name, help, &[])
    }

    /// Get-or-create a float counter series under `labels`.
    pub fn float_counter_with(&self, name: &str, help: &str, labels: Labels) -> Arc<FloatCounter> {
        let create = || Metric::FloatCounter(Arc::new(FloatCounter::new()));
        match self.resolve(name, help, labels, create) {
            Metric::FloatCounter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a gauge series under `labels`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: Labels) -> Arc<Gauge> {
        match self.resolve(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-create a histogram series under `labels`. The bounds of the
    /// first creation win; later calls for the same series ignore `bounds`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: Labels,
    ) -> Arc<Histogram> {
        let create = || Metric::Histogram(Arc::new(Histogram::new(bounds)));
        match self.resolve(name, help, labels, create) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    fn resolve(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        create: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| labels_eq(&s.labels, labels)) {
            return series.metric.clone();
        }
        let metric = create();
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            metric: metric.clone(),
        });
        metric
    }

    /// The current value of a counter series, if it exists. `u64` counters
    /// and float counters both answer (floats are truncated); used by
    /// profile readers that want exact integers back.
    pub fn counter_value(&self, name: &str, labels: Labels) -> Option<u64> {
        let families = self.families.lock().unwrap();
        let family = families.iter().find(|f| f.name == name)?;
        let series = family
            .series
            .iter()
            .find(|s| labels_eq(&s.labels, labels))?;
        match &series.metric {
            Metric::Counter(c) => Some(c.get()),
            Metric::FloatCounter(c) => Some(c.get() as u64),
            _ => None,
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` preambles, one sample line per
    /// series, histograms expanded into `_bucket`/`_sum`/`_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            if family.series.is_empty() {
                continue;
            }
            let kind = family.series[0].metric.kind();
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {kind}", family.name);
            for series in &family.series {
                render_series(&mut out, &family.name, series);
            }
        }
        out
    }
}

fn labels_eq(owned: &[(String, String)], borrowed: Labels) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed)
            .all(|((ok, ov), (bk, bv))| ok == bk && ov == bv)
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.metric {
        Metric::Counter(c) => {
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_block(&series.labels, None),
                c.get()
            );
        }
        Metric::FloatCounter(c) => {
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_block(&series.labels, None),
                format_value(c.get())
            );
        }
        Metric::Gauge(g) => {
            let _ = writeln!(
                out,
                "{name}{} {}",
                label_block(&series.labels, None),
                g.get()
            );
        }
        Metric::Histogram(h) => {
            let cumulative = h.cumulative_counts();
            for (i, count) in cumulative.iter().enumerate() {
                let le = match h.bounds().get(i) {
                    Some(b) => format_value(*b),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {count}",
                    label_block(&series.labels, Some(&le))
                );
            }
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                label_block(&series.labels, None),
                format_value(h.sum())
            );
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                label_block(&series.labels, None),
                h.count()
            );
        }
    }
}

/// `{k="v",...}` (with an optional trailing `le`), or the empty string.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Formats a sample value: integral floats print without a fraction
/// (`1` not `1.0` — matching Rust's shortest-round-trip `Display`, which
/// Prometheus accepts), non-finite values use Prometheus spellings.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// The process-wide default registry, used by the simulator crates so
/// instrumentation needs no plumbing. Servers typically render this
/// *plus* their own per-engine registry. Initialization registers the
/// `scalesim_build_info` identity gauge (value 1, labeled with the crate
/// version and — when the build set `SCALESIM_GIT_HASH` — the git hash),
/// so any `/metrics` scrape identifies the binary in a fleet.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        registry
            .gauge_with(
                "scalesim_build_info",
                "Build identity; the value is always 1.",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("git", option_env!("SCALESIM_GIT_HASH").unwrap_or("unknown")),
                ],
            )
            .set(1);
        registry
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_series() {
        let r = Registry::new();
        let a = r.counter_with("jobs_total", "Jobs.", &[("kind", "x")]);
        let b = r.counter_with("jobs_total", "Jobs.", &[("kind", "x")]);
        let c = r.counter_with("jobs_total", "Jobs.", &[("kind", "y")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(c.get(), 0);
        assert_eq!(r.counter_value("jobs_total", &[("kind", "x")]), Some(1));
        assert_eq!(r.counter_value("jobs_total", &[("kind", "z")]), None);
        assert_eq!(r.counter_value("nope", &[]), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "help");
        r.gauge("m", "help");
    }

    /// Exact-string golden test of the full exposition format.
    #[test]
    fn prometheus_text_format_golden() {
        let r = Registry::new();
        r.counter("sim_jobs_total", "Total jobs.").add(3);
        r.counter_with(
            "sim_requests_total",
            "Requests by outcome.",
            &[("outcome", "hit")],
        )
        .add(2);
        r.counter_with(
            "sim_requests_total",
            "Requests by outcome.",
            &[("outcome", "fresh")],
        )
        .inc();
        r.gauge("sim_in_flight", "Jobs in flight.").set(1);
        r.float_counter("sim_energy_total", "Energy units.")
            .add(2.5);
        let h = r.histogram("sim_wait_seconds", "Queue wait.", &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let expected = "\
# HELP sim_jobs_total Total jobs.
# TYPE sim_jobs_total counter
sim_jobs_total 3
# HELP sim_requests_total Requests by outcome.
# TYPE sim_requests_total counter
sim_requests_total{outcome=\"hit\"} 2
sim_requests_total{outcome=\"fresh\"} 1
# HELP sim_in_flight Jobs in flight.
# TYPE sim_in_flight gauge
sim_in_flight 1
# HELP sim_energy_total Energy units.
# TYPE sim_energy_total counter
sim_energy_total 2.5
# HELP sim_wait_seconds Queue wait.
# TYPE sim_wait_seconds histogram
sim_wait_seconds_bucket{le=\"0.5\"} 1
sim_wait_seconds_bucket{le=\"1\"} 2
sim_wait_seconds_bucket{le=\"+Inf\"} 3
sim_wait_seconds_sum 10
sim_wait_seconds_count 3
";
        assert_eq!(r.render(), expected);
    }

    #[test]
    fn labeled_histogram_appends_le_last() {
        let r = Registry::new();
        r.histogram_with("lat", "Latency.", &[1.0], &[("route", "simulate")])
            .observe(0.5);
        let text = r.render();
        assert!(text.contains("lat_bucket{route=\"simulate\",le=\"1\"} 1"));
        assert!(text.contains("lat_sum{route=\"simulate\"} 0.5"));
        assert!(text.contains("lat_count{route=\"simulate\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("m", "h", &[("name", "a\"b\\c\nd")]).inc();
        assert!(r.render().contains(r#"m{name="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().render(), "");
    }

    /// Multi-label series render deterministically: families in
    /// registration order, series in creation order, label pairs in the
    /// order the caller gave them — byte-for-byte stable across calls.
    #[test]
    fn multi_label_render_order_is_deterministic() {
        let r = Registry::new();
        r.counter_with(
            "phase_micros",
            "Phase time.",
            &[("layer", "Conv1"), ("phase", "dram")],
        )
        .add(7);
        r.counter_with(
            "phase_micros",
            "Phase time.",
            &[("layer", "Conv1"), ("phase", "compute")],
        )
        .add(3);
        r.counter_with(
            "phase_micros",
            "Phase time.",
            &[("phase", "compute"), ("layer", "Conv2")],
        )
        .add(1);
        let expected = "\
# HELP phase_micros Phase time.
# TYPE phase_micros counter
phase_micros{layer=\"Conv1\",phase=\"dram\"} 7
phase_micros{layer=\"Conv1\",phase=\"compute\"} 3
phase_micros{phase=\"compute\",layer=\"Conv2\"} 1
";
        assert_eq!(r.render(), expected);
        assert_eq!(r.render(), expected, "rendering is stable across calls");
        // Label *order* is part of series identity here: the same pairs in
        // a different order resolve to a different series.
        assert_eq!(
            r.counter_value("phase_micros", &[("layer", "Conv1"), ("phase", "dram")]),
            Some(7)
        );
        assert_eq!(
            r.counter_value("phase_micros", &[("phase", "dram"), ("layer", "Conv1")]),
            None
        );
    }

    /// Concurrent first-touch of the same (name, labels) from many
    /// threads must agree on one series: every increment lands in one
    /// counter and the family gains exactly one series per label set.
    #[test]
    fn concurrent_first_touch_creates_one_series() {
        let r = Registry::new();
        const THREADS: usize = 16;
        const INCS: usize = 100;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..INCS {
                        r.counter_with(
                            "first_touch_total",
                            "Racy get-or-create.",
                            &[("shared", "yes")],
                        )
                        .inc();
                        r.counter_with(
                            "first_touch_total",
                            "Racy get-or-create.",
                            &[("thread", &t.to_string())],
                        )
                        .inc();
                    }
                });
            }
        });
        assert_eq!(
            r.counter_value("first_touch_total", &[("shared", "yes")]),
            Some((THREADS * INCS) as u64)
        );
        let text = r.render();
        assert_eq!(
            text.matches("first_touch_total{shared=\"yes\"}").count(),
            1,
            "exactly one shared series survived the race:\n{text}"
        );
        for t in 0..THREADS {
            let labels = [("thread", t.to_string())];
            let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            assert_eq!(
                r.counter_value("first_touch_total", &labels),
                Some(INCS as u64)
            );
        }
    }

    #[test]
    fn global_registry_exports_build_info() {
        let text = global().render();
        let line = text
            .lines()
            .find(|l| l.starts_with("scalesim_build_info"))
            .expect("build info gauge registered");
        assert!(line.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))));
        assert!(line.contains("git=\""));
        assert!(line.ends_with(" 1"));
    }
}
