//! A bounded flight recorder: the last `capacity` records of anything.
//!
//! The pattern comes from avionics: keep a small ring of the most recent
//! interesting records in memory at all times so a post-mortem (a worker
//! panic, a 503 storm, a SIGTERM drain) can be reconstructed from what the
//! process *already knows*, without reproducing the failure. Writers pay
//! one short uncontended lock per record; memory is bounded by
//! construction — once full, each new record evicts the oldest.
//!
//! `scalesim-server` keeps one of these per engine with one entry per
//! completed job and dumps it on panic and on drain; anything `Clone`
//! works as the record type.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-capacity ring of the most recent records. Cheap to write
/// (`Mutex<VecDeque>` — record rates here are per job, not per event),
/// cheap to read, bounded by construction.
#[derive(Debug)]
pub struct FlightRecorder<T> {
    capacity: usize,
    ring: Mutex<VecDeque<T>>,
}

impl<T: Clone> FlightRecorder<T> {
    /// A recorder that retains the last `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder<T> {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends a record, evicting the oldest once the ring is full.
    pub fn record(&self, record: T) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_newest_records_in_order() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_empty());
        for i in 0..5 {
            recorder.record(i);
        }
        assert_eq!(recorder.snapshot(), vec![2, 3, 4]);
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record("a");
        recorder.record("b");
        assert_eq!(recorder.snapshot(), vec!["b"]);
    }

    #[test]
    fn concurrent_writers_never_exceed_the_bound() {
        let recorder = std::sync::Arc::new(FlightRecorder::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let recorder = std::sync::Arc::clone(&recorder);
                s.spawn(move || {
                    for i in 0..100 {
                        recorder.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(recorder.len(), 8);
    }
}
