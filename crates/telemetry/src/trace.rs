//! Hierarchical trace recording with Chrome trace-event export.
//!
//! When tracing is [`install`]ed, every [`Span`](crate::Span) (and every
//! lightweight [`TraceSpan`] opened via [`span`]/[`span_with`]) records one
//! *complete* event — name, start, duration, thread, parent span — into a
//! bounded ring buffer. [`export_chrome_json`] serializes the ring in the
//! Chrome trace-event format, which loads directly into Perfetto or
//! `chrome://tracing` and renders the run as a per-thread timeline with
//! nested spans.
//!
//! # Cost model
//!
//! Tracing is **off by default** and the disabled path is one relaxed
//! atomic load per span with no allocation — [`span`] returns an inert
//! guard and [`span_with`] never calls its argument closure. When enabled,
//! recording a finished span is a `fetch_add` to claim a ring slot plus
//! one store under that slot's own (almost always uncontended) lock; the
//! ring is preallocated at [`install`] time, so the steady state allocates
//! only the span's argument strings. The buffer is bounded: once full, new
//! events overwrite the oldest — tracing can run forever without growing.
//!
//! Recording **never blocks**: the slot store uses `try_lock`, so if a
//! concurrent snapshot (or a wrap-around writer racing for the same slot)
//! holds the lock, the event is dropped instead of stalling the simulating
//! thread, and `scalesim_trace_events_dropped_total` in the global metric
//! registry counts the loss. The claim itself is a lock-free `fetch_add`;
//! the per-slot copy is mutex-guarded, which is why the ring as a whole is
//! *non-blocking for writers* rather than strictly lock-free.
//!
//! # Hierarchy
//!
//! Parent/child links come from a per-thread stack of open span ids:
//! entering a span pushes its id, dropping it pops. Spans therefore nest
//! within a thread (the RAII discipline guarantees well-formed nesting),
//! while spans on different threads — e.g. sweep workers — appear as
//! separate timeline rows keyed by a process-local thread id. Each event
//! carries its own `id` and its `parent` id (0 for a root span) in the
//! exported `args`, so consumers can rebuild the tree exactly.

use std::cell::{Cell, RefCell};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity for [`install`]: deep enough for a full
/// sweep/explore run at per-layer/per-phase granularity, small enough
/// (a few MiB) to preallocate without thought.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Registry name of the counter of events dropped because their ring slot
/// was contended (see the module docs' cost model).
pub const DROPPED_COUNTER: &str = "scalesim_trace_events_dropped_total";

/// The contention-drop counter, registered in the global metric registry
/// on first use so `/metrics` exposes it alongside the simulator counters.
fn dropped_counter() -> &'static std::sync::Arc<crate::Counter> {
    static DROPPED: OnceLock<std::sync::Arc<crate::Counter>> = OnceLock::new();
    DROPPED.get_or_init(|| {
        crate::global().counter(
            DROPPED_COUNTER,
            "Trace events dropped because their ring slot was contended.",
        )
    })
}

/// Total trace events dropped on slot contention since process start.
pub fn events_dropped() -> u64 {
    dropped_counter().get()
}

/// One finished span, as stored in the ring and returned by [`events`].
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (the first argument of `span!`/[`span`]).
    pub name: &'static str,
    /// Unique id of this span (process-local, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Process-local id of the thread the span ran on.
    pub tid: u64,
    /// Start time in microseconds since the recorder's epoch.
    pub start_micros: u64,
    /// Wall duration in microseconds.
    pub dur_micros: u64,
    /// Key/value arguments attached to the span.
    pub args: Vec<(&'static str, String)>,
}

/// Bounded ring of trace events. Slot claim is a single `fetch_add`;
/// each slot has its own lock, contended only against a concurrent
/// snapshot or a wrap-around overwrite of that exact slot — and writers
/// `try_lock`, dropping (and counting) the event rather than blocking.
struct Ring {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn record(&self, event: TraceEvent) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Never block a simulating thread on telemetry: if a snapshot (or
        // a wrapping writer) holds this slot, drop the event and count it.
        match slot.try_lock() {
            Ok(mut slot) => *slot = Some(event),
            Err(_) => dropped_counter().inc(),
        }
    }

    /// Snapshot in record order, oldest surviving event first.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let len = head.min(cap);
        let first = head - len; // index of the oldest surviving event
        (first..head)
            .filter_map(|i| {
                self.slots[(i % cap) as usize]
                    .lock()
                    .unwrap()
                    .as_ref()
                    .cloned()
            })
            .collect()
    }

    fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap() = None;
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

/// The installed recorder: the ring plus the time epoch and the table of
/// thread names seen so far (exported as `thread_name` metadata events).
struct Recorder {
    epoch: Instant,
    ring: Ring,
    thread_names: Mutex<Vec<(u64, String)>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<Recorder> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread id, assigned on first use.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Open span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Whether this thread's name is already in the recorder's table.
    static NAMED: Cell<bool> = const { Cell::new(false) };
}

/// Installs the global recorder with a ring of `capacity` events and
/// enables recording. Idempotent: the first call fixes the capacity and
/// the time epoch; later calls only re-enable recording.
pub fn install(capacity: usize) {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        ring: Ring::new(capacity),
        thread_names: Mutex::new(Vec::new()),
    });
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording on or off. A no-op until [`install`] has run; the
/// already-recorded events stay in the ring either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on && RECORDER.get().is_some(), Ordering::Relaxed);
}

/// Whether spans are currently being recorded. This is the whole disabled
/// path: one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Live context of an open span; produced by [`begin`], consumed by
/// [`end`]. Crate-internal: [`crate::Span`] and [`TraceSpan`] hold one.
#[derive(Debug)]
pub(crate) struct SpanCtx {
    id: u64,
    parent: u64,
    tid: u64,
    start: Instant,
}

/// Opens a traced region: assigns a span id, links it to the innermost
/// open span on this thread and pushes it onto the thread's stack.
/// Returns `None` (without allocating) when tracing is disabled.
pub(crate) fn begin() -> Option<SpanCtx> {
    if !enabled() {
        return None;
    }
    let tid = TID.with(|t| *t);
    register_thread(tid);
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    Some(SpanCtx {
        id,
        parent,
        tid,
        start: Instant::now(),
    })
}

/// Closes a traced region: pops it off the thread's stack and records the
/// complete event into the ring.
pub(crate) fn end(ctx: SpanCtx, name: &'static str, args: &[(&'static str, String)]) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(pos) = s.iter().rposition(|&id| id == ctx.id) {
            s.truncate(pos);
        }
    });
    let Some(recorder) = RECORDER.get() else {
        return;
    };
    let start = ctx.start.saturating_duration_since(recorder.epoch);
    recorder.ring.record(TraceEvent {
        name,
        id: ctx.id,
        parent: ctx.parent,
        tid: ctx.tid,
        start_micros: start.as_micros() as u64,
        dur_micros: ctx.start.elapsed().as_micros() as u64,
        args: args.to_vec(),
    });
}

/// Remembers the current thread's name (or a synthetic one) the first
/// time it records, for `thread_name` metadata in the export.
fn register_thread(tid: u64) {
    if NAMED.with(|n| n.replace(true)) {
        return;
    }
    if let Some(recorder) = RECORDER.get() {
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tid}"));
        recorder.thread_names.lock().unwrap().push((tid, name));
    }
}

/// A lightweight RAII trace guard for hot paths: records only into the
/// trace ring, never into the metric registry (unlike [`crate::Span`]).
/// Inert — a single branch, no allocation, no clock read — when tracing
/// is disabled.
#[derive(Debug)]
pub struct TraceSpan {
    name: &'static str,
    ctx: Option<SpanCtx>,
    args: Vec<(&'static str, String)>,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            end(ctx, self.name, &self.args);
        }
    }
}

/// Opens an argument-less [`TraceSpan`] named `name`.
#[inline]
pub fn span(name: &'static str) -> TraceSpan {
    TraceSpan {
        name,
        ctx: begin(),
        args: Vec::new(),
    }
}

/// Opens a [`TraceSpan`] whose arguments come from `args` — called only
/// when tracing is enabled, so the disabled path never allocates.
#[inline]
pub fn span_with(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> TraceSpan {
    let ctx = begin();
    TraceSpan {
        name,
        args: if ctx.is_some() { args() } else { Vec::new() },
        ctx,
    }
}

/// Snapshot of the recorded events, oldest surviving event first. Empty
/// until [`install`] has run.
pub fn events() -> Vec<TraceEvent> {
    RECORDER.get().map_or_else(Vec::new, |r| r.ring.snapshot())
}

/// Empties the ring (the epoch and thread table stay). Test/bench hook.
pub fn clear() {
    if let Some(recorder) = RECORDER.get() {
        recorder.ring.clear();
    }
}

/// Serializes the recorded events as Chrome trace-event JSON:
/// an object with a `traceEvents` array of `ph:"X"` complete events
/// (microsecond `ts`/`dur`, one `tid` row per thread) preceded by
/// `thread_name` metadata, loadable in Perfetto or `chrome://tracing`.
/// Span ids and parent links ride in each event's `args`.
///
/// # Errors
///
/// Propagates write errors from `w`.
pub fn export_chrome_json(w: &mut dyn Write) -> io::Result<()> {
    let mut events = events();
    events.sort_by_key(|e| (e.start_micros, e.id));
    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    if let Some(recorder) = RECORDER.get() {
        for (tid, name) in recorder.thread_names.lock().unwrap().iter() {
            comma(w, &mut first)?;
            writeln!(
                w,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            )?;
        }
    }
    for e in &events {
        comma(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"scalesim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            escape(e.name),
            e.start_micros,
            e.dur_micros,
            e.tid,
            e.id,
            e.parent,
        )?;
        for (k, v) in &e.args {
            write!(w, ",\"{}\":\"{}\"", escape(k), escape(v))?;
        }
        writeln!(w, "}}}}")?;
    }
    writeln!(w, "]}}")
}

fn comma(w: &mut dyn Write, first: &mut bool) -> io::Result<()> {
    if !*first {
        w.write_all(b",")?;
    }
    *first = false;
    Ok(())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest_events() {
        let ring = Ring::new(4);
        let event = |i: u64| TraceEvent {
            name: "e",
            id: i,
            parent: 0,
            tid: 1,
            start_micros: i,
            dur_micros: 1,
            args: Vec::new(),
        };
        for i in 0..10 {
            ring.record(event(i));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest events are overwritten");
        ring.clear();
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn contended_slot_drops_the_event_instead_of_blocking() {
        let ring = Ring::new(2);
        let event = |i: u64| TraceEvent {
            name: "e",
            id: i,
            parent: 0,
            tid: 1,
            start_micros: i,
            dur_micros: 1,
            args: Vec::new(),
        };
        // Simulate a snapshot holding slot 0: recording into it must
        // return immediately (a hang here would time the suite out),
        // drop the event, and bump the drop counter.
        let dropped_before = events_dropped();
        {
            let _held = ring.slots[0].lock().unwrap();
            ring.record(event(1));
        }
        assert_eq!(events_dropped(), dropped_before + 1);
        // The claim still advanced past the contended slot, so the next
        // event lands in slot 1 and survives.
        ring.record(event(2));
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![2], "the contended event is gone, not stuck");
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        // Not installed (or explicitly disabled): begin is None and the
        // guard stays inert.
        let was = enabled();
        set_enabled(false);
        {
            let _g = span("trace_test_disabled");
            let _h = span_with("trace_test_disabled_args", || {
                panic!("args closure must not run when tracing is disabled")
            });
        }
        assert!(!events()
            .iter()
            .any(|e| e.name.starts_with("trace_test_disabled")));
        set_enabled(was);
    }

    #[test]
    fn spans_nest_within_a_thread_and_cross_threads_get_own_rows() {
        install(4096);
        let before: Vec<u64> = events()
            .iter()
            .filter(|e| e.name.starts_with("trace_test_nest"))
            .map(|e| e.id)
            .collect();
        {
            let _outer = span("trace_test_nest_outer");
            {
                let _inner =
                    span_with("trace_test_nest_inner", || vec![("worker", "3".to_owned())]);
            }
            std::thread::spawn(|| {
                let _other = span("trace_test_nest_thread");
            })
            .join()
            .unwrap();
        }
        let fresh: Vec<TraceEvent> = events()
            .into_iter()
            .filter(|e| e.name.starts_with("trace_test_nest") && !before.contains(&e.id))
            .collect();
        let find = |name: &str| {
            fresh
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        let outer = find("trace_test_nest_outer");
        let inner = find("trace_test_nest_inner");
        let other = find("trace_test_nest_thread");
        assert_eq!(inner.parent, outer.id, "inner span links to its parent");
        assert_eq!(inner.args, vec![("worker", "3".to_owned())]);
        assert_eq!(other.parent, 0, "a span on a fresh thread is a root");
        assert_ne!(other.tid, outer.tid, "threads get distinct rows");
        assert!(outer.dur_micros >= inner.dur_micros);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        install(4096);
        {
            let _g = span_with("trace_test_export", || {
                vec![("layer", "Conv\"1\"\n".to_owned())]
            });
        }
        let mut out = Vec::new();
        export_chrome_json(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"name\":\"trace_test_export\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"layer\":\"Conv\\\"1\\\"\\n\""), "{text}");
        // Balanced enough to be JSON: every line between the brackets is
        // one object, separated by commas.
        assert!(!text.contains("\n\n"));
    }
}
