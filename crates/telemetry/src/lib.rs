//! `scalesim-telemetry` — zero-dependency observability for scale-sim-rs.
//!
//! The workspace's dependency policy is std-only (the build environment has
//! no crates.io access — see `vendor/README.md`), so this crate implements
//! the observability layer from scratch rather than binding `tracing` /
//! `prometheus`:
//!
//! * **Metrics** ([`metrics`], [`registry`]) — [`Counter`],
//!   [`FloatCounter`], [`Gauge`] and fixed-bucket [`Histogram`] primitives
//!   behind a label-aware, get-or-create [`Registry`] with a Prometheus
//!   text-format renderer ([`Registry::render`]). A process-wide
//!   [`global()`] registry carries simulator-side metrics; servers render
//!   it alongside their own per-engine registries.
//! * **Spans** ([`span`](mod@span), the [`span!`] macro) — RAII wall-time guards
//!   that accumulate per-span-name totals into the global registry and
//!   emit debug log events on enter/exit. When tracing is installed they
//!   also record hierarchical events into the trace ring.
//! * **Tracing** ([`trace`]) — a bounded ring of finished spans with
//!   parent/child links and per-thread rows, exportable as Chrome
//!   trace-event JSON (Perfetto / `chrome://tracing`); off by default and
//!   one branch per span when disabled.
//! * **Flight recorder** ([`recorder`]) — a bounded ring of recent
//!   records (e.g. one per server job) for in-memory post-mortems.
//! * **Structured logging** ([`log`]) — leveled `key=value` or JSON line
//!   events on stderr, gated by the `SCALESIM_LOG` environment variable
//!   (off by default).
//!
//! The cost model is deliberate: disabled logging is one branch, metric
//! updates held as `Arc` handles are one relaxed atomic op, and registry
//! lookups (a short mutex + linear scan) only appear on per-layer or
//! per-request paths, never inside per-cycle or per-fold loops.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod trace;

pub use metrics::{Counter, FloatCounter, Gauge, Histogram};
pub use recorder::FlightRecorder;
pub use registry::{global, Labels, Registry};
pub use span::Span;
pub use trace::TraceSpan;
