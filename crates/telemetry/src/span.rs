//! Lightweight timing spans.
//!
//! A [`Span`] is an RAII guard created by the [`span!`](crate::span!)
//! macro: it notes a monotonic start time on entry and, on drop, adds its
//! wall time to a pair of per-span-name counters in the
//! [`global`] registry
//! (`scalesim_span_micros_total{span=...}` /
//! `scalesim_span_calls_total{span=...}`) and emits a debug log event with
//! the span's fields. Fields carry request context (layer name, network)
//! into the logs but deliberately *not* into metric labels, keeping metric
//! cardinality bounded by the set of span names.

use std::time::Instant;

use crate::log::{self, Level};
use crate::registry::global;
use crate::trace;

/// Counter family for cumulative span wall time; see module docs.
pub const SPAN_MICROS_TOTAL: &str = "scalesim_span_micros_total";
/// Counter family for span entry counts; see module docs.
pub const SPAN_CALLS_TOTAL: &str = "scalesim_span_calls_total";

/// An in-progress timed span; created by [`span!`](crate::span!).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    /// Trace-ring context when tracing is installed and enabled;
    /// `None` (one branch, no cost) otherwise.
    trace: Option<trace::SpanCtx>,
}

impl Span {
    /// Enters a span. Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, String)>) -> Span {
        if log::enabled(Level::Debug) {
            let mut pairs: Vec<(&str, &str)> = vec![("span", name)];
            pairs.extend(fields.iter().map(|(k, v)| (*k, v.as_str())));
            log::debug("span.enter", &pairs);
        }
        Span {
            name,
            fields,
            start: Instant::now(),
            trace: trace::begin(),
        }
    }

    /// Elapsed wall time so far.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(ctx) = self.trace.take() {
            trace::end(ctx, self.name, &self.fields);
        }
        let micros = self.elapsed_micros();
        let labels = [("span", self.name)];
        global()
            .counter_with(SPAN_MICROS_TOTAL, "Cumulative span wall time.", &labels)
            .add(micros);
        global()
            .counter_with(SPAN_CALLS_TOTAL, "Span entry count.", &labels)
            .inc();
        if log::enabled(Level::Debug) {
            let micros = micros.to_string();
            let mut pairs: Vec<(&str, &str)> = vec![("span", self.name), ("micros", &micros)];
            pairs.extend(self.fields.iter().map(|(k, v)| (*k, v.as_str())));
            log::debug("span.exit", &pairs);
        }
    }
}

/// Opens a timed [`Span`]; bind it to keep it alive for the timed region:
///
/// ```
/// let _span = scalesim_telemetry::span!("run_layer", layer = "Conv1");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::Span::enter(
            $name,
            ::std::vec![$((stringify!($key), ::std::string::ToString::to_string(&$value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_the_global_registry() {
        {
            let _span = crate::span!("telemetry_test_span", layer = "Conv1");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _span = crate::span!("telemetry_test_span");
        }
        let labels = [("span", "telemetry_test_span")];
        let calls = global().counter_value(SPAN_CALLS_TOTAL, &labels).unwrap();
        let micros = global().counter_value(SPAN_MICROS_TOTAL, &labels).unwrap();
        assert!(calls >= 2, "calls = {calls}");
        assert!(micros >= 2_000, "micros = {micros}");
    }

    #[test]
    fn elapsed_is_monotonic() {
        let span = Span::enter("telemetry_test_monotonic", Vec::new());
        let a = span.elapsed_micros();
        let b = span.elapsed_micros();
        assert!(b >= a);
    }
}
