//! The scaling advisor — the paper's "heuristic-driven approach that
//! efficiently identifies the optimal scaling strategy, along with the
//! design configuration within a particular scaling strategy, for a given
//! set of workloads" (Section I, contribution 3 / Section IV).
//!
//! The heuristic is the paper's own: the fundamental trade-off is
//! performance vs. DRAM bandwidth (Fig. 11), so the advisor enumerates
//! every scale-up and scale-out configuration of the MAC budget, *prunes*
//! the ones whose first-order stall-free bandwidth requirement exceeds the
//! available interface bandwidth, and returns the runtime-optimal survivor
//! (falling back to the least-bandwidth-hungry configuration when nothing
//! fits). Runtime and bandwidth are both closed-form here — no simulation
//! in the loop — which is exactly how the paper uses the analytical model
//! to "chart and prune the search space".

use serde::{Deserialize, Serialize};

use scalesim_systolic::{fold_duration, ArrayShape, FoldPlan};
use scalesim_topology::{Dataflow, MappedDims};

use crate::partition::{scaleout_configs, split_dims, ScaleOutConfig};
use crate::runtime::RuntimeModel;

/// First-order stall-free DRAM bandwidth requirement of `dims` on `array`,
/// in *elements per cycle*, assuming dense operands (no convolution window
/// reuse — a conservative estimate, matching the GEMM workloads the paper
/// sweeps analytically).
///
/// Per fold, the operands that must be resident are the streamed/filled
/// tiles; under double buffering they arrive during the previous
/// (same-sized, steady-state) fold, so the requirement is
/// `fold demand / fold duration`, maximized over the fold-shape classes.
/// Only *fresh* data counts: tiles kept across consecutive folds (the
/// stationary operand of the inner loop) are not refetched.
pub fn estimate_bandwidth(dims: &MappedDims, array: ArrayShape) -> f64 {
    let plan = FoldPlan::new(dims, array);
    let t = dims.temporal;
    let mut worst: f64 = 0.0;
    for (count, ru, cu) in plan.shape_classes() {
        if count == 0 {
            continue;
        }
        let duration = fold_duration(ru, cu, t);
        // Fresh demand per fold: both operand tiles change every fold in
        // the row-major fold order (columns advance fastest: the B tile
        // always changes; the A tile repeats within a fold row).
        let (a_elems, b_elems) = match dims.dataflow {
            Dataflow::OutputStationary => (ru * t, cu * t),
            Dataflow::WeightStationary => (ru * t, ru * cu),
            Dataflow::InputStationary => (ru * cu, ru * t),
        };
        // Outputs stream out concurrently.
        let o_elems = match dims.dataflow {
            Dataflow::OutputStationary => ru * cu,
            _ => t * cu,
        };
        let rate = (a_elems + b_elems + o_elems) as f64 / duration as f64;
        worst = worst.max(rate);
    }
    worst
}

/// Aggregate bandwidth estimate for a scale-out configuration: the
/// per-partition estimate of the ceiling share, summed over partitions
/// (concurrent interfaces add — Sec. IV-A).
pub fn estimate_scaleout_bandwidth(dims: &MappedDims, config: &ScaleOutConfig) -> f64 {
    let share = split_dims(dims, config.grid);
    estimate_bandwidth(&share, config.array) * config.grid.count() as f64
}

/// What the advisor concluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The chosen configuration (grid 1×1 means "scale up").
    pub config: ScaleOutConfig,
    /// Predicted total stall-free runtime over the workload set.
    pub total_cycles: u64,
    /// Worst per-workload first-order bandwidth estimate (elements/cycle).
    pub peak_bandwidth: f64,
    /// Whether the configuration fits the stated bandwidth budget.
    pub within_budget: bool,
}

impl Recommendation {
    /// Convenience: is the advice to scale *out* (more than one partition)?
    pub fn is_scale_out(&self) -> bool {
        !self.config.is_monolithic()
    }
}

/// Recommends a configuration for `workloads` under `mac_budget` MACs and
/// (optionally) `bandwidth_budget` elements/cycle of DRAM bandwidth.
///
/// Enumerates every power-of-two scale-up and scale-out configuration
/// (min dimension `min_dim`), scores each with total runtime (`model`) and
/// peak bandwidth estimate across workloads, and picks the fastest
/// configuration that fits the bandwidth budget. If none fits, returns the
/// configuration with the lowest bandwidth requirement (flagged
/// `within_budget: false`), mirroring the paper's observation that at
/// large MAC counts even the sweet spot may exceed traditional DRAM.
///
/// # Panics
///
/// Panics if `workloads` is empty or the budget cannot fit a
/// `min_dim × min_dim` array.
pub fn recommend<M: RuntimeModel>(
    workloads: &[MappedDims],
    mac_budget: u64,
    min_dim: u64,
    bandwidth_budget: Option<f64>,
    model: &M,
) -> Recommendation {
    assert!(!workloads.is_empty(), "workload set must be nonempty");
    let mut best_fit: Option<Recommendation> = None;
    let mut least_hungry: Option<Recommendation> = None;

    for config in scaleout_configs(mac_budget, min_dim) {
        let mut total_cycles = 0u64;
        let mut peak_bw: f64 = 0.0;
        for w in workloads {
            total_cycles += crate::partition::scaleout_runtime(w, &config, model);
            peak_bw = peak_bw.max(estimate_scaleout_bandwidth(w, &config));
        }
        let within = bandwidth_budget.is_none_or(|limit| peak_bw <= limit);
        let candidate = Recommendation {
            config,
            total_cycles,
            peak_bandwidth: peak_bw,
            within_budget: within,
        };
        if within {
            let better = best_fit
                .as_ref()
                .is_none_or(|b| candidate.total_cycles < b.total_cycles);
            if better {
                best_fit = Some(candidate);
            }
        }
        let thriftier = least_hungry
            .as_ref()
            .is_none_or(|b| candidate.peak_bandwidth < b.peak_bandwidth);
        if thriftier {
            least_hungry = Some(candidate);
        }
    }

    best_fit
        .or(least_hungry)
        .expect("scaleout_configs returns at least one configuration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AnalyticalModel;
    use scalesim_topology::GemmShape;

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn bandwidth_estimate_is_positive_and_scales_with_partitions() {
        let d = dims(31999, 84, 1024);
        let mono = estimate_bandwidth(&d, ArrayShape::square(64));
        assert!(mono > 0.0);
        let quad = ScaleOutConfig {
            grid: crate::PartitionGrid::new(2, 2),
            array: ArrayShape::square(32),
        };
        // Same MAC count split four ways: aggregate demand goes up.
        assert!(estimate_scaleout_bandwidth(&d, &quad) > mono);
    }

    #[test]
    fn unlimited_bandwidth_recommends_the_fastest_config() {
        let ws = [dims(31999, 84, 1024)];
        let model = AnalyticalModel;
        let rec = recommend(&ws, 1 << 14, 8, None, &model);
        assert!(rec.within_budget);
        let (best_cfg, best_cycles) = crate::partition::best_scaleout(&ws[0], 1 << 14, 8, &model);
        assert_eq!(rec.total_cycles, best_cycles);
        assert_eq!(rec.config, best_cfg);
        assert!(rec.is_scale_out(), "TF0 at 2^14 wants partitions");
    }

    #[test]
    fn tight_bandwidth_pushes_toward_monolithic() {
        let ws = [dims(31999, 84, 1024)];
        let model = AnalyticalModel;
        let free = recommend(&ws, 1 << 14, 8, None, &model);
        // Clamp the budget below the free optimum's appetite.
        let tight = recommend(&ws, 1 << 14, 8, Some(free.peak_bandwidth / 4.0), &model);
        assert!(tight.peak_bandwidth <= free.peak_bandwidth);
        assert!(tight.config.grid.count() <= free.config.grid.count());
        // Bandwidth costs runtime: the constrained pick cannot be faster.
        assert!(tight.total_cycles >= free.total_cycles);
    }

    #[test]
    fn impossible_budget_falls_back_to_thriftiest() {
        let ws = [dims(1024, 64, 1024)];
        let model = AnalyticalModel;
        let rec = recommend(&ws, 1 << 12, 8, Some(1e-9), &model);
        assert!(!rec.within_budget);
        assert!(rec.peak_bandwidth > 0.0);
    }

    #[test]
    fn multi_workload_advice_considers_the_whole_set() {
        let ws = [dims(31999, 84, 1024), dims(128, 4096, 2048)];
        let model = AnalyticalModel;
        let rec = recommend(&ws, 1 << 12, 8, None, &model);
        let sum: u64 = ws
            .iter()
            .map(|w| crate::partition::scaleout_runtime(w, &rec.config, &model))
            .sum();
        assert_eq!(rec.total_cycles, sum);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_workloads_panic() {
        recommend(&[], 1 << 10, 8, None, &AnalyticalModel);
    }
}
