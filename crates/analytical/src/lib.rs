#![warn(missing_docs)]

//! The analytical model and design-space search of the paper (Sections III
//! and IV).
//!
//! SCALE-Sim answers "how long does this layer take on this exact
//! configuration?" cycle-accurately; this crate answers the *design*
//! questions around it, fast enough to sweep thousands of configurations:
//!
//! * [`runtime`] — the closed-form stall-free runtime model:
//!   Eq. 1 (unlimited PEs), Eq. 3 (one fold), Eq. 4 (scale-up with
//!   folding) and Eq. 6 (scale-out).
//! * [`search`] — enumerate and rank all aspect ratios of a monolithic
//!   array with a given MAC budget (the x-axis of Fig. 9).
//! * [`partition`] — enumerate scale-out configurations
//!   (`P_R × P_C` grids of `R × C` arrays, Eq. 5) and find the best
//!   (Figs. 9–11).
//! * [`pareto`] — multi-workload optimization: gather each workload's
//!   locally-optimal candidates and pick the global
//!   `argmin_a Σ_w runtime(w, a)` (Sec. IV-B, Figs. 13–14).
//! * [`frontier`] — cost/runtime Pareto frontiers, slack-band pruning and
//!   the acquisition scoring used by analytical-guided exploration.

pub mod advisor;
pub mod dataflow_choice;
pub mod frontier;
pub mod os_drain;
pub mod pareto;
pub mod partition;
pub mod reconfig;
pub mod roofline;
pub mod runtime;
pub mod search;

pub use advisor::{estimate_bandwidth, estimate_scaleout_bandwidth, recommend, Recommendation};
pub use dataflow_choice::{best_dataflow, rank_dataflows, DataflowScore};
pub use frontier::{acquisition_score, ErrorStats, Frontier, FrontierPoint};
pub use os_drain::{drain_fraction, fold_duration_with, scaleup_with_drain, OsDrain};
pub use pareto::{pareto_optimal, CandidateScore, ParetoOutcome};
pub use partition::{
    best_scaleout, scaleout_configs, scaleout_runtime, split_dims, PartitionGrid, ScaleOutConfig,
};
pub use reconfig::{reconfiguration_gain, ReconfigGain};
pub use roofline::{achieved_intensity, compulsory_intensity, Roofline};
pub use runtime::{eq1_unlimited, eq4_scaleup, exact_scaleup, AnalyticalModel, RuntimeModel};
pub use search::{aspect_ratio_shapes, best_scaleup, rank_scaleup, ScaleUpScore};

// Frequently used alongside this crate.
pub use scalesim_systolic::ArrayShape;
pub use scalesim_topology::{Dataflow, GemmShape, MappedDims};
