//! The output-stationary drain alternative (Section II-A).
//!
//! In the baseline OS dataflow "no computation takes place in the array"
//! while results drain through the peer-to-peer links — the `2·S_R` term of
//! Eq. 1. The paper notes: "An alternative high performance implementation
//! using a separate data plane to move generated output is also possible,
//! however, it is costly to implement." This module prices that
//! alternative: with a dedicated output plane the drain overlaps the next
//! fold's fill, cutting each fold to `r′ + c′ + T − 1` cycles.
//!
//! Quantifying the delta also decomposes Fig. 10's monolithic slowdown: the
//! taller the array, the larger the share of runtime that is pure drain.

use scalesim_systolic::{ArrayShape, FoldPlan};
use scalesim_topology::{Dataflow, MappedDims};

/// How OS outputs leave the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsDrain {
    /// Baseline: outputs shift down through the MAC links, serializing
    /// drain after compute (Eq. 3: `2r′ + c′ + T − 2` per fold).
    ThroughArray,
    /// A dedicated output plane drains concurrently: a fold costs only its
    /// fill + compute wavefront, `r′ + c′ + T − 1` cycles.
    SeparatePlane,
}

/// Per-fold duration under the chosen drain implementation.
pub fn fold_duration_with(ru: u64, cu: u64, t: u64, drain: OsDrain) -> u64 {
    match drain {
        OsDrain::ThroughArray => 2 * ru + cu + t - 2,
        OsDrain::SeparatePlane => ru + cu + t - 1,
    }
}

/// Exact OS scale-up runtime under the chosen drain implementation.
///
/// # Panics
///
/// Panics if `dims` is not an output-stationary projection — the drain
/// alternative only exists for OS (WS/IS outputs already stream out on a
/// separate path).
pub fn scaleup_with_drain(dims: &MappedDims, array: ArrayShape, drain: OsDrain) -> u64 {
    assert_eq!(
        dims.dataflow,
        Dataflow::OutputStationary,
        "the drain-plane alternative applies to the OS dataflow only"
    );
    FoldPlan::new(dims, array)
        .shape_classes()
        .iter()
        .map(|&(count, ru, cu)| count * fold_duration_with(ru, cu, dims.temporal, drain))
        .sum()
}

/// Fraction of the baseline runtime spent draining (the saving a separate
/// plane buys): `1 − separate/baseline`.
pub fn drain_fraction(dims: &MappedDims, array: ArrayShape) -> f64 {
    let base = scaleup_with_drain(dims, array, OsDrain::ThroughArray) as f64;
    let fast = scaleup_with_drain(dims, array, OsDrain::SeparatePlane) as f64;
    1.0 - fast / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::exact_scaleup;
    use scalesim_topology::GemmShape;

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn baseline_matches_eq3_machinery() {
        let d = dims(100, 30, 80);
        let array = ArrayShape::new(16, 16);
        assert_eq!(
            scaleup_with_drain(&d, array, OsDrain::ThroughArray),
            exact_scaleup(&d, array)
        );
    }

    #[test]
    fn separate_plane_saves_exactly_the_row_term() {
        // Per full fold: (2R + C + T - 2) - (R + C + T - 1) = R - 1.
        let d = dims(64, 10, 64);
        let array = ArrayShape::new(16, 16);
        let folds = 4 * 4;
        let base = scaleup_with_drain(&d, array, OsDrain::ThroughArray);
        let fast = scaleup_with_drain(&d, array, OsDrain::SeparatePlane);
        assert_eq!(base - fast, folds * (16 - 1));
    }

    #[test]
    fn drain_cost_grows_with_array_height() {
        // Tall arrays pay the most for in-array drain — part of why the
        // monolithic configs of Fig. 10 lose.
        let d = dims(8192, 16, 64);
        let short = drain_fraction(&d, ArrayShape::new(8, 64));
        let tall = drain_fraction(&d, ArrayShape::new(512, 64));
        assert!(tall > short);
        assert!(tall > 0.3, "tall array drain share {tall}");
    }

    #[test]
    fn both_variants_match_the_register_level_golden_model() {
        use scalesim_systolic::pe_grid::{run, run_os_separate_plane, Matrix};
        let (m, k, n) = (9usize, 5usize, 7usize);
        let a = Matrix::from_fn(m, k, |i, j| (i as i64 * 3 - j as i64) % 7);
        let b = Matrix::from_fn(k, n, |i, j| (j as i64 * 5 - i as i64) % 6);
        let array = ArrayShape::new(4, 4);
        let d = dims(m as u64, k as u64, n as u64);

        let baseline = run(&a, &b, array, Dataflow::OutputStationary);
        assert_eq!(
            baseline.cycles,
            scaleup_with_drain(&d, array, OsDrain::ThroughArray)
        );
        let plane = run_os_separate_plane(&a, &b, array);
        assert_eq!(
            plane.cycles,
            scaleup_with_drain(&d, array, OsDrain::SeparatePlane)
        );
        assert_eq!(plane.output, baseline.output);
    }

    #[test]
    #[should_panic(expected = "OS dataflow only")]
    fn rejects_non_os_projections() {
        let d = GemmShape::new(8, 8, 8).project(Dataflow::WeightStationary);
        let _ = scaleup_with_drain(&d, ArrayShape::square(4), OsDrain::SeparatePlane);
    }
}
