//! Scale-up design-space search: aspect ratios of a monolithic array.
//!
//! For a fixed MAC budget the paper sweeps every power-of-two aspect ratio
//! `R × C = budget` (Fig. 9b-c) and observes that (i) runtimes across ratios
//! span orders of magnitude, and (ii) the best ratio depends on the workload
//! *and* the budget — hence the need for a search framework.

use serde::{Deserialize, Serialize};

use scalesim_systolic::{analyze, ArrayShape};
use scalesim_topology::MappedDims;

use crate::runtime::RuntimeModel;

/// All `R × C` array shapes with `R·C == mac_budget`, `R` and `C` powers of
/// two and at least `min_dim` (the paper limits dimensions to ≥ 8).
///
/// Shapes are returned tall-to-wide (`R` descending).
///
/// # Panics
///
/// Panics if `mac_budget` or `min_dim` is not a power of two, or if
/// `mac_budget < min_dim²` (no valid shape exists).
///
/// ```
/// use scalesim_analytical::aspect_ratio_shapes;
///
/// let shapes = aspect_ratio_shapes(1 << 10, 8);
/// // 1024 MACs: 128x8, 64x16, 32x32, 16x64, 8x128.
/// assert_eq!(shapes.len(), 5);
/// assert_eq!(shapes[2].rows(), 32);
/// ```
pub fn aspect_ratio_shapes(mac_budget: u64, min_dim: u64) -> Vec<ArrayShape> {
    assert!(
        mac_budget.is_power_of_two() && min_dim.is_power_of_two(),
        "MAC budget and minimum dimension must be powers of two"
    );
    assert!(
        mac_budget >= min_dim * min_dim,
        "budget {mac_budget} cannot fit a {min_dim}x{min_dim} array"
    );
    let mut shapes = Vec::new();
    let mut rows = mac_budget / min_dim;
    while rows >= min_dim {
        shapes.push(ArrayShape::new(rows, mac_budget / rows));
        rows /= 2;
    }
    shapes
}

/// One scored scale-up candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpScore {
    /// The array shape evaluated.
    pub array: ArrayShape,
    /// Stall-free runtime under the cost model.
    pub cycles: u64,
    /// Mapping utilization (occupied-PE fraction averaged over folds).
    pub mapping_utilization: f64,
}

/// Evaluates every aspect ratio of `mac_budget` on `dims` and returns the
/// candidates sorted fastest-first — the data behind Fig. 9(b-c).
///
/// # Panics
///
/// Same conditions as [`aspect_ratio_shapes`].
pub fn rank_scaleup<M: RuntimeModel>(
    dims: &MappedDims,
    mac_budget: u64,
    min_dim: u64,
    model: &M,
) -> Vec<ScaleUpScore> {
    let mut scores: Vec<ScaleUpScore> = aspect_ratio_shapes(mac_budget, min_dim)
        .into_iter()
        .map(|array| ScaleUpScore {
            array,
            cycles: model.runtime(dims, array),
            mapping_utilization: analyze(dims, array).mapping_utilization,
        })
        .collect();
    scores.sort_by(|a, b| a.cycles.cmp(&b.cycles).then(a.array.cmp(&b.array)));
    scores
}

/// The fastest monolithic configuration for `dims` under `mac_budget`.
///
/// # Panics
///
/// Same conditions as [`aspect_ratio_shapes`].
pub fn best_scaleup<M: RuntimeModel>(
    dims: &MappedDims,
    mac_budget: u64,
    min_dim: u64,
    model: &M,
) -> ScaleUpScore {
    rank_scaleup(dims, mac_budget, min_dim, model)
        .into_iter()
        .next()
        .expect("aspect_ratio_shapes returns at least one shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AnalyticalModel;
    use scalesim_topology::{Dataflow, GemmShape};

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn shapes_cover_all_ratios() {
        let shapes = aspect_ratio_shapes(256, 8);
        assert_eq!(shapes.len(), 3); // 32x8, 16x16, 8x32
        assert!(shapes.iter().all(|s| s.macs() == 256));
    }

    #[test]
    fn square_budget_has_single_square_shape() {
        let shapes = aspect_ratio_shapes(64, 8);
        assert_eq!(shapes, vec![ArrayShape::square(8)]);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_budget_panics() {
        let _ = aspect_ratio_shapes(100, 8);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn budget_below_min_dim_squared_panics() {
        let _ = aspect_ratio_shapes(32, 8);
    }

    #[test]
    fn ranking_is_sorted_and_best_matches_head() {
        let d = dims(512, 32, 64);
        let ranked = rank_scaleup(&d, 1 << 12, 8, &AnalyticalModel);
        assert!(ranked.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        let best = best_scaleup(&d, 1 << 12, 8, &AnalyticalModel);
        assert_eq!(best, ranked[0]);
    }

    #[test]
    fn tall_workload_prefers_tall_array() {
        // S_R >> S_C: the best aspect ratio should allocate more rows than
        // columns.
        let d = dims(4096, 16, 32);
        let best = best_scaleup(&d, 1 << 10, 8, &AnalyticalModel);
        assert!(best.array.rows() >= best.array.cols());
    }

    #[test]
    fn wide_workload_prefers_wide_array() {
        let d = dims(32, 16, 4096);
        let best = best_scaleup(&d, 1 << 10, 8, &AnalyticalModel);
        assert!(best.array.cols() >= best.array.rows());
    }

    #[test]
    fn runtime_spread_grows_with_budget() {
        // Fig. 9b-c: with larger arrays the worst/best ratio gap widens.
        let d = dims(31999, 84, 1024); // TF0
        let spread = |budget: u64| {
            let ranked = rank_scaleup(&d, budget, 8, &AnalyticalModel);
            ranked.last().unwrap().cycles as f64 / ranked[0].cycles as f64
        };
        assert!(spread(1 << 16) > spread(1 << 10));
    }
}
