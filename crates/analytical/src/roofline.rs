//! Roofline analysis for systolic configurations.
//!
//! The paper frames the scaling decision as performance vs. DRAM bandwidth;
//! the roofline is the classical summary of that tension (the paper's
//! related work cites Caffeine's roofline-driven methodology). For a
//! configuration with `P` MACs and an interface of `B` elements/cycle, a
//! workload with operational intensity `I` MACs/element attains at most
//! `min(P, I · B)` MACs/cycle. The intensities come from the same
//! first-order traffic model the advisor uses.

use scalesim_systolic::ArrayShape;
use scalesim_topology::{GemmShape, MappedDims};

use crate::advisor::estimate_bandwidth;
use crate::runtime::exact_scaleup;

/// A machine roofline: compute ceiling and memory slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak throughput in MACs/cycle (the MAC count of the array(s)).
    pub peak_macs_per_cycle: f64,
    /// Interface bandwidth in elements/cycle.
    pub bandwidth: f64,
}

impl Roofline {
    /// Creates a roofline for a (possibly aggregate) MAC count and
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive and finite.
    pub fn new(peak_macs_per_cycle: f64, bandwidth: f64) -> Self {
        assert!(
            peak_macs_per_cycle.is_finite() && peak_macs_per_cycle > 0.0,
            "peak must be positive"
        );
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        Roofline {
            peak_macs_per_cycle,
            bandwidth,
        }
    }

    /// Attainable throughput at operational intensity `intensity`
    /// (MACs per element moved): `min(peak, intensity · bandwidth)`.
    pub fn attainable(&self, intensity: f64) -> f64 {
        self.peak_macs_per_cycle.min(intensity * self.bandwidth)
    }

    /// The ridge point: the intensity above which the machine is
    /// compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_macs_per_cycle / self.bandwidth
    }

    /// Whether a workload of the given intensity is compute-bound here.
    pub fn is_compute_bound(&self, intensity: f64) -> bool {
        intensity >= self.ridge_intensity()
    }

    /// Roofline-predicted runtime lower bound for `macs` of work at
    /// `intensity`.
    pub fn runtime_bound(&self, macs: u64, intensity: f64) -> f64 {
        macs as f64 / self.attainable(intensity)
    }
}

/// The *compulsory* operational intensity of a GEMM: MACs per element when
/// every operand and output crosses the interface exactly once — the
/// workload's intrinsic ceiling, independent of any mapping.
pub fn compulsory_intensity(shape: GemmShape) -> f64 {
    let traffic = shape.operand_a_elems() + shape.operand_b_elems() + shape.output_elems();
    shape.macs() as f64 / traffic as f64
}

/// The *achieved* operational intensity of a mapping: MACs per element of
/// first-order streamed traffic on `array` (fold re-streaming included).
/// Always ≤ [`compulsory_intensity`]; the gap is the reuse the mapping
/// failed to capture.
pub fn achieved_intensity(dims: &MappedDims, array: ArrayShape) -> f64 {
    // estimate_bandwidth gives elements/cycle at steady state; multiply by
    // the exact runtime for total traffic.
    let traffic = estimate_bandwidth(dims, array) * exact_scaleup(dims, array) as f64;
    if traffic == 0.0 {
        f64::INFINITY
    } else {
        dims.macs() as f64 / traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::Dataflow;

    #[test]
    fn attainable_respects_both_ceilings() {
        let r = Roofline::new(1024.0, 16.0);
        assert_eq!(r.ridge_intensity(), 64.0);
        assert_eq!(r.attainable(1.0), 16.0); // memory bound
        assert_eq!(r.attainable(64.0), 1024.0); // ridge
        assert_eq!(r.attainable(1000.0), 1024.0); // compute bound
        assert!(r.is_compute_bound(100.0));
        assert!(!r.is_compute_bound(10.0));
    }

    #[test]
    fn runtime_bound_scales_inversely_with_attainable() {
        let r = Roofline::new(100.0, 10.0);
        // Memory bound at I=2: 20 MACs/cycle -> 1000 MACs take 50 cycles.
        assert_eq!(r.runtime_bound(1000, 2.0), 50.0);
        // Compute bound: 10 cycles.
        assert_eq!(r.runtime_bound(1000, 50.0), 10.0);
    }

    #[test]
    fn compulsory_intensity_grows_with_square_gemms() {
        // Big square GEMMs reuse each element ~n/3 times.
        let small = compulsory_intensity(GemmShape::new(16, 16, 16));
        let big = compulsory_intensity(GemmShape::new(512, 512, 512));
        assert!(big > small);
        assert!((big - 512.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn achieved_never_exceeds_compulsory_by_much() {
        // The first-order traffic model charges each fold's fresh tiles, so
        // achieved intensity must be below the once-only ceiling (within
        // the fill/drain slack of the duration denominator).
        let shape = GemmShape::new(256, 64, 256);
        let dims = shape.project(Dataflow::OutputStationary);
        let achieved = achieved_intensity(&dims, ArrayShape::square(16));
        assert!(achieved <= compulsory_intensity(shape) * 1.05);
        assert!(achieved > 0.0);
    }

    #[test]
    fn bigger_arrays_capture_more_reuse() {
        let shape = GemmShape::new(1024, 64, 1024);
        let dims = shape.project(Dataflow::OutputStationary);
        let small = achieved_intensity(&dims, ArrayShape::square(8));
        let large = achieved_intensity(&dims, ArrayShape::square(64));
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_roofline_panics() {
        let _ = Roofline::new(10.0, 0.0);
    }
}
