//! Dataflow selection.
//!
//! Section III-B of the paper: "for a given workload and array
//! configuration, choice of dataflow assigns the values for `S_R`, `S_C`
//! and `T` respectively, which could be selected to minimize τ". This
//! module performs that selection: rank the three projections of a GEMM by
//! their exact stall-free runtime on a concrete array.

use scalesim_systolic::ArrayShape;
use scalesim_topology::{Dataflow, GemmShape};

use crate::runtime::RuntimeModel;

/// One dataflow's score on a workload/array pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowScore {
    /// The dataflow evaluated.
    pub dataflow: Dataflow,
    /// Exact stall-free runtime of its projection.
    pub cycles: u64,
}

/// Evaluates all three dataflows of `shape` on `array`, sorted
/// fastest-first (ties broken in `Dataflow::ALL` order).
///
/// ```
/// use scalesim_analytical::{rank_dataflows, AnalyticalModel, ArrayShape};
/// use scalesim_topology::GemmShape;
///
/// // A "fat contraction" GEMM: k is huge, m and n tiny — OS keeps the
/// // whole (small) output resident and unrolls k in time.
/// let shape = GemmShape::new(16, 10_000, 16);
/// let ranked = rank_dataflows(shape, ArrayShape::square(16), &AnalyticalModel);
/// assert_eq!(ranked[0].dataflow, scalesim_topology::Dataflow::OutputStationary);
/// ```
pub fn rank_dataflows<M: RuntimeModel>(
    shape: GemmShape,
    array: ArrayShape,
    model: &M,
) -> [DataflowScore; 3] {
    let mut scores = Dataflow::ALL.map(|dataflow| DataflowScore {
        dataflow,
        cycles: model.runtime(&shape.project(dataflow), array),
    });
    scores.sort_by_key(|s| s.cycles);
    scores
}

/// The fastest dataflow for `shape` on `array`.
pub fn best_dataflow<M: RuntimeModel>(
    shape: GemmShape,
    array: ArrayShape,
    model: &M,
) -> DataflowScore {
    rank_dataflows(shape, array, model)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AnalyticalModel;

    #[test]
    fn ranking_is_sorted_and_covers_all_three() {
        let ranked = rank_dataflows(
            GemmShape::new(100, 50, 80),
            ArrayShape::new(16, 16),
            &AnalyticalModel,
        );
        assert!(ranked.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        let mut dfs: Vec<Dataflow> = ranked.iter().map(|s| s.dataflow).collect();
        dfs.sort();
        dfs.dedup();
        assert_eq!(dfs.len(), 3);
    }

    #[test]
    fn fat_contraction_prefers_output_stationary() {
        // k >> m, n: OS folds 1x1 spatially and streams k in time; WS/IS
        // would fold the giant k dimension across the array repeatedly.
        let best = best_dataflow(
            GemmShape::new(8, 100_000, 8),
            ArrayShape::square(8),
            &AnalyticalModel,
        );
        assert_eq!(best.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn huge_output_prefers_a_stationary_operand() {
        // m, n >> k (NCF0-like outer products): OS would fold the output
        // plane forever; WS/IS keep the small contraction resident.
        let best = best_dataflow(
            GemmShape::new(5_000, 8, 5_000),
            ArrayShape::square(8),
            &AnalyticalModel,
        );
        assert_ne!(best.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn best_matches_head_of_ranking() {
        let shape = GemmShape::new(31999, 84, 1024);
        let array = ArrayShape::new(64, 16);
        assert_eq!(
            best_dataflow(shape, array, &AnalyticalModel),
            rank_dataflows(shape, array, &AnalyticalModel)[0]
        );
    }
}
