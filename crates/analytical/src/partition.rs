//! Scale-out: partitioned accelerators (Section III-C).
//!
//! Instead of one monolithic `R × C` array, the MAC budget is organized as a
//! `P_R × P_C` grid of smaller `R × C` arrays, each owning one tile of the
//! output space (Fig. 8 of the paper). Eq. 5 splits the workload,
//! `S_R′ = ⌈S_R / P_R⌉` and `S_C′ = ⌈S_C / P_C⌉`; partitions run in
//! parallel, so total runtime is the slowest partition's (Eq. 6).

use std::fmt;

use serde::{Deserialize, Serialize};

use scalesim_systolic::ArrayShape;
use scalesim_topology::MappedDims;

use crate::runtime::RuntimeModel;

/// A grid of identical systolic-array partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartitionGrid {
    rows: u64,
    cols: u64,
}

impl PartitionGrid {
    /// A `P_R × P_C` partition grid.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "partition counts must be nonzero");
        PartitionGrid { rows, cols }
    }

    /// The monolithic (scale-up) case: a single partition.
    pub fn monolithic() -> Self {
        PartitionGrid::new(1, 1)
    }

    /// Partition rows (`P_R`).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Partition columns (`P_C`).
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total partitions (`P = P_R · P_C`).
    pub fn count(&self) -> u64 {
        self.rows * self.cols
    }
}

impl fmt::Display for PartitionGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A complete scale-out configuration: the grid plus the per-partition
/// array shape. Total MACs = `P_R · P_C · R · C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScaleOutConfig {
    /// The partition grid.
    pub grid: PartitionGrid,
    /// The shape of each partition's array.
    pub array: ArrayShape,
}

impl ScaleOutConfig {
    /// A monolithic configuration (grid 1×1).
    pub fn monolithic(array: ArrayShape) -> Self {
        ScaleOutConfig {
            grid: PartitionGrid::monolithic(),
            array,
        }
    }

    /// Total MAC units across all partitions.
    pub fn total_macs(&self) -> u64 {
        self.grid.count() * self.array.macs()
    }

    /// Whether this is the single-partition (scale-up) case.
    pub fn is_monolithic(&self) -> bool {
        self.grid.count() == 1
    }
}

impl fmt::Display for ScaleOutConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} grid of {} arrays", self.grid, self.array)
    }
}

/// Eq. 5: the workload share of the *largest* partition —
/// `S_R′ = ⌈S_R / P_R⌉`, `S_C′ = ⌈S_C / P_C⌉`, `T` unchanged.
///
/// Since all partitions execute in parallel and the ceiling share is the
/// biggest, this partition determines the scale-out runtime.
pub fn split_dims(dims: &MappedDims, grid: PartitionGrid) -> MappedDims {
    MappedDims {
        spatial_rows: dims.spatial_rows.div_ceil(grid.rows()).max(1),
        spatial_cols: dims.spatial_cols.div_ceil(grid.cols()).max(1),
        temporal: dims.temporal,
        dataflow: dims.dataflow,
    }
}

/// Eq. 6: scale-out runtime — the slowest (largest-share) partition's
/// scale-up runtime on its own array.
pub fn scaleout_runtime<M: RuntimeModel>(
    dims: &MappedDims,
    config: &ScaleOutConfig,
    model: &M,
) -> u64 {
    model.runtime(&split_dims(dims, config.grid), config.array)
}

/// Enumerates every scale-out configuration with exactly `mac_budget` MACs:
/// all power-of-two `(P_R, P_C, R, C)` with `R, C ≥ min_dim` (the paper's
/// 8×8 floor, which also bounds the partition count). Includes the
/// monolithic configurations (grid 1×1) — they are the y = 1×1 row of
/// Fig. 9(a).
///
/// # Panics
///
/// Panics if `mac_budget`/`min_dim` are not powers of two or the budget
/// cannot fit a single `min_dim × min_dim` array.
pub fn scaleout_configs(mac_budget: u64, min_dim: u64) -> Vec<ScaleOutConfig> {
    assert!(
        mac_budget.is_power_of_two() && min_dim.is_power_of_two(),
        "MAC budget and minimum dimension must be powers of two"
    );
    assert!(
        mac_budget >= min_dim * min_dim,
        "budget {mac_budget} cannot fit a {min_dim}x{min_dim} array"
    );
    let mut configs = Vec::new();
    let mut pr = 1;
    while pr * min_dim * min_dim <= mac_budget {
        let mut pc = 1;
        while pr * pc * min_dim * min_dim <= mac_budget {
            let per_array = mac_budget / (pr * pc);
            let mut rows = per_array / min_dim;
            while rows >= min_dim {
                configs.push(ScaleOutConfig {
                    grid: PartitionGrid::new(pr, pc),
                    array: ArrayShape::new(rows, per_array / rows),
                });
                rows /= 2;
            }
            pc *= 2;
        }
        pr *= 2;
    }
    configs
}

/// The fastest scale-out configuration (over grids *and* per-partition
/// aspect ratios) for `dims` under `mac_budget`, with its runtime.
///
/// # Panics
///
/// Same conditions as [`scaleout_configs`].
pub fn best_scaleout<M: RuntimeModel>(
    dims: &MappedDims,
    mac_budget: u64,
    min_dim: u64,
    model: &M,
) -> (ScaleOutConfig, u64) {
    scaleout_configs(mac_budget, min_dim)
        .into_iter()
        .map(|cfg| {
            let cycles = scaleout_runtime(dims, &cfg, model);
            (cfg, cycles)
        })
        .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
        .expect("scaleout_configs returns at least one configuration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AnalyticalModel;
    use crate::search::best_scaleup;
    use scalesim_topology::{Dataflow, GemmShape};

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn split_uses_ceiling_shares() {
        let d = dims(100, 10, 60);
        let s = split_dims(&d, PartitionGrid::new(3, 4));
        assert_eq!(s.spatial_rows, 34);
        assert_eq!(s.spatial_cols, 15);
        assert_eq!(s.temporal, 10);
    }

    #[test]
    fn split_never_reaches_zero() {
        let d = dims(2, 5, 2);
        let s = split_dims(&d, PartitionGrid::new(16, 16));
        assert_eq!(s.spatial_rows, 1);
        assert_eq!(s.spatial_cols, 1);
    }

    #[test]
    fn configs_conserve_mac_budget() {
        let configs = scaleout_configs(1 << 12, 8);
        assert!(!configs.is_empty());
        assert!(configs.iter().all(|c| c.total_macs() == 1 << 12));
        // Contains the monolithic row.
        assert!(configs.iter().any(|c| c.is_monolithic()));
        // No per-partition dimension below the floor.
        assert!(configs
            .iter()
            .all(|c| c.array.rows() >= 8 && c.array.cols() >= 8));
    }

    #[test]
    fn config_enumeration_has_no_duplicates() {
        let mut configs = scaleout_configs(1 << 14, 8);
        let before = configs.len();
        configs.sort();
        configs.dedup();
        assert_eq!(before, configs.len());
    }

    #[test]
    fn partitioning_never_loses_to_monolithic() {
        // The paper's headline observation (Fig. 10): the best partitioned
        // configuration is never slower than the best monolithic one (the
        // monolithic configs are a subset of the scale-out space).
        let model = AnalyticalModel;
        for (m, k, n) in [(31999, 84, 1024), (128, 4096, 2048), (2048, 128, 1)] {
            let d = dims(m, k, n);
            let budget = 1 << 14;
            let up = best_scaleup(&d, budget, 8, &model);
            let (_, out_cycles) = best_scaleout(&d, budget, 8, &model);
            assert!(
                out_cycles <= up.cycles,
                "scale-out lost for {m}x{k}x{n}: {out_cycles} vs {}",
                up.cycles
            );
        }
    }

    #[test]
    fn relative_slowdown_amplifies_with_scale() {
        // Fig. 10: the monolithic-vs-partitioned gap grows with the budget.
        let model = AnalyticalModel;
        let d = dims(31999, 84, 1024); // TF0
        let ratio = |budget: u64| {
            let up = best_scaleup(&d, budget, 8, &model).cycles as f64;
            let (_, out) = best_scaleout(&d, budget, 8, &model);
            up / out as f64
        };
        assert!(ratio(1 << 16) > ratio(1 << 10));
    }

    #[test]
    fn display_formats() {
        let cfg = ScaleOutConfig {
            grid: PartitionGrid::new(4, 2),
            array: ArrayShape::new(16, 32),
        };
        assert_eq!(cfg.to_string(), "4x2 grid of 16x32 arrays");
    }

    #[test]
    fn monolithic_scaleout_equals_scaleup_runtime() {
        let model = AnalyticalModel;
        let d = dims(500, 64, 300);
        let array = ArrayShape::new(32, 64);
        let mono = ScaleOutConfig::monolithic(array);
        assert_eq!(
            scaleout_runtime(&d, &mono, &model),
            model.runtime(&d, array)
        );
    }
}
