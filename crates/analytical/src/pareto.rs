//! Multi-workload optimization (Section IV-B).
//!
//! A real accelerator must serve many layers. The paper's method: take the
//! runtime-optimal configuration of each individual workload as a
//! *candidate*, evaluate every candidate on every workload (runtime is
//! additive), and pick the global optimum
//! `A = argmin_{a_k} Σ_{w_l} T_r(w_l, a_k)`. Because the candidate set is
//! small, exhaustive search is exact. Figs. 13–14 plot how much the
//! runners-up lose versus this optimum.

use scalesim_topology::MappedDims;

/// A candidate configuration scored across a workload set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateScore<C> {
    /// The configuration evaluated.
    pub config: C,
    /// Per-workload runtimes, in input order.
    pub per_workload: Vec<u64>,
    /// Total runtime across the workload set (the additive cost).
    pub total_cycles: u64,
}

impl<C> CandidateScore<C> {
    /// Relative loss versus a reference total (e.g. the pareto optimum):
    /// `total / reference`. The y-axis of Figs. 13–14.
    pub fn loss_versus(&self, reference_total: u64) -> f64 {
        self.total_cycles as f64 / reference_total as f64
    }
}

/// The result of a multi-workload search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoOutcome<C> {
    /// Candidates sorted by total runtime, best first.
    pub ranked: Vec<CandidateScore<C>>,
}

impl<C> ParetoOutcome<C> {
    /// The globally optimal candidate.
    pub fn best(&self) -> &CandidateScore<C> {
        &self.ranked[0]
    }

    /// Loss ratios of every candidate versus the optimum, best first
    /// (first entry is 1.0).
    pub fn losses(&self) -> Vec<f64> {
        let best = self.best().total_cycles;
        self.ranked.iter().map(|c| c.loss_versus(best)).collect()
    }
}

/// Scores `candidates` over `workloads` with the given cost function and
/// returns them ranked by total runtime.
///
/// The cost function usually wraps the analytical model
/// ([`crate::exact_scaleup`] / [`crate::scaleout_runtime`]) but can equally
/// wrap the full simulator, exactly as the paper allows.
///
/// # Panics
///
/// Panics if `candidates` is empty (an optimum must exist).
///
/// ```
/// use scalesim_analytical::{pareto_optimal, ArrayShape, exact_scaleup};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let workloads: Vec<_> = [(128u64, 64u64, 256u64), (4096, 32, 64)]
///     .iter()
///     .map(|&(m, k, n)| GemmShape::new(m, k, n).project(Dataflow::OutputStationary))
///     .collect();
/// let candidates = [ArrayShape::new(64, 16), ArrayShape::new(16, 64)];
/// let outcome = pareto_optimal(&workloads, &candidates, |w, a| exact_scaleup(w, *a));
/// assert_eq!(outcome.losses()[0], 1.0);
/// ```
pub fn pareto_optimal<C: Clone>(
    workloads: &[MappedDims],
    candidates: &[C],
    cost: impl Fn(&MappedDims, &C) -> u64,
) -> ParetoOutcome<C> {
    assert!(!candidates.is_empty(), "candidate set must be nonempty");
    let mut ranked: Vec<CandidateScore<C>> = candidates
        .iter()
        .map(|config| {
            let per_workload: Vec<u64> = workloads.iter().map(|w| cost(w, config)).collect();
            let total_cycles = per_workload.iter().sum();
            CandidateScore {
                config: config.clone(),
                per_workload,
                total_cycles,
            }
        })
        .collect();
    ranked.sort_by_key(|c| c.total_cycles);
    ParetoOutcome { ranked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{best_scaleout, scaleout_runtime, ScaleOutConfig};
    use crate::runtime::{exact_scaleup, AnalyticalModel};
    use crate::search::best_scaleup;
    use scalesim_systolic::ArrayShape;
    use scalesim_topology::{Dataflow, GemmShape};

    fn workloads() -> Vec<MappedDims> {
        [
            (31999u64, 84u64, 1024u64),
            (128, 4096, 2048),
            (84, 4096, 1024),
        ]
        .iter()
        .map(|&(m, k, n)| GemmShape::new(m, k, n).project(Dataflow::OutputStationary))
        .collect()
    }

    #[test]
    fn best_candidate_minimizes_total() {
        let ws = workloads();
        let candidates = [
            ArrayShape::new(128, 8),
            ArrayShape::new(32, 32),
            ArrayShape::new(8, 128),
        ];
        let outcome = pareto_optimal(&ws, &candidates, |w, a| exact_scaleup(w, *a));
        for c in &outcome.ranked[1..] {
            assert!(c.total_cycles >= outcome.best().total_cycles);
        }
        assert_eq!(outcome.ranked.len(), 3);
        assert_eq!(outcome.best().per_workload.len(), ws.len());
    }

    #[test]
    fn losses_start_at_one_and_grow() {
        let ws = workloads();
        let candidates = [ArrayShape::new(128, 8), ArrayShape::new(8, 128)];
        let outcome = pareto_optimal(&ws, &candidates, |w, a| exact_scaleup(w, *a));
        let losses = outcome.losses();
        assert_eq!(losses[0], 1.0);
        assert!(losses.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_layer_candidates_method_of_the_paper_scaleup() {
        // The paper's recipe: candidates = each workload's locally optimal
        // config; the pareto optimum is one of them.
        let ws = workloads();
        let model = AnalyticalModel;
        let candidates: Vec<ArrayShape> = ws
            .iter()
            .map(|w| best_scaleup(w, 1 << 12, 8, &model).array)
            .collect();
        let outcome = pareto_optimal(&ws, &candidates, |w, a| exact_scaleup(w, *a));
        // The optimum must be at least as good on total as every individual
        // local optimum evaluated globally.
        assert!(outcome.losses().iter().all(|&l| l >= 1.0));
    }

    #[test]
    fn works_with_scaleout_configs_too() {
        let ws = workloads();
        let model = AnalyticalModel;
        let candidates: Vec<ScaleOutConfig> = ws
            .iter()
            .map(|w| best_scaleout(w, 1 << 12, 8, &model).0)
            .collect();
        let outcome = pareto_optimal(&ws, &candidates, |w, c| scaleout_runtime(w, c, &model));
        assert_eq!(outcome.ranked.len(), ws.len());
        assert_eq!(outcome.losses()[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_candidates_panic() {
        let ws = workloads();
        let _ = pareto_optimal::<ArrayShape>(&ws, &[], |_, _| 0);
    }
}
