//! Cost/runtime Pareto frontiers and the error statistics that drive
//! analytical-guided exploration (Section IV applied at sweep scale).
//!
//! The explore pipeline prunes a cartesian candidate space with the
//! analytical runtime model before spending cycle-accurate simulation. The
//! pruning rule needs two primitives, both provided here:
//!
//! * [`Frontier`] — the Pareto-optimal set of `(cost, runtime)` points
//!   (cost is MAC budget; runtime is predicted or measured cycles). A
//!   candidate survives pruning when its runtime is within a slack band of
//!   the best runtime achievable at its cost or cheaper
//!   ([`Frontier::within_band`]).
//! * [`ErrorStats`] — the distribution of measured/predicted runtime
//!   ratios. The analytical model is a *lower bound* (it ignores memory
//!   stalls), so ratios are ≥ 1; their median is the correction factor the
//!   acquisition function applies to unmeasured candidates.

/// One point on a cost/runtime trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierPoint {
    /// Resource cost of the configuration (e.g. MAC budget).
    pub cost: u64,
    /// Runtime at that cost, in cycles (predicted or measured).
    pub cycles: u64,
}

/// The Pareto frontier of a set of `(cost, cycles)` points: the subset
/// where spending more cost strictly reduces cycles.
///
/// Stored sorted by ascending cost with strictly decreasing cycles, so
/// [`Frontier::best_at_or_below`] is a binary search.
///
/// ```
/// use scalesim_analytical::Frontier;
///
/// let f = Frontier::build([(1024, 900), (2048, 500), (4096, 700), (4096, 400)]);
/// // (4096, 700) is dominated by (2048, 500); (4096, 400) survives.
/// assert_eq!(f.points().len(), 3);
/// assert_eq!(f.best_at_or_below(3000), Some(500));
/// assert_eq!(f.best_at_or_below(100), None);
/// // 540 cycles at cost 2048 is within a 10% band of the 500-cycle optimum.
/// assert!(f.within_band(2048, 540, 10.0));
/// assert!(!f.within_band(2048, 560, 10.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frontier {
    points: Vec<FrontierPoint>,
}

impl Frontier {
    /// Builds the frontier of `(cost, cycles)` pairs. Dominated points —
    /// those matched or beaten by an equal-or-cheaper point — are dropped.
    pub fn build(points: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut all: Vec<FrontierPoint> = points
            .into_iter()
            .map(|(cost, cycles)| FrontierPoint { cost, cycles })
            .collect();
        // Sort by cost then cycles; a single forward pass then keeps each
        // point that strictly improves on everything cheaper.
        all.sort_by_key(|p| (p.cost, p.cycles));
        let mut frontier: Vec<FrontierPoint> = Vec::new();
        for p in all {
            match frontier.last() {
                Some(last) if p.cycles >= last.cycles => {}
                _ => frontier.push(p),
            }
        }
        Frontier { points: frontier }
    }

    /// The Pareto-optimal points, sorted by ascending cost.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// True when no point survived (the input was empty).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The best (minimum) cycles achievable at `cost` or cheaper.
    pub fn best_at_or_below(&self, cost: u64) -> Option<u64> {
        let idx = self.points.partition_point(|p| p.cost <= cost);
        idx.checked_sub(1).map(|i| self.points[i].cycles)
    }

    /// The pruning rule: is a candidate costing `cost` and predicted to run
    /// in `cycles` within `slack_pct` percent of the frontier? Candidates
    /// with no cheaper-or-equal frontier point always survive (they explore
    /// cost levels the frontier has not reached).
    pub fn within_band(&self, cost: u64, cycles: u64, slack_pct: f64) -> bool {
        match self.best_at_or_below(cost) {
            Some(best) => cycles as f64 <= best as f64 * (1.0 + slack_pct / 100.0),
            None => true,
        }
    }
}

/// Distribution summary of measured/predicted runtime ratios.
///
/// The acquisition function corrects analytical predictions by the median
/// ratio observed so far; p95 bounds how wrong that correction can be.
///
/// ```
/// use scalesim_analytical::ErrorStats;
///
/// let stats = ErrorStats::from_ratios(vec![1.0, 1.1, 1.2, 1.05, 2.0]);
/// assert_eq!(stats.count, 5);
/// assert_eq!(stats.p50, 1.1);
/// assert_eq!(stats.max, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of ratios observed.
    pub count: usize,
    /// Median ratio (lower-quantile convention; 1.0 when empty).
    pub p50: f64,
    /// 95th-percentile ratio (1.0 when empty).
    pub p95: f64,
    /// Arithmetic mean ratio (1.0 when empty).
    pub mean: f64,
    /// Largest ratio observed (1.0 when empty).
    pub max: f64,
}

impl ErrorStats {
    /// Summarizes a set of measured/predicted ratios. An empty set yields
    /// the identity correction (all fields 1.0).
    pub fn from_ratios(mut ratios: Vec<f64>) -> Self {
        if ratios.is_empty() {
            return ErrorStats {
                count: 0,
                p50: 1.0,
                p95: 1.0,
                mean: 1.0,
                max: 1.0,
            };
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let count = ratios.len();
        let quantile = |q: f64| {
            let idx = ((count as f64 - 1.0) * q).floor() as usize;
            ratios[idx]
        };
        ErrorStats {
            count,
            p50: quantile(0.50),
            p95: quantile(0.95),
            mean: ratios.iter().sum::<f64>() / count as f64,
            max: *ratios.last().unwrap(),
        }
    }
}

/// Acquisition score for picking the next candidate to simulate: how far a
/// corrected prediction falls below the measured frontier at its cost level.
///
/// `corrected = predicted · correction` (the median measured/predicted
/// ratio). The score is `frontier_best / corrected`: above 1.0 means the
/// candidate is expected to *improve* the measured frontier, and larger
/// scores mean a larger analytical-vs-measured gap in that neighborhood —
/// exactly the points worth a cycle-accurate run. Candidates at cost levels
/// the frontier has not reached score `f64::INFINITY` (measuring them is
/// pure information gain).
///
/// ```
/// use scalesim_analytical::{acquisition_score, Frontier};
///
/// let measured = Frontier::build([(1024, 1000)]);
/// // Predicted 700 at the same cost, corrected by the observed 1.2x
/// // stall factor -> expected 840, beating the frontier's 1000.
/// let score = acquisition_score(1024, 700, 1.2, &measured);
/// assert!(score > 1.0);
/// assert_eq!(acquisition_score(512, 700, 1.2, &measured), f64::INFINITY);
/// ```
pub fn acquisition_score(cost: u64, predicted: u64, correction: f64, measured: &Frontier) -> f64 {
    let corrected = (predicted as f64 * correction).max(1.0);
    match measured.best_at_or_below(cost) {
        Some(best) => best as f64 / corrected,
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_strictly_decreasing_in_cycles() {
        let f = Frontier::build([
            (1 << 10, 900),
            (1 << 11, 800),
            (1 << 12, 800), // ties a cheaper point: dominated
            (1 << 13, 100),
            (1 << 14, 200), // slower and costlier: dominated
        ]);
        let pts = f.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].cost < w[1].cost));
        assert!(pts.windows(2).all(|w| w[0].cycles > w[1].cycles));
    }

    #[test]
    fn duplicate_costs_keep_the_faster_point() {
        let f = Frontier::build([(64, 50), (64, 40)]);
        assert_eq!(
            f.points(),
            &[FrontierPoint {
                cost: 64,
                cycles: 40
            }]
        );
    }

    #[test]
    fn best_at_or_below_is_monotone() {
        let f = Frontier::build([(10, 100), (20, 60), (40, 30)]);
        assert_eq!(f.best_at_or_below(9), None);
        assert_eq!(f.best_at_or_below(10), Some(100));
        assert_eq!(f.best_at_or_below(39), Some(60));
        assert_eq!(f.best_at_or_below(u64::MAX), Some(30));
    }

    #[test]
    fn band_membership_includes_the_frontier_itself() {
        let points = [(10u64, 100u64), (20, 60), (40, 30)];
        let f = Frontier::build(points);
        for &(cost, cycles) in &points {
            assert!(f.within_band(cost, cycles, 0.0), "{cost}/{cycles}");
        }
        // Zero slack excludes anything above the frontier.
        assert!(!f.within_band(20, 61, 0.0));
        assert!(f.within_band(20, 61, 2.0));
    }

    #[test]
    fn empty_frontier_accepts_everything() {
        let f = Frontier::build([]);
        assert!(f.is_empty());
        assert!(f.within_band(1, u64::MAX, 0.0));
    }

    #[test]
    fn error_stats_on_empty_set_is_identity() {
        let stats = ErrorStats::from_ratios(vec![]);
        assert_eq!(stats.count, 0);
        assert_eq!(
            (stats.p50, stats.p95, stats.mean, stats.max),
            (1.0, 1.0, 1.0, 1.0)
        );
    }

    #[test]
    fn error_stats_quantiles_ordered() {
        let ratios: Vec<f64> = (0..100).map(|i| 1.0 + i as f64 / 100.0).collect();
        let stats = ErrorStats::from_ratios(ratios);
        assert!(stats.p50 <= stats.p95);
        assert!(stats.p95 <= stats.max);
        assert!(stats.mean >= 1.0);
        assert_eq!(stats.count, 100);
    }

    #[test]
    fn acquisition_prefers_larger_gaps() {
        let measured = Frontier::build([(100, 1000), (200, 600)]);
        // Same correction, smaller prediction => larger expected gain.
        let close = acquisition_score(200, 580, 1.0, &measured);
        let far = acquisition_score(200, 300, 1.0, &measured);
        assert!(far > close);
        // A candidate predicted above the frontier scores below 1.0.
        assert!(acquisition_score(200, 900, 1.0, &measured) < 1.0);
    }
}
