//! The closed-form runtime model of Section III.
//!
//! All equations give *stall-free* cycles — memory is assumed able to keep
//! the array fed (the trade-off against bandwidth is the subject of
//! Section IV-A and the DRAM model).

use scalesim_systolic::{analyze, ArrayShape};
use scalesim_topology::MappedDims;

/// Eq. 1: runtime with unlimited MAC units, i.e. a single `S_R × S_C` fold:
/// `τ = 2·S_R + S_C + T − 2`, identical for all three dataflows.
///
/// ```
/// use scalesim_analytical::eq1_unlimited;
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let dims = GemmShape::new(128, 84, 1024).project(Dataflow::OutputStationary);
/// assert_eq!(eq1_unlimited(&dims), 2 * 128 + 1024 + 84 - 2);
/// ```
pub fn eq1_unlimited(dims: &MappedDims) -> u64 {
    2 * dims.spatial_rows + dims.spatial_cols + dims.temporal - 2
}

/// Eq. 4 as printed in the paper: `(2R + C + T − 2) · ⌈S_R/R⌉ · ⌈S_C/C⌉`.
///
/// This treats every fold as full-sized; the simulator (and
/// [`exact_scaleup`]) give ragged edge folds their smaller true cost, so
/// Eq. 4 is an upper bound that coincides exactly when `R | S_R` and
/// `C | S_C`.
pub fn eq4_scaleup(dims: &MappedDims, array: ArrayShape) -> u64 {
    let folds = dims.spatial_rows.div_ceil(array.rows()) * dims.spatial_cols.div_ceil(array.cols());
    (2 * array.rows() + array.cols() + dims.temporal - 2) * folds
}

/// The exact stall-free scale-up runtime: the sum of Eq. 3 over the real
/// fold schedule (partial edge folds cost less). This is what the
/// cycle-accurate engine reports, so searches built on it agree with
/// simulation.
pub fn exact_scaleup(dims: &MappedDims, array: ArrayShape) -> u64 {
    analyze(dims, array).total_cycles
}

/// A runtime cost oracle: something that can price a workload on an array.
///
/// The paper's methodology (Sec. IV-B) works with either the analytical
/// model or full SCALE-Sim as the cost function; this trait is that
/// seam. The pareto optimizer and the searches are generic over it.
pub trait RuntimeModel {
    /// Stall-free cycles for `dims` on `array`.
    fn runtime(&self, dims: &MappedDims, array: ArrayShape) -> u64;
}

/// The analytical cost model (Sec. III): exact fold-schedule runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalModel;

impl RuntimeModel for AnalyticalModel {
    fn runtime(&self, dims: &MappedDims, array: ArrayShape) -> u64 {
        exact_scaleup(dims, array)
    }
}

impl<F> RuntimeModel for F
where
    F: Fn(&MappedDims, ArrayShape) -> u64,
{
    fn runtime(&self, dims: &MappedDims, array: ArrayShape) -> u64 {
        self(dims, array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::{Dataflow, GemmShape};

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn eq1_is_dataflow_invariant_in_form() {
        let shape = GemmShape::new(10, 20, 30);
        for df in Dataflow::ALL {
            let d = shape.project(df);
            assert_eq!(
                eq1_unlimited(&d),
                2 * d.spatial_rows + d.spatial_cols + d.temporal - 2
            );
        }
    }

    #[test]
    fn eq4_equals_exact_when_divisible() {
        let d = dims(64, 9, 48);
        let array = ArrayShape::new(16, 16);
        assert_eq!(eq4_scaleup(&d, array), exact_scaleup(&d, array));
    }

    #[test]
    fn eq4_upper_bounds_exact_on_ragged_workloads() {
        let d = dims(65, 9, 49);
        let array = ArrayShape::new(16, 16);
        assert!(eq4_scaleup(&d, array) > exact_scaleup(&d, array));
    }

    #[test]
    fn eq1_equals_exact_on_oversized_array() {
        let d = dims(5, 7, 6);
        // The array is larger than the workload: one partial fold whose
        // duration uses the *used* extents, i.e. Eq. 1.
        assert_eq!(exact_scaleup(&d, ArrayShape::square(64)), eq1_unlimited(&d));
    }

    #[test]
    fn closures_are_runtime_models() {
        let flat = |_: &MappedDims, _: ArrayShape| 42u64;
        assert_eq!(flat.runtime(&dims(2, 2, 2), ArrayShape::square(4)), 42);
        let model = AnalyticalModel;
        assert!(model.runtime(&dims(8, 8, 8), ArrayShape::square(4)) > 0);
    }
}
