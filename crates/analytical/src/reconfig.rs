//! The value of reconfigurability.
//!
//! The paper's related work discusses morphable arrays (DyHard-DNN) but its
//! own Sec. IV-B picks a single fixed configuration for a workload set.
//! This module quantifies the gap between the two: how much faster would
//! the workload run if the accelerator could re-shape itself per layer
//! (same MAC budget, any grid × aspect ratio) versus the best *fixed*
//! configuration chosen by the pareto method?

use serde::{Deserialize, Serialize};

use scalesim_topology::MappedDims;

use crate::pareto::pareto_optimal;
use crate::partition::{best_scaleout, scaleout_runtime, ScaleOutConfig};
use crate::runtime::RuntimeModel;

/// Outcome of the fixed-vs-reconfigurable comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigGain {
    /// The best fixed configuration (pareto over per-layer candidates).
    pub fixed_config: ScaleOutConfig,
    /// Total cycles on the fixed configuration.
    pub fixed_cycles: u64,
    /// Per-layer optimal configurations, in workload order.
    pub per_layer_configs: Vec<ScaleOutConfig>,
    /// Total cycles when reconfiguring to each layer's optimum.
    pub reconfigurable_cycles: u64,
}

impl ReconfigGain {
    /// Speedup of per-layer reconfiguration over the fixed choice (≥ 1).
    pub fn speedup(&self) -> f64 {
        self.fixed_cycles as f64 / self.reconfigurable_cycles as f64
    }

    /// How many layers would actually switch away from the fixed config.
    pub fn layers_that_switch(&self) -> usize {
        self.per_layer_configs
            .iter()
            .filter(|c| **c != self.fixed_config)
            .count()
    }
}

/// Computes the reconfiguration gain for `workloads` under `mac_budget`.
///
/// The fixed baseline follows the paper's method exactly: candidates are
/// the per-layer optima, the fixed pick minimizes total runtime. The
/// reconfigurable bound runs each layer on its own optimum
/// (reconfiguration latency is assumed free — this is the *upper* bound on
/// what morphable hardware could buy).
///
/// # Panics
///
/// Panics if `workloads` is empty or the budget cannot fit the `min_dim`
/// floor.
pub fn reconfiguration_gain<M: RuntimeModel>(
    workloads: &[MappedDims],
    mac_budget: u64,
    min_dim: u64,
    model: &M,
) -> ReconfigGain {
    assert!(!workloads.is_empty(), "workload set must be nonempty");
    let per_layer: Vec<(ScaleOutConfig, u64)> = workloads
        .iter()
        .map(|w| best_scaleout(w, mac_budget, min_dim, model))
        .collect();
    let reconfigurable_cycles = per_layer.iter().map(|(_, c)| *c).sum();

    let mut candidates: Vec<ScaleOutConfig> = per_layer.iter().map(|(c, _)| *c).collect();
    candidates.sort();
    candidates.dedup();
    let outcome = pareto_optimal(workloads, &candidates, |w, c| scaleout_runtime(w, c, model));

    ReconfigGain {
        fixed_config: outcome.best().config,
        fixed_cycles: outcome.best().total_cycles,
        per_layer_configs: per_layer.into_iter().map(|(c, _)| c).collect(),
        reconfigurable_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::AnalyticalModel;
    use scalesim_topology::{Dataflow, GemmShape};

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn reconfiguration_never_loses() {
        let ws = [
            dims(31999, 84, 1024),
            dims(128, 4096, 2048),
            dims(2048, 128, 1),
        ];
        let gain = reconfiguration_gain(&ws, 1 << 14, 8, &AnalyticalModel);
        assert!(gain.reconfigurable_cycles <= gain.fixed_cycles);
        assert!(gain.speedup() >= 1.0);
        assert_eq!(gain.per_layer_configs.len(), 3);
    }

    #[test]
    fn homogeneous_workloads_gain_nothing() {
        // Identical layers: the fixed optimum is every layer's optimum.
        let ws = [dims(512, 64, 512); 3];
        let gain = reconfiguration_gain(&ws, 1 << 12, 8, &AnalyticalModel);
        assert_eq!(gain.fixed_cycles, gain.reconfigurable_cycles);
        assert_eq!(gain.layers_that_switch(), 0);
    }

    #[test]
    fn skewed_mix_shows_real_gains() {
        // A tall-skinny and a wide-flat GEMM want opposite shapes; a fixed
        // config must compromise.
        let ws = [dims(30000, 32, 16), dims(16, 32, 30000)];
        let gain = reconfiguration_gain(&ws, 1 << 12, 8, &AnalyticalModel);
        assert!(gain.speedup() > 1.1, "speedup {}", gain.speedup());
        assert!(gain.layers_that_switch() >= 1);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_workloads_panic() {
        reconfiguration_gain(&[], 1 << 10, 8, &AnalyticalModel);
    }
}
