//! Minimal POSIX signal handling for graceful shutdown, std-only per the
//! repo's vendor policy (no `libc`/`signal-hook` crates available).
//!
//! [`install`] registers a handler for `SIGINT` and `SIGTERM` that sets a
//! process-global flag; [`shutdown_requested`] polls it. The handler body
//! is a single atomic store — async-signal-safe by construction.
//!
//! The `sigaction` shim is written against the glibc/musl 64-bit Linux ABI
//! (`struct sigaction` layout: handler pointer, 128-byte mask, flags,
//! restorer) and is gated to 64-bit Unix targets; elsewhere [`install`] is
//! a no-op and shutdown can only be triggered in-process (tests use
//! [`trigger_shutdown`]).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown signal (`SIGINT`/`SIGTERM`) has been received, or
/// [`trigger_shutdown`] has been called.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag in-process, exactly as the signal handler would.
/// Exposed for tests and for embedding the serve loop without signals.
#[doc(hidden)]
pub fn trigger_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the `SIGINT`/`SIGTERM` handler. Safe to call more than once.
/// On targets without the sigaction shim this is a no-op and returns
/// `false`; callers still work, they just can't be signalled.
pub fn install() -> bool {
    imp::install()
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// Restart interruptible syscalls instead of surfacing `EINTR`
    /// everywhere; the serve loop polls the flag, it does not rely on
    /// syscall interruption.
    const SA_RESTART: i32 = 0x1000_0000;

    extern "C" fn on_signal(_signo: i32) {
        // Only async-signal-safe operation here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// glibc/musl `struct sigaction` on 64-bit Linux: union of handler
    /// pointers, 1024-bit signal mask, flags, legacy restorer slot.
    #[repr(C)]
    struct SigAction {
        sa_handler: extern "C" fn(i32),
        sa_mask: [u64; 16],
        sa_flags: i32,
        sa_restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
    }

    pub fn install() -> bool {
        let action = SigAction {
            sa_handler: on_signal,
            sa_mask: [0; 16],
            sa_flags: SA_RESTART,
            sa_restorer: 0,
        };
        // SAFETY: `action` is a properly initialized sigaction for this
        // ABI; the handler performs only an atomic store.
        unsafe {
            sigaction(SIGINT, &action, std::ptr::null_mut()) == 0
                && sigaction(SIGTERM, &action, std::ptr::null_mut()) == 0
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_the_flag() {
        // `install` must not error even when called repeatedly. The flag is
        // process-global, so this test only ever turns it on.
        let _ = install();
        let _ = install();
        trigger_shutdown();
        assert!(shutdown_requested());
    }
}
