//! The job model: a simulation request, its normalized form, and the
//! content-addressed key that names its result.
//!
//! Two requests that *mean* the same simulation — reordered config keys,
//! `"ws"` vs `"weight_stationary"`, gratuitous whitespace in an inline
//! topology CSV — must map to the same [`JobKey`], because the key is what
//! the result cache and the single-flight dedup table are addressed by.
//! Normalization therefore resolves every field to the simulator's own
//! canonical serializations (`SimConfig::to_config_string`,
//! `topology_to_csv`) before hashing.

use std::fmt;

use serde::{Deserialize, Serialize};

use scalesim::cache::ContentKey;
use scalesim::sweep::canonical_job_text;
use scalesim::{parse_config, PartitionGrid, SimConfig};
use scalesim_topology::{networks, parse_topology_csv, topology_to_csv, Dataflow, Topology};

use crate::json::Json;

/// What to simulate: a built-in network or an inline topology CSV.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// One of the built-in networks (`resnet50`, `alexnet`, ...).
    Builtin(String),
    /// A topology supplied inline in the Table II CSV format.
    InlineCsv {
        /// Workload name used in reports.
        name: String,
        /// The CSV text.
        csv: String,
    },
}

/// A simulation request, as accepted over HTTP (`POST /simulate`) and in
/// batch manifests. Field semantics mirror the CLI flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// The workload to run.
    pub workload: Workload,
    /// Restrict to a single layer of the workload, by layer name.
    pub layer: Option<String>,
    /// Table I config overrides (`ArrayHeight`, `IfmapSramSz`, ...), applied
    /// over the paper's default configuration. Order-insensitive.
    pub config: Vec<(String, String)>,
    /// Scale-out partition grid (rows, cols); `(1, 1)` = monolithic.
    pub grid: (u64, u64),
    /// Dataflow override in any accepted spelling (`os`, `WS`,
    /// `weight_stationary`, ...), or `auto` to let the analytical model
    /// pick the fastest dataflow per layer.
    pub dataflow: Option<String>,
    /// DRAM bandwidth in bytes/cycle; enables the stall model.
    pub bandwidth: Option<f64>,
    /// Batch the workload N times (lowers convs to GEMM).
    pub batch: Option<u64>,
}

impl SimJob {
    /// A job running a built-in network with defaults everywhere else.
    pub fn builtin(network: impl Into<String>) -> SimJob {
        SimJob {
            workload: Workload::Builtin(network.into()),
            layer: None,
            config: Vec::new(),
            grid: (1, 1),
            dataflow: None,
            bandwidth: None,
            batch: None,
        }
    }

    /// Parses a job from its JSON object form.
    ///
    /// Recognized keys: `network` *or* (`topology_csv` + optional
    /// `topology_name`), `layer`, `config` (object of Table I overrides),
    /// `grid` (`"PRxPC"`), `dataflow`, `bandwidth`, `batch`.
    pub fn from_json(value: &Json) -> Result<SimJob, JobError> {
        let obj = value
            .as_object()
            .ok_or_else(|| JobError::bad_request("job must be a JSON object"))?;
        for (key, _) in obj {
            match key.as_str() {
                "network" | "topology_csv" | "topology_name" | "layer" | "config" | "grid"
                | "dataflow" | "bandwidth" | "batch" => {}
                other => {
                    return Err(JobError::bad_request(format!(
                        "unknown job field `{other}`"
                    )))
                }
            }
        }
        let workload = match (value.get("network"), value.get("topology_csv")) {
            (Some(_), Some(_)) => {
                return Err(JobError::bad_request(
                    "give either `network` or `topology_csv`, not both",
                ))
            }
            (Some(n), None) => Workload::Builtin(
                n.as_str()
                    .ok_or_else(|| JobError::bad_request("`network` must be a string"))?
                    .to_owned(),
            ),
            (None, Some(csv)) => Workload::InlineCsv {
                name: value
                    .get("topology_name")
                    .and_then(Json::as_str)
                    .unwrap_or("inline")
                    .to_owned(),
                csv: csv
                    .as_str()
                    .ok_or_else(|| JobError::bad_request("`topology_csv` must be a string"))?
                    .to_owned(),
            },
            (None, None) => {
                return Err(JobError::bad_request(
                    "job needs a workload: `network` or `topology_csv`",
                ))
            }
        };
        let mut job = SimJob {
            workload,
            ..SimJob::builtin("")
        };
        if let Some(layer) = value.get("layer") {
            job.layer = Some(
                layer
                    .as_str()
                    .ok_or_else(|| JobError::bad_request("`layer` must be a string"))?
                    .to_owned(),
            );
        }
        if let Some(config) = value.get("config") {
            let pairs = config
                .as_object()
                .ok_or_else(|| JobError::bad_request("`config` must be an object"))?;
            for (k, v) in pairs {
                let text = match v {
                    Json::Str(s) => s.clone(),
                    Json::Int(i) => i.to_string(),
                    Json::Float(f) => f.to_string(),
                    _ => {
                        return Err(JobError::bad_request(format!(
                            "config value for `{k}` must be a string or number"
                        )))
                    }
                };
                job.config.push((k.clone(), text));
            }
        }
        if let Some(grid) = value.get("grid") {
            let text = grid
                .as_str()
                .ok_or_else(|| JobError::bad_request("`grid` must be a string like \"2x2\""))?;
            job.grid = parse_grid(text)?;
        }
        if let Some(df) = value.get("dataflow") {
            job.dataflow = Some(
                df.as_str()
                    .ok_or_else(|| JobError::bad_request("`dataflow` must be a string"))?
                    .to_owned(),
            );
        }
        if let Some(bw) = value.get("bandwidth") {
            let bw = bw
                .as_f64()
                .ok_or_else(|| JobError::bad_request("`bandwidth` must be a number"))?;
            job.bandwidth = Some(bw);
        }
        if let Some(batch) = value.get("batch") {
            job.batch = Some(
                batch
                    .as_u64()
                    .ok_or_else(|| JobError::bad_request("`batch` must be a positive integer"))?,
            );
        }
        Ok(job)
    }

    /// Parses one `key=value`-pair manifest line, e.g.
    /// `network=resnet50 layer=Conv1 grid=2x2 dataflow=ws config.ArrayHeight=16`.
    pub fn from_kv_line(line: &str) -> Result<SimJob, JobError> {
        let mut network = None;
        let mut job = SimJob::builtin("");
        for token in line.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                JobError::bad_request(format!("manifest token `{token}` is not key=value"))
            })?;
            match key {
                "network" => network = Some(value.to_owned()),
                "layer" => job.layer = Some(value.to_owned()),
                "grid" => job.grid = parse_grid(value)?,
                "dataflow" => job.dataflow = Some(value.to_owned()),
                "bandwidth" => {
                    job.bandwidth =
                        Some(value.parse().map_err(|_| {
                            JobError::bad_request(format!("bad bandwidth `{value}`"))
                        })?)
                }
                "batch" => {
                    job.batch = Some(
                        value
                            .parse()
                            .map_err(|_| JobError::bad_request(format!("bad batch `{value}`")))?,
                    )
                }
                _ => match key.strip_prefix("config.") {
                    Some(cfg_key) => job.config.push((cfg_key.to_owned(), value.to_owned())),
                    None => {
                        return Err(JobError::bad_request(format!(
                            "unknown manifest key `{key}`"
                        )))
                    }
                },
            }
        }
        match network {
            Some(n) => {
                job.workload = Workload::Builtin(n);
                Ok(job)
            }
            None => Err(JobError::bad_request(
                "manifest line needs network=<name> (inline CSV is HTTP-only)",
            )),
        }
    }

    /// The JSON object form accepted by [`SimJob::from_json`].
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        match &self.workload {
            Workload::Builtin(name) => pairs.push(("network".into(), Json::str(name.clone()))),
            Workload::InlineCsv { name, csv } => {
                pairs.push(("topology_name".into(), Json::str(name.clone())));
                pairs.push(("topology_csv".into(), Json::str(csv.clone())));
            }
        }
        if let Some(layer) = &self.layer {
            pairs.push(("layer".into(), Json::str(layer.clone())));
        }
        if !self.config.is_empty() {
            pairs.push((
                "config".into(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                        .collect(),
                ),
            ));
        }
        if self.grid != (1, 1) {
            pairs.push((
                "grid".into(),
                Json::str(format!("{}x{}", self.grid.0, self.grid.1)),
            ));
        }
        if let Some(df) = &self.dataflow {
            pairs.push(("dataflow".into(), Json::str(df.clone())));
        }
        if let Some(bw) = self.bandwidth {
            pairs.push(("bandwidth".into(), Json::Float(bw)));
        }
        if let Some(batch) = self.batch {
            pairs.push(("batch".into(), Json::Int(batch.into())));
        }
        Json::Obj(pairs)
    }

    /// Resolves the request into its canonical, executable form.
    pub fn normalize(&self) -> Result<NormalizedJob, JobError> {
        // 1. Effective hardware configuration: defaults + overrides, routed
        //    through the canonical config parser so key spelling/order and
        //    numeric formatting wash out.
        let override_text: String = self
            .config
            .iter()
            .map(|(k, v)| format!("{k} : {v}\n"))
            .collect();
        let mut config = parse_config(&override_text)
            .map_err(|e| JobError::bad_request(format!("config override: {e}")))?;
        let mut auto_dataflow = false;
        if let Some(df) = &self.dataflow {
            if df.eq_ignore_ascii_case("auto") {
                auto_dataflow = true;
            } else {
                config.dataflow = df
                    .parse::<Dataflow>()
                    .map_err(|_| JobError::bad_request(format!("bad dataflow `{df}`")))?;
            }
        }
        if let Some(bw) = self.bandwidth {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(JobError::bad_request("bandwidth must be positive"));
            }
            config.dram_bandwidth = Some(bw);
        }

        // 2. Workload, resolved to a parsed topology.
        let mut topology = match &self.workload {
            Workload::Builtin(name) => builtin_network(name)?,
            Workload::InlineCsv { name, csv } => parse_topology_csv(name, csv)
                .map_err(|e| JobError::bad_request(format!("topology csv: {e}")))?,
        };
        if let Some(layer) = &self.layer {
            let filtered = topology.filtered(|l| l.name() == layer);
            if filtered.is_empty() {
                return Err(JobError::bad_request(format!(
                    "workload `{}` has no layer `{layer}`",
                    topology.name()
                )));
            }
            topology = filtered;
        }
        if let Some(batch) = self.batch {
            if batch == 0 {
                return Err(JobError::bad_request("batch must be nonzero"));
            }
            topology = networks::batched(&topology, batch);
        }

        // 3. Grid.
        if self.grid.0 == 0 || self.grid.1 == 0 {
            return Err(JobError::bad_request("grid dimensions must be nonzero"));
        }
        let grid = PartitionGrid::new(self.grid.0, self.grid.1);

        Ok(NormalizedJob {
            config,
            topology,
            grid,
            auto_dataflow,
        })
    }
}

/// Builds the topology for a built-in workload name: the shared
/// [`networks::by_name`] vocabulary (built-in networks plus the Table IV
/// layer tags like `TF0`), with server-flavored errors.
pub fn builtin_network(name: &str) -> Result<Topology, JobError> {
    networks::by_name(name).ok_or_else(|| {
        JobError::bad_request(format!(
            "unknown built-in workload `{name}` (try resnet50, resnet18, alexnet, googlenet, \
             mobilenet_v1, vgg16, yolo_tiny, language_models, or a Table IV layer tag like TF0)"
        ))
    })
}

fn parse_grid(text: &str) -> Result<(u64, u64), JobError> {
    let (pr, pc) = text
        .split_once('x')
        .ok_or_else(|| JobError::bad_request(format!("grid expects PRxPC, got `{text}`")))?;
    let pr: u64 = pr
        .trim()
        .parse()
        .map_err(|_| JobError::bad_request(format!("bad grid rows `{pr}`")))?;
    let pc: u64 = pc
        .trim()
        .parse()
        .map_err(|_| JobError::bad_request(format!("bad grid cols `{pc}`")))?;
    if pr == 0 || pc == 0 {
        return Err(JobError::bad_request("grid dimensions must be nonzero"));
    }
    Ok((pr, pc))
}

/// A fully resolved job: canonical configuration, parsed topology, grid.
#[derive(Debug, Clone)]
pub struct NormalizedJob {
    /// Effective hardware configuration.
    pub config: SimConfig,
    /// Resolved workload (layer-filtered and batched as requested).
    pub topology: Topology,
    /// Partition grid.
    pub grid: PartitionGrid,
    /// Select the fastest dataflow per layer instead of `config.dataflow`.
    pub auto_dataflow: bool,
}

impl NormalizedJob {
    /// The canonical text the job key is derived from — the *same*
    /// [`canonical_job_text`] the core sweep engine hashes, so the server
    /// cache and `SweepEngine` share one content-addressed keyspace.
    pub fn canonical_text(&self) -> String {
        canonical_job_text(
            &self.config,
            self.topology.name(),
            self.grid,
            &topology_to_csv(&self.topology),
            self.auto_dataflow,
        )
    }

    /// The content-addressed key naming this job's result.
    pub fn key(&self) -> JobKey {
        JobKey::from_content(self.canonical_text().as_bytes())
    }
}

/// A 128-bit content hash naming a normalized job (FNV-1a/128).
///
/// Collision odds for FNV-128 at design-space-exploration scale (even
/// millions of cached entries) are negligible, and the hash is stable
/// across processes and platforms — a prerequisite for a cache that could
/// later be shared between server shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u128);

impl JobKey {
    /// Hashes arbitrary content into a key (via the shared
    /// [`ContentKey`] FNV-1a/128, so server keys and sweep-engine keys
    /// agree byte for byte).
    pub fn from_content(bytes: &[u8]) -> JobKey {
        JobKey(ContentKey::from_content(bytes).0)
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Why a job was rejected or failed.
///
/// Every variant maps to one HTTP status, so the whole stack — engine,
/// HTTP front end, batch client — shares a single failure vocabulary:
/// a request either completes, is shed with a typed error, or times out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The request itself is invalid (HTTP 400).
    BadRequest(String),
    /// The simulation failed after being accepted (HTTP 500).
    Internal(String),
    /// The engine's bounded queue is full and the job was shed instead of
    /// queued (HTTP 503 + `Retry-After`). `retry_after_ms` is the engine's
    /// estimate of when capacity frees up.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the result was ready
    /// (HTTP 504). The in-flight simulation keeps running and its result
    /// still lands in the cache for the next request.
    DeadlineExpired,
    /// The engine is draining for shutdown and accepts no new work
    /// (HTTP 503).
    ShuttingDown,
}

impl JobError {
    /// A request-side error.
    pub fn bad_request(msg: impl Into<String>) -> JobError {
        JobError::BadRequest(msg.into())
    }

    /// True for load-shedding outcomes that a client may transparently
    /// retry after backing off ([`JobError::Overloaded`]). Deadline expiry
    /// is *not* retryable here: retrying it is a caller policy decision.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::Overloaded { .. })
    }

    /// The engine's back-off hint in milliseconds, if this error carries
    /// one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            JobError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::BadRequest(msg) => write!(f, "{msg}"),
            JobError::Internal(msg) => write!(f, "simulation failed: {msg}"),
            JobError::Overloaded { retry_after_ms } => write!(
                f,
                "server overloaded: job queue is full (retry after {retry_after_ms} ms)"
            ),
            JobError::DeadlineExpired => {
                write!(f, "deadline expired before the result was ready")
            }
            JobError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_job_normalizes_and_keys() {
        let job = SimJob::builtin("resnet50");
        let norm = job.normalize().unwrap();
        assert_eq!(norm.topology.name(), "resnet50");
        assert_eq!(norm.key(), job.normalize().unwrap().key());
    }

    #[test]
    fn config_key_order_is_irrelevant() {
        let mut a = SimJob::builtin("alexnet");
        a.config = vec![
            ("ArrayHeight".into(), "16".into()),
            ("IfmapSramSz".into(), "64".into()),
        ];
        let mut b = SimJob::builtin("alexnet");
        b.config = vec![
            ("ifmapsramsz".into(), "64".into()),
            ("arrayheight".into(), "16".into()),
        ];
        assert_eq!(a.normalize().unwrap().key(), b.normalize().unwrap().key());
    }

    #[test]
    fn dataflow_spellings_are_equivalent() {
        let mut a = SimJob::builtin("alexnet");
        a.dataflow = Some("ws".into());
        let mut b = SimJob::builtin("alexnet");
        b.dataflow = Some("Weight_Stationary".into());
        assert_eq!(a.normalize().unwrap().key(), b.normalize().unwrap().key());
    }

    #[test]
    fn auto_dataflow_normalizes_and_keys_separately() {
        let mut auto = SimJob::builtin("alexnet");
        auto.dataflow = Some("Auto".into());
        let norm = auto.normalize().unwrap();
        assert!(norm.auto_dataflow);
        // `auto` must not collide with the dataflow it would select.
        let fixed = SimJob::builtin("alexnet").normalize().unwrap();
        assert!(!fixed.auto_dataflow);
        assert_ne!(norm.key(), fixed.key());
    }

    #[test]
    fn layer_tag_workloads_resolve() {
        let norm = SimJob::builtin("TF0").normalize().unwrap();
        assert_eq!(norm.topology.name(), "TF0");
        assert_eq!(norm.topology.len(), 1);
    }

    #[test]
    fn distinct_jobs_get_distinct_keys() {
        let a = SimJob::builtin("alexnet").normalize().unwrap().key();
        let mut j = SimJob::builtin("alexnet");
        j.grid = (2, 2);
        let b = j.normalize().unwrap().key();
        let c = SimJob::builtin("resnet18").normalize().unwrap().key();
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn layer_filter_selects_one_layer() {
        let mut job = SimJob::builtin("alexnet");
        let full = SimJob::builtin("alexnet").normalize().unwrap();
        let first = full.topology.layers()[0].name().to_owned();
        job.layer = Some(first.clone());
        let norm = job.normalize().unwrap();
        assert_eq!(norm.topology.len(), 1);
        assert_eq!(norm.topology.layers()[0].name(), first);

        job.layer = Some("no_such_layer".into());
        assert!(job.normalize().is_err());
    }

    #[test]
    fn json_round_trip() {
        let mut job = SimJob::builtin("resnet50");
        job.layer = Some("Conv1".into());
        job.config = vec![("ArrayHeight".into(), "16".into())];
        job.grid = (4, 2);
        job.dataflow = Some("ws".into());
        job.bandwidth = Some(32.0);
        job.batch = Some(2);
        let parsed = SimJob::from_json(&job.to_json()).unwrap();
        assert_eq!(parsed, job);
    }

    #[test]
    fn kv_line_parses() {
        let job = SimJob::from_kv_line(
            "network=resnet50 layer=Conv1 grid=2x2 dataflow=ws config.ArrayHeight=16",
        )
        .unwrap();
        assert_eq!(job.workload, Workload::Builtin("resnet50".into()));
        assert_eq!(job.layer.as_deref(), Some("Conv1"));
        assert_eq!(job.grid, (2, 2));
        assert_eq!(
            job.config,
            vec![("ArrayHeight".to_string(), "16".to_string())]
        );
        assert!(SimJob::from_kv_line("layer=Conv1").is_err());
        assert!(SimJob::from_kv_line("network=resnet50 bogus").is_err());
    }

    #[test]
    fn overload_errors_carry_retry_hints() {
        let shed = JobError::Overloaded {
            retry_after_ms: 250,
        };
        assert!(shed.is_retryable());
        assert_eq!(shed.retry_after_ms(), Some(250));
        assert!(shed.to_string().contains("250 ms"));

        for terminal in [
            JobError::DeadlineExpired,
            JobError::ShuttingDown,
            JobError::bad_request("nope"),
            JobError::Internal("boom".into()),
        ] {
            assert!(!terminal.is_retryable(), "{terminal} must not retry");
            assert_eq!(terminal.retry_after_ms(), None);
        }
        assert!(JobError::ShuttingDown.to_string().contains("shutting down"));
        assert!(JobError::DeadlineExpired.to_string().contains("deadline"));
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(SimJob::from_json(&Json::parse(r#"{"grid": "2x2"}"#).unwrap()).is_err());
        assert!(
            SimJob::from_json(&Json::parse(r#"{"network": "x", "blah": 1}"#).unwrap()).is_err()
        );
        let mut job = SimJob::builtin("not_a_network");
        assert!(job.normalize().is_err());
        job = SimJob::builtin("alexnet");
        job.grid = (0, 2);
        assert!(job.normalize().is_err());
    }
}
