//! The server's result cache: a re-export of the shared
//! [`scalesim::cache`] sharded LRU.
//!
//! The cache implementation used to live here; it moved into the core
//! crate so the design-space [`scalesim::sweep::SweepEngine`] can memoize
//! through the same structure (and the same content-addressed keyspace)
//! without depending on the HTTP layer. This module keeps the server's
//! import paths stable.

pub use scalesim::cache::ShardedLru;
