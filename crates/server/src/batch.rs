//! Batch mode: run a manifest of jobs through the [`Engine`] with several
//! concurrent submitters and collect one CSV report.
//!
//! A manifest is a text file with one job per line. Blank lines and `#`
//! comments are skipped. Each job line is either a JSON object (the
//! `POST /simulate` body format — the line must start with `{`) or
//! whitespace-separated `key=value` pairs:
//!
//! ```text
//! # ResNet-50 first layer at two grid sizes
//! network=resnet50 layer=Conv1
//! network=resnet50 layer=Conv1 grid=2x2
//! {"network": "alexnet", "dataflow": "ws"}
//! ```
//!
//! Duplicate jobs in a manifest deduplicate through the engine's cache and
//! single-flight table exactly like HTTP traffic does, so a manifest that
//! lists every job twice reports a 50% cache-hit rate and simulates each
//! distinct job once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use scalesim::NetworkReport;

use crate::engine::{Engine, Served, SimResult};
use crate::job::{JobError, SimJob};
use crate::json::Json;

/// Parses a batch manifest into jobs, in file order.
pub fn parse_manifest(text: &str) -> Result<Vec<SimJob>, JobError> {
    let mut jobs = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job = if line.starts_with('{') {
            Json::parse(line)
                .map_err(|e| JobError::bad_request(format!("line {}: {e}", idx + 1)))
                .and_then(|json| SimJob::from_json(&json))
        } else {
            SimJob::from_kv_line(line)
        }
        .map_err(|e| JobError::bad_request(format!("manifest line {}: {e}", idx + 1)))?;
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(JobError::bad_request("manifest contains no jobs"));
    }
    Ok(jobs)
}

/// One manifest entry's outcome, in manifest order.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The job as written in the manifest.
    pub job: SimJob,
    /// How it was served.
    pub served: Served,
    /// The simulation result.
    pub result: std::sync::Arc<SimResult>,
}

/// The collected outcome of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job outcomes, in manifest order.
    pub entries: Vec<BatchEntry>,
    /// Simulations that actually ran.
    pub simulations: u64,
    /// Requests served from cache or by joining an in-flight duplicate.
    pub cache_hits: u64,
}

impl BatchOutcome {
    /// Cache-hit rate over the whole batch, in percent.
    pub fn hit_rate_percent(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / self.entries.len() as f64
        }
    }

    /// The combined REPORT CSV: one header, then every job's per-layer rows
    /// in manifest order. Rows are byte-identical to each job's standalone
    /// `NetworkReport::to_csv` output.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(NetworkReport::CSV_HEADER);
        for entry in &self.entries {
            out.push_str(&entry.result.report.csv_rows());
        }
        out
    }

    /// One-line human summary, e.g.
    /// `48 jobs, 24 simulations, cache-hit rate 50.0% (24/48)`.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs, {} simulations, cache-hit rate {:.1}% ({}/{})",
            self.entries.len(),
            self.simulations,
            self.hit_rate_percent(),
            self.cache_hits,
            self.entries.len(),
        )
    }
}

/// A finished manifest slot: how the job was served plus the shared result.
type CompletedJob = Option<(Served, std::sync::Arc<SimResult>)>;

/// Runs `jobs` through `engine` using `submitters` concurrent submitter
/// threads. Results come back in manifest order regardless of completion
/// order. Fails fast on the first job error.
pub fn run_batch(
    engine: &Engine,
    jobs: &[SimJob],
    submitters: usize,
) -> Result<BatchOutcome, JobError> {
    let submitters = submitters.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<CompletedJob>> = Mutex::new(vec![None; jobs.len()]);
    let first_error: Mutex<Option<JobError>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..submitters {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    return;
                }
                match engine.run(&jobs[idx]) {
                    Ok((result, served)) => {
                        slots.lock().unwrap()[idx] = Some((served, result));
                    }
                    Err(e) => {
                        let mut first = first_error.lock().unwrap();
                        if first.is_none() {
                            *first = Some(JobError::BadRequest(format!("job {}: {e}", idx + 1)));
                        }
                        // Keep draining the queue so other submitters finish.
                    }
                }
            });
        }
    })
    .expect("batch submitter panicked");

    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }
    let slots = slots.into_inner().unwrap();
    let mut entries = Vec::with_capacity(jobs.len());
    let mut cache_hits = 0u64;
    let mut simulations = 0u64;
    for (job, slot) in jobs.iter().zip(slots) {
        let (served, result) = slot.expect("every job slot filled");
        match served {
            Served::Fresh => simulations += 1,
            Served::Cache | Served::Joined => cache_hits += 1,
        }
        entries.push(BatchEntry {
            job: job.clone(),
            served,
            result,
        });
    }
    Ok(BatchOutcome {
        entries,
        simulations,
        cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_CSV: &str = "Layer,IfmapH,IfmapW,FilterH,FilterW,Channels,Filters,Strides\n\
                            L1,8,8,3,3,4,8,1\nL2,8,8,1,1,8,8,1\n";

    fn tiny_manifest_job(dataflow: &str) -> SimJob {
        SimJob {
            workload: crate::job::Workload::InlineCsv {
                name: "tiny".into(),
                csv: TINY_CSV.into(),
            },
            layer: None,
            config: vec![
                ("ArrayHeight".into(), "8".into()),
                ("ArrayWidth".into(), "8".into()),
            ],
            grid: (1, 1),
            dataflow: Some(dataflow.into()),
            bandwidth: None,
            batch: None,
        }
    }

    #[test]
    fn manifest_parses_kv_json_comments() {
        let text = "\n# comment\nnetwork=resnet50 layer=Conv1\n\
                    {\"network\": \"alexnet\", \"dataflow\": \"ws\"}\n";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].layer.as_deref(), Some("Conv1"));
        assert_eq!(jobs[1].dataflow.as_deref(), Some("ws"));
        assert!(parse_manifest("# only comments\n").is_err());
        assert!(parse_manifest("network=resnet50 nonsense\n").is_err());
    }

    #[test]
    fn duplicated_jobs_hit_fifty_percent() {
        let engine = Engine::new(4, 64);
        let jobs: Vec<SimJob> = ["os", "ws", "is"]
            .iter()
            .flat_map(|df| [tiny_manifest_job(df), tiny_manifest_job(df)])
            .collect();
        let outcome = run_batch(&engine, &jobs, 4).unwrap();
        assert_eq!(outcome.entries.len(), 6);
        assert_eq!(outcome.simulations, 3);
        assert_eq!(outcome.cache_hits, 3);
        assert!((outcome.hit_rate_percent() - 50.0).abs() < 1e-9);
        assert!(outcome.summary().contains("cache-hit rate 50.0% (3/6)"));
        engine.shutdown();
    }

    #[test]
    fn csv_rows_match_standalone_reports() {
        let engine = Engine::new(2, 16);
        let jobs = vec![tiny_manifest_job("os"), tiny_manifest_job("ws")];
        let outcome = run_batch(&engine, &jobs, 2).unwrap();
        let combined = outcome.to_csv();
        let expected: String = String::from(NetworkReport::CSV_HEADER)
            + &outcome.entries[0].result.report.csv_rows()
            + &outcome.entries[1].result.report.csv_rows();
        assert_eq!(combined, expected);
        // And each job's standalone to_csv is header + its rows.
        let standalone = outcome.entries[0].result.report.to_csv();
        assert!(standalone.ends_with(&outcome.entries[0].result.report.csv_rows()));
        engine.shutdown();
    }

    #[test]
    fn bad_job_fails_the_batch() {
        let engine = Engine::new(1, 4);
        let jobs = vec![SimJob::builtin("no_such_net")];
        assert!(run_batch(&engine, &jobs, 2).is_err());
        engine.shutdown();
    }
}
