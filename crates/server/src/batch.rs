//! Batch mode: run a manifest of jobs through the [`Engine`] with several
//! concurrent submitters and collect one CSV report.
//!
//! A manifest is a text file with one job per line. Blank lines and `#`
//! comments are skipped. Each job line is either a JSON object (the
//! `POST /simulate` body format — the line must start with `{`) or
//! whitespace-separated `key=value` pairs:
//!
//! ```text
//! # ResNet-50 first layer at two grid sizes
//! network=resnet50 layer=Conv1
//! network=resnet50 layer=Conv1 grid=2x2
//! {"network": "alexnet", "dataflow": "ws"}
//! ```
//!
//! Duplicate jobs in a manifest deduplicate through the engine's cache and
//! single-flight table exactly like HTTP traffic does, so a manifest that
//! lists every job twice reports a 50% cache-hit rate and simulates each
//! distinct job once.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use scalesim::NetworkReport;

use crate::engine::{Engine, Served, SimResult};
use crate::job::{JobError, SimJob};
use crate::json::Json;

/// Retry policy for shed jobs: exponential backoff with deterministic
/// jitter, honoring the server's `Retry-After` hint when one is larger.
/// Only *retryable* errors ([`JobError::is_retryable`], i.e. overload
/// shedding) are retried — bad requests and internal errors fail the job
/// immediately.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail on first shed).
    pub retries: u32,
    /// First-retry delay; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on any single delay (applied after hint and jitter).
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` attempts and the default delays.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (0-based) of job `job_idx`:
    /// `base * 2^attempt`, raised to the server's `Retry-After` hint if
    /// that is larger, scaled by a deterministic 0.75–1.25x jitter keyed on
    /// (job, attempt) so concurrent shed submitters spread out instead of
    /// retrying in lockstep, then capped at `max_delay`.
    pub fn backoff_delay(&self, attempt: u32, job_idx: usize, hint_ms: Option<u64>) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let floor = Duration::from_millis(hint_ms.unwrap_or(0));
        let delay = exp.max(floor);
        // FNV-1a over (job_idx, attempt) → fraction in [0, 1); no `rand`
        // available offline, and determinism makes the schedule testable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in job_idx
            .to_le_bytes()
            .iter()
            .chain(attempt.to_le_bytes().iter())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let jitter = 0.75 + 0.5 * (h % 1000) as f64 / 1000.0;
        delay.mul_f64(jitter).min(self.max_delay)
    }
}

/// Parses a batch manifest into jobs, in file order.
pub fn parse_manifest(text: &str) -> Result<Vec<SimJob>, JobError> {
    let mut jobs = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let job = if line.starts_with('{') {
            Json::parse(line)
                .map_err(|e| JobError::bad_request(format!("line {}: {e}", idx + 1)))
                .and_then(|json| SimJob::from_json(&json))
        } else {
            SimJob::from_kv_line(line)
        }
        .map_err(|e| JobError::bad_request(format!("manifest line {}: {e}", idx + 1)))?;
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(JobError::bad_request("manifest contains no jobs"));
    }
    Ok(jobs)
}

/// One manifest entry's outcome, in manifest order.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The job as written in the manifest.
    pub job: SimJob,
    /// How it was served.
    pub served: Served,
    /// The simulation result.
    pub result: std::sync::Arc<SimResult>,
}

/// The collected outcome of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job outcomes, in manifest order.
    pub entries: Vec<BatchEntry>,
    /// Simulations that actually ran.
    pub simulations: u64,
    /// Requests served from cache or by joining an in-flight duplicate.
    pub cache_hits: u64,
}

impl BatchOutcome {
    /// Cache-hit rate over the whole batch, in percent.
    pub fn hit_rate_percent(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / self.entries.len() as f64
        }
    }

    /// The combined REPORT CSV: one header, then every job's per-layer rows
    /// in manifest order. Rows are byte-identical to each job's standalone
    /// `NetworkReport::to_csv` output.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(NetworkReport::CSV_HEADER);
        for entry in &self.entries {
            out.push_str(&entry.result.report.csv_rows());
        }
        out
    }

    /// One-line human summary, e.g.
    /// `48 jobs, 24 simulations, cache-hit rate 50.0% (24/48)`.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs, {} simulations, cache-hit rate {:.1}% ({}/{})",
            self.entries.len(),
            self.simulations,
            self.hit_rate_percent(),
            self.cache_hits,
            self.entries.len(),
        )
    }
}

/// A finished manifest slot: how the job was served plus the shared result.
type CompletedJob = Option<(Served, std::sync::Arc<SimResult>)>;

/// Runs `jobs` through `engine` using `submitters` concurrent submitter
/// threads, without retries. See [`run_batch_with_retry`].
pub fn run_batch(
    engine: &Engine,
    jobs: &[SimJob],
    submitters: usize,
) -> Result<BatchOutcome, JobError> {
    run_batch_with_retry(engine, jobs, submitters, RetryPolicy::default())
}

/// Runs `jobs` through `engine` using `submitters` concurrent submitter
/// threads. Results come back in manifest order regardless of completion
/// order. Jobs shed by an overloaded engine are retried per `policy`
/// (backoff + jitter, honoring the retry hint); other errors fail fast.
pub fn run_batch_with_retry(
    engine: &Engine,
    jobs: &[SimJob],
    submitters: usize,
    policy: RetryPolicy,
) -> Result<BatchOutcome, JobError> {
    let submitters = submitters.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<CompletedJob>> = Mutex::new(vec![None; jobs.len()]);
    let first_error: Mutex<Option<JobError>> = Mutex::new(None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..submitters {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs.len() {
                    return;
                }
                let mut attempt = 0u32;
                let outcome = loop {
                    match engine.run(&jobs[idx]) {
                        Ok(ok) => break Ok(ok),
                        Err(e) if e.is_retryable() && attempt < policy.retries => {
                            std::thread::sleep(policy.backoff_delay(
                                attempt,
                                idx,
                                e.retry_after_ms(),
                            ));
                            attempt += 1;
                        }
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok((result, served)) => {
                        slots.lock().unwrap()[idx] = Some((served, result));
                    }
                    Err(e) => {
                        let mut first = first_error.lock().unwrap();
                        if first.is_none() {
                            *first = Some(JobError::BadRequest(format!("job {}: {e}", idx + 1)));
                        }
                        // Keep draining the queue so other submitters finish.
                    }
                }
            });
        }
    })
    .expect("batch submitter panicked");

    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }
    let slots = slots.into_inner().unwrap();
    let mut entries = Vec::with_capacity(jobs.len());
    let mut cache_hits = 0u64;
    let mut simulations = 0u64;
    for (job, slot) in jobs.iter().zip(slots) {
        let (served, result) = slot.expect("every job slot filled");
        match served {
            Served::Fresh => simulations += 1,
            Served::Cache | Served::Joined => cache_hits += 1,
        }
        entries.push(BatchEntry {
            job: job.clone(),
            served,
            result,
        });
    }
    Ok(BatchOutcome {
        entries,
        simulations,
        cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_CSV: &str = "Layer,IfmapH,IfmapW,FilterH,FilterW,Channels,Filters,Strides\n\
                            L1,8,8,3,3,4,8,1\nL2,8,8,1,1,8,8,1\n";

    fn tiny_manifest_job(dataflow: &str) -> SimJob {
        SimJob {
            workload: crate::job::Workload::InlineCsv {
                name: "tiny".into(),
                csv: TINY_CSV.into(),
            },
            layer: None,
            config: vec![
                ("ArrayHeight".into(), "8".into()),
                ("ArrayWidth".into(), "8".into()),
            ],
            grid: (1, 1),
            dataflow: Some(dataflow.into()),
            bandwidth: None,
            batch: None,
        }
    }

    #[test]
    fn manifest_parses_kv_json_comments() {
        let text = "\n# comment\nnetwork=resnet50 layer=Conv1\n\
                    {\"network\": \"alexnet\", \"dataflow\": \"ws\"}\n";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].layer.as_deref(), Some("Conv1"));
        assert_eq!(jobs[1].dataflow.as_deref(), Some("ws"));
        assert!(parse_manifest("# only comments\n").is_err());
        assert!(parse_manifest("network=resnet50 nonsense\n").is_err());
    }

    #[test]
    fn duplicated_jobs_hit_fifty_percent() {
        let engine = Engine::new(4, 64);
        let jobs: Vec<SimJob> = ["os", "ws", "is"]
            .iter()
            .flat_map(|df| [tiny_manifest_job(df), tiny_manifest_job(df)])
            .collect();
        let outcome = run_batch(&engine, &jobs, 4).unwrap();
        assert_eq!(outcome.entries.len(), 6);
        assert_eq!(outcome.simulations, 3);
        assert_eq!(outcome.cache_hits, 3);
        assert!((outcome.hit_rate_percent() - 50.0).abs() < 1e-9);
        assert!(outcome.summary().contains("cache-hit rate 50.0% (3/6)"));
        engine.shutdown();
    }

    #[test]
    fn csv_rows_match_standalone_reports() {
        let engine = Engine::new(2, 16);
        let jobs = vec![tiny_manifest_job("os"), tiny_manifest_job("ws")];
        let outcome = run_batch(&engine, &jobs, 2).unwrap();
        let combined = outcome.to_csv();
        let expected: String = String::from(NetworkReport::CSV_HEADER)
            + &outcome.entries[0].result.report.csv_rows()
            + &outcome.entries[1].result.report.csv_rows();
        assert_eq!(combined, expected);
        // And each job's standalone to_csv is header + its rows.
        let standalone = outcome.entries[0].result.report.to_csv();
        assert!(standalone.ends_with(&outcome.entries[0].result.report.csv_rows()));
        engine.shutdown();
    }

    #[test]
    fn bad_job_fails_the_batch() {
        let engine = Engine::new(1, 4);
        let jobs = vec![SimJob::builtin("no_such_net")];
        assert!(run_batch(&engine, &jobs, 2).is_err());
        engine.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_and_honors_hints() {
        let policy = RetryPolicy::with_retries(3);
        // Deterministic: same (attempt, job) always yields the same delay.
        assert_eq!(
            policy.backoff_delay(0, 7, None),
            policy.backoff_delay(0, 7, None)
        );
        // Jitter bounds: 0.75–1.25x of the 50 ms base.
        let d0 = policy.backoff_delay(0, 0, None);
        assert!(d0 >= Duration::from_micros(37_500) && d0 <= Duration::from_micros(62_500));
        // Exponential growth between attempts (jitter can't mask a 2x step
        // entirely: 2 * 0.75 > 1.25).
        assert!(policy.backoff_delay(3, 0, None) > policy.backoff_delay(0, 0, None));
        // A server hint larger than the exponential term becomes the floor.
        let hinted = policy.backoff_delay(0, 0, Some(2_000));
        assert!(hinted >= Duration::from_millis(1_500));
        // The cap always wins.
        assert!(policy.backoff_delay(30, 0, Some(60_000)) <= policy.max_delay);
    }

    #[test]
    fn shed_jobs_retry_until_the_queue_drains() {
        use crate::engine::{EngineOptions, FaultPlan};
        // One slow worker and a one-deep queue: three concurrent distinct
        // jobs guarantee shedding. With retries the whole batch completes.
        let engine = Engine::with_options(EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 1,
        });
        engine.inject_faults(FaultPlan::new().delay("tiny", Duration::from_millis(80)));
        let jobs: Vec<SimJob> = ["os", "ws", "is"]
            .iter()
            .map(|df| tiny_manifest_job(df))
            .collect();
        let policy = RetryPolicy {
            retries: 20,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(250),
        };
        let outcome = run_batch_with_retry(&engine, &jobs, 3, policy).unwrap();
        assert_eq!(outcome.entries.len(), 3);
        assert_eq!(outcome.simulations, 3);
        engine.shutdown();
    }
}
