//! `POST /sweep`: design-space sweeps over the engine's shared cache.
//!
//! The request body is a JSON rendering of a core
//! [`SweepPlan`]. The handler expands the plan,
//! turns every point into a [`NormalizedJob`] and pushes it through
//! [`Engine::run_normalized`] from a small pool of submitter threads — so
//! sweep points share the engine's result cache and single-flight dedup
//! with ordinary `POST /simulate` traffic (they hash the same
//! [`canonical_job_text`](scalesim::sweep::canonical_job_text)). The
//! response lists points in plan order regardless of completion order, so
//! the simulated figures for identical plans are byte-identical; only the
//! per-point `served` markers (miss / hit / joined) and the summary's
//! `simulations` / `cache_hits` counters reflect cache state.
//!
//! Plan JSON:
//!
//! ```json
//! {
//!   "name": "fig9_tf0",
//!   "workloads": ["TF0"],
//!   "budgets": [1024, 4096],
//!   "min_dim": 8,
//!   "grids": "all",            // or ["1x1", "2x2", ...]
//!   "aspect": "all",           // or "squareish" (default)
//!   "dataflows": ["os"],       // os/ws/is/auto; default: base dataflow
//!   "config": {"IfmapSramSz": 64},
//!   "bandwidth": 32
//! }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use scalesim::sweep::{
    sweet_spot_index, telemetry_names, AspectAxis, DataflowChoice, GridAxis, PointSpec, SweepPlan,
    SweepWorkload,
};
use scalesim::PartitionGrid;
use scalesim_telemetry::Histogram;

use crate::engine::{Engine, Served, SimResult};
use crate::job::{builtin_network, JobError, NormalizedJob};
use crate::json::Json;

/// How many submitter threads feed the engine per sweep request. The
/// engine's own worker pool bounds actual simulation parallelism; the
/// submitters only need to keep it saturated.
const SUBMITTERS: usize = 8;

/// Parses the `POST /sweep` body into a core [`SweepPlan`].
///
/// # Errors
///
/// [`JobError::BadRequest`] on unknown fields, unknown workloads or
/// malformed values.
pub fn parse_sweep_plan(value: &Json) -> Result<SweepPlan, JobError> {
    let obj = value
        .as_object()
        .ok_or_else(|| JobError::bad_request("sweep plan must be a JSON object"))?;
    for (key, _) in obj {
        match key.as_str() {
            "name" | "workloads" | "budgets" | "min_dim" | "grids" | "aspect" | "dataflows"
            | "config" | "bandwidth" => {}
            other => {
                return Err(JobError::bad_request(format!(
                    "unknown sweep plan field `{other}`"
                )))
            }
        }
    }

    let mut plan = SweepPlan::new(
        value
            .get("name")
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| JobError::bad_request("`name` must be a string"))
            })
            .transpose()?
            .unwrap_or_else(|| "sweep".to_owned()),
    );

    let workloads = value
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or_else(|| JobError::bad_request("`workloads` must be an array of names"))?;
    for w in workloads {
        let name = w
            .as_str()
            .ok_or_else(|| JobError::bad_request("`workloads` entries must be strings"))?;
        let topology = builtin_network(name)?;
        plan.workloads.push(SweepWorkload {
            label: topology.name().to_owned(),
            topology,
        });
    }

    let budgets = value
        .get("budgets")
        .and_then(Json::as_array)
        .ok_or_else(|| JobError::bad_request("`budgets` must be an array of integers"))?;
    for b in budgets {
        plan.budgets.push(
            b.as_u64()
                .ok_or_else(|| JobError::bad_request("`budgets` entries must be integers"))?,
        );
    }

    if let Some(min_dim) = value.get("min_dim") {
        plan.min_dim = min_dim
            .as_u64()
            .ok_or_else(|| JobError::bad_request("`min_dim` must be an integer"))?;
    }

    if let Some(grids) = value.get("grids") {
        plan.grids = match grids {
            Json::Str(s) if s.eq_ignore_ascii_case("all") => GridAxis::PowersOfTwo,
            Json::Arr(items) => {
                let mut parsed = Vec::new();
                for item in items {
                    let text = item.as_str().ok_or_else(|| {
                        JobError::bad_request("`grids` entries must be \"PRxPC\" strings")
                    })?;
                    let (r, c) = text.split_once('x').ok_or_else(|| {
                        JobError::bad_request(format!("grid `{text}` is not PRxPC"))
                    })?;
                    let r: u64 = r
                        .trim()
                        .parse()
                        .map_err(|_| JobError::bad_request(format!("bad grid rows `{r}`")))?;
                    let c: u64 = c
                        .trim()
                        .parse()
                        .map_err(|_| JobError::bad_request(format!("bad grid cols `{c}`")))?;
                    if r == 0 || c == 0 {
                        return Err(JobError::bad_request("grid dimensions must be nonzero"));
                    }
                    parsed.push(PartitionGrid::new(r, c));
                }
                GridAxis::Explicit(parsed)
            }
            _ => {
                return Err(JobError::bad_request(
                    "`grids` must be \"all\" or an array of \"PRxPC\" strings",
                ))
            }
        };
    }

    if let Some(aspect) = value.get("aspect") {
        plan.aspects = match aspect.as_str() {
            Some(s) if s.eq_ignore_ascii_case("squareish") || s.eq_ignore_ascii_case("square") => {
                AspectAxis::Squareish
            }
            Some(s) if s.eq_ignore_ascii_case("all") => AspectAxis::All,
            _ => {
                return Err(JobError::bad_request(
                    "`aspect` must be \"squareish\" or \"all\"",
                ))
            }
        };
    }

    if let Some(dataflows) = value.get("dataflows") {
        let items = dataflows
            .as_array()
            .ok_or_else(|| JobError::bad_request("`dataflows` must be an array of strings"))?;
        for df in items {
            let text = df
                .as_str()
                .ok_or_else(|| JobError::bad_request("`dataflows` entries must be strings"))?;
            plan.dataflows
                .push(text.parse().map_err(JobError::bad_request)?);
        }
    }

    if let Some(config) = value.get("config") {
        let pairs = config
            .as_object()
            .ok_or_else(|| JobError::bad_request("`config` must be an object"))?;
        let mut override_text = String::new();
        for (k, v) in pairs {
            let text = match v {
                Json::Str(s) => s.clone(),
                Json::Int(i) => i.to_string(),
                Json::Float(f) => f.to_string(),
                _ => {
                    return Err(JobError::bad_request(format!(
                        "config value for `{k}` must be a string or number"
                    )))
                }
            };
            override_text.push_str(&format!("{k} : {text}\n"));
        }
        plan.base = scalesim::parse_config(&override_text)
            .map_err(|e| JobError::bad_request(format!("config override: {e}")))?;
    }

    if let Some(bw) = value.get("bandwidth") {
        let bw = bw
            .as_f64()
            .ok_or_else(|| JobError::bad_request("`bandwidth` must be a number"))?;
        if !(bw.is_finite() && bw > 0.0) {
            return Err(JobError::bad_request("bandwidth must be positive"));
        }
        plan.base.dram_bandwidth = Some(bw);
    }

    Ok(plan)
}

/// Parses, expands and runs a sweep plan against `engine`, returning the
/// full response body. Blocks until every point is served.
///
/// # Errors
///
/// [`JobError::BadRequest`] for invalid plans, [`JobError::Internal`] when
/// a point's simulation fails.
pub fn run_sweep(engine: &Engine, body: &Json) -> Result<Json, JobError> {
    let plan = parse_sweep_plan(body)?;
    let points = plan
        .expand()
        .map_err(|e| JobError::bad_request(e.to_string()))?;

    let registry = engine.registry();
    let points_total = registry.counter(
        telemetry_names::POINTS,
        "Sweep points completed (any path).",
    );
    let cache_hits_metric = registry.counter(
        telemetry_names::CACHE_HITS,
        "Sweep points served without a fresh simulation.",
    );
    let simulations_metric = registry.counter(
        telemetry_names::SIMULATIONS,
        "Simulations executed for sweep points.",
    );
    let point_seconds = registry.histogram(
        telemetry_names::POINT_SECONDS,
        "Wall time per freshly simulated sweep point.",
        &Histogram::duration_buckets(),
    );

    let topology_of: HashMap<&str, usize> = plan
        .workloads
        .iter()
        .enumerate()
        .map(|(i, w)| (w.label.as_str(), i))
        .collect();

    type PointOutcome = Result<(Arc<SimResult>, Served), JobError>;
    let outcomes: Mutex<Vec<Option<PointOutcome>>> = Mutex::new(vec![None; points.len()]);
    let next = AtomicUsize::new(0);
    let submitters = SUBMITTERS.min(points.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..submitters {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = points.get(i) else { break };
                let workload = topology_of[spec.workload.as_str()];
                let job = NormalizedJob {
                    config: spec.config(&plan.base),
                    topology: plan.workloads[workload].topology.clone(),
                    grid: spec.grid,
                    auto_dataflow: spec.dataflow == DataflowChoice::Auto,
                };
                let started = Instant::now();
                let outcome = engine.run_normalized_with_context(
                    job,
                    None,
                    crate::engine::JobContext {
                        route: "/sweep",
                        request_id: "",
                    },
                );
                if matches!(outcome, Ok((_, Served::Fresh))) {
                    point_seconds.observe_duration(started.elapsed());
                }
                outcomes.lock().unwrap()[i] = Some(outcome);
            });
        }
    });

    let outcomes = outcomes.into_inner().unwrap();
    let mut served_points: Vec<(PointSpec, Arc<SimResult>, Served)> =
        Vec::with_capacity(points.len());
    for (spec, outcome) in points.into_iter().zip(outcomes) {
        let (result, served) = outcome.expect("every point was claimed by a submitter")?;
        served_points.push((spec, result, served));
    }

    let simulations = served_points
        .iter()
        .filter(|(_, _, served)| *served == Served::Fresh)
        .count() as u64;
    let cache_hits = served_points.len() as u64 - simulations;
    points_total.add(served_points.len() as u64);
    simulations_metric.add(simulations);
    cache_hits_metric.add(cache_hits);

    let rows: Vec<Json> = served_points
        .iter()
        .map(|(spec, result, served)| point_json(spec, result, *served))
        .collect();
    Ok(Json::obj(vec![
        ("plan", Json::str(plan.name.clone())),
        ("points", Json::Arr(rows)),
        (
            "summary",
            Json::obj(vec![
                ("points", Json::Int((served_points.len() as u64).into())),
                ("simulations", Json::Int(simulations.into())),
                ("cache_hits", Json::Int(cache_hits.into())),
                ("groups", Json::Arr(group_summaries(&served_points))),
            ]),
        ),
    ]))
}

fn point_json(spec: &PointSpec, result: &SimResult, served: Served) -> Json {
    let report = &result.report;
    Json::obj(vec![
        ("workload", Json::str(spec.workload.clone())),
        ("budget", Json::Int(spec.budget.into())),
        ("partitions", Json::Int(spec.partitions().into())),
        ("grid", Json::str(spec.grid.to_string())),
        ("array", Json::str(spec.array.to_string())),
        ("dataflow", Json::str(spec.dataflow.to_string())),
        ("cycles", Json::Int(report.total_cycles().into())),
        (
            "effective_cycles",
            Json::Int(report.total_effective_cycles().into()),
        ),
        ("macs", Json::Int(report.total_macs().into())),
        (
            "overall_utilization",
            Json::Float(report.overall_utilization()),
        ),
        ("dram_bytes", Json::Int(report.total_dram_bytes().into())),
        (
            "peak_bw_bytes_per_cycle",
            Json::Float(report.peak_required_bandwidth()),
        ),
        ("energy", Json::Float(report.total_energy().total())),
        ("key", Json::str(result.key.to_string())),
        ("served", Json::str(served.tag())),
    ])
}

/// One summary object per (workload, budget, dataflow) group: the fastest
/// point and the runtime/bandwidth sweet spot over the group's partition
/// series (mirrors [`scalesim::sweep::SweepOutcome::summarize`]).
fn group_summaries(points: &[(PointSpec, Arc<SimResult>, Served)]) -> Vec<Json> {
    let mut order: Vec<(String, u64, String)> = Vec::new();
    let mut groups: HashMap<(String, u64, String), Vec<usize>> = HashMap::new();
    for (i, (spec, _, _)) in points.iter().enumerate() {
        let key = (
            spec.workload.clone(),
            spec.budget,
            spec.dataflow.to_string(),
        );
        let members = groups.entry(key.clone()).or_default();
        if members.is_empty() {
            order.push(key);
        }
        members.push(i);
    }
    order
        .into_iter()
        .map(|key| {
            let mut members = groups.remove(&key).expect("group recorded in order");
            let (workload, budget, dataflow) = key;
            let best = members
                .iter()
                .copied()
                .min_by_key(|&i| (points[i].1.report.total_effective_cycles(), i))
                .expect("nonempty group");
            members.sort_by_key(|&i| (points[i].0.partitions(), i));
            let cycles: Vec<u64> = members
                .iter()
                .map(|&i| points[i].1.report.total_cycles())
                .collect();
            let bw: Vec<f64> = members
                .iter()
                .map(|&i| points[i].1.report.peak_required_bandwidth())
                .collect();
            let mut partition_counts: Vec<u64> =
                members.iter().map(|&i| points[i].0.partitions()).collect();
            partition_counts.dedup();
            let sweet = if partition_counts.len() > 1 {
                sweet_spot_index(&cycles, &bw).map(|s| members[s])
            } else {
                None
            };
            let point_ref = |i: usize| {
                let (spec, result, _) = &points[i];
                Json::obj(vec![
                    ("index", Json::Int((i as u64).into())),
                    ("grid", Json::str(spec.grid.to_string())),
                    ("array", Json::str(spec.array.to_string())),
                    ("partitions", Json::Int(spec.partitions().into())),
                    (
                        "effective_cycles",
                        Json::Int(result.report.total_effective_cycles().into()),
                    ),
                ])
            };
            Json::obj(vec![
                ("workload", Json::str(workload)),
                ("budget", Json::Int(budget.into())),
                ("dataflow", Json::str(dataflow)),
                ("best", point_ref(best)),
                ("sweet_spot", sweet.map(point_ref).unwrap_or(Json::Null)),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_json(extra: &str) -> Json {
        Json::parse(&format!(
            r#"{{"name":"t","workloads":["TF1"],"budgets":[1024],
                 "config":{{"IfmapSramSz":64,"FilterSramSz":64,"OfmapSramSz":32}}{extra}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn plan_parses_and_expands() {
        let plan = parse_sweep_plan(&plan_json("")).unwrap();
        assert_eq!(plan.name, "t");
        assert_eq!(plan.workloads[0].label, "TF1");
        assert_eq!(plan.expand().unwrap().len(), 5);
    }

    #[test]
    fn plan_rejects_bad_requests() {
        assert!(parse_sweep_plan(&Json::parse(r#"{"budgets":[1]}"#).unwrap()).is_err());
        assert!(parse_sweep_plan(
            &Json::parse(r#"{"workloads":["nope"],"budgets":[1024]}"#).unwrap()
        )
        .is_err());
        assert!(parse_sweep_plan(&plan_json(r#","bogus":1"#)).is_err());
        assert!(parse_sweep_plan(&plan_json(r#","grids":"some""#)).is_err());
        assert!(parse_sweep_plan(&plan_json(r#","dataflows":["rs"]"#)).is_err());
        assert!(parse_sweep_plan(&plan_json(r#","bandwidth":-1"#)).is_err());
    }

    #[test]
    fn sweep_runs_through_the_engine_cache() {
        let engine = Engine::new(4, 64);
        let body = plan_json("");
        let first = run_sweep(&engine, &body).unwrap();
        let summary = first.get("summary").unwrap();
        assert_eq!(summary.get("points").and_then(Json::as_u64), Some(5));
        assert_eq!(summary.get("simulations").and_then(Json::as_u64), Some(5));
        assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(0));

        // Re-running the identical plan is served entirely from cache and
        // the points (minus the `served` marker) are identical.
        let second = run_sweep(&engine, &body).unwrap();
        let summary = second.get("summary").unwrap();
        assert_eq!(summary.get("simulations").and_then(Json::as_u64), Some(0));
        assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(5));
        // Point rows are byte-identical modulo the served marker (the
        // summary's simulations/cache_hits legitimately differ per run).
        let strip = |v: &Json| {
            v.get("points")
                .unwrap()
                .to_string()
                .replace("\"served\":\"miss\"", "")
                .replace("\"served\":\"hit\"", "")
        };
        assert_eq!(strip(&first), strip(&second));

        // Sweep metrics land in the engine registry.
        let registry = engine.registry();
        assert_eq!(
            registry.counter_value(telemetry_names::POINTS, &[]),
            Some(10)
        );
        assert_eq!(
            registry.counter_value(telemetry_names::SIMULATIONS, &[]),
            Some(5)
        );
        assert_eq!(
            registry.counter_value(telemetry_names::CACHE_HITS, &[]),
            Some(5)
        );
        engine.shutdown();
    }

    #[test]
    fn sweep_points_match_simulate_responses() {
        // A sweep point and an equivalent /simulate job share one cache
        // entry: the job arriving second must be a hit, not a fresh run.
        let engine = Engine::new(2, 64);
        run_sweep(&engine, &plan_json("")).unwrap();
        let sims_after_sweep = engine.stats().simulations.get();

        let mut job = crate::job::SimJob::builtin("TF1");
        job.config = vec![
            ("IfmapSramSz".into(), "64".into()),
            ("FilterSramSz".into(), "64".into()),
            ("OfmapSramSz".into(), "32".into()),
            ("ArrayHeight".into(), "32".into()),
            ("ArrayWidth".into(), "32".into()),
        ];
        let (_, served) = engine.run(&job).unwrap();
        assert_eq!(served, Served::Cache);
        assert_eq!(engine.stats().simulations.get(), sims_after_sweep);
        engine.shutdown();
    }

    #[test]
    fn groups_carry_best_and_sweet_spot() {
        let engine = Engine::new(4, 64);
        let body = plan_json("");
        let response = run_sweep(&engine, &body).unwrap();
        let groups = response
            .get("summary")
            .and_then(|s| s.get("groups"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(groups.len(), 1);
        let group = &groups[0];
        assert_eq!(group.get("workload").and_then(Json::as_str), Some("TF1"));
        assert!(group.get("best").unwrap().get("grid").is_some());
        assert!(group.get("sweet_spot").unwrap().get("partitions").is_some());
        engine.shutdown();
    }
}
