//! Entry points for the `scale-sim serve` and `scale-sim batch`
//! subcommands. The binary crate stays a thin dispatcher; all service
//! logic lives here.

use std::fs;
use std::time::Duration;

use crate::batch::{parse_manifest, run_batch_with_retry, RetryPolicy};
use crate::engine::{Engine, EngineOptions, DEFAULT_QUEUE_DEPTH};
use crate::http::{Server, ServerOptions};
use crate::signals;

/// Default number of simulator workers: one per available core.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn take_value<'a, I: Iterator<Item = &'a String>>(
    it: &mut I,
    name: &str,
) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{name} requires a value"))
}

/// `scale-sim serve`: run the HTTP simulation service until `SIGINT` /
/// `SIGTERM`, then drain gracefully.
///
/// Flags: `--port <P>` (default 7878), `--host <ADDR>` (default 127.0.0.1),
/// `--workers <N>` (default: one per core), `--cache <N>` results
/// (default 256), `--queue-depth <N>` pending jobs before shedding with
/// 503 (default 256), `--max-connections <N>` concurrent connections
/// (default 256), `--deadline-ms <MS>` default per-request deadline
/// (default 120000; 0 disables), `--grace-ms <MS>` shutdown drain budget
/// (default 10000).
pub fn run_serve(argv: &[String]) -> Result<(), String> {
    let mut port: u16 = 7878;
    let mut host = String::from("127.0.0.1");
    let mut workers = default_workers();
    let mut cache = 256usize;
    let mut queue_depth = DEFAULT_QUEUE_DEPTH;
    let mut max_connections = 256usize;
    let mut deadline_ms: u64 = 120_000;
    let mut grace_ms: u64 = 10_000;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" | "--port" => {
                let text = take_value(&mut it, "--port")?;
                port = text.parse().map_err(|_| format!("bad port `{text}`"))?;
            }
            "--host" => host = take_value(&mut it, "--host")?,
            "--workers" => {
                let text = take_value(&mut it, "--workers")?;
                workers = parse_nonzero(&text, "--workers")?;
            }
            "--cache" => {
                let text = take_value(&mut it, "--cache")?;
                cache = parse_nonzero(&text, "--cache")?;
            }
            "--queue-depth" => {
                let text = take_value(&mut it, "--queue-depth")?;
                queue_depth = parse_nonzero(&text, "--queue-depth")?;
            }
            "--max-connections" => {
                let text = take_value(&mut it, "--max-connections")?;
                max_connections = parse_nonzero(&text, "--max-connections")?;
            }
            "--deadline-ms" => {
                let text = take_value(&mut it, "--deadline-ms")?;
                deadline_ms = text
                    .parse()
                    .map_err(|_| format!("bad value for --deadline-ms: `{text}`"))?;
            }
            "--grace-ms" => {
                let text = take_value(&mut it, "--grace-ms")?;
                grace_ms = text
                    .parse()
                    .map_err(|_| format!("bad value for --grace-ms: `{text}`"))?;
            }
            other => return Err(format!("unknown serve argument `{other}`")),
        }
    }

    // The service keeps the trace ring live for its whole lifetime:
    // `GET /debug/trace` then works without any restart, and the ring is
    // bounded so always-on recording costs fixed memory.
    scalesim_telemetry::trace::install(scalesim_telemetry::trace::DEFAULT_CAPACITY);

    let engine = Engine::with_options(EngineOptions {
        workers,
        cache_capacity: cache,
        queue_depth,
    });
    let options = ServerOptions {
        max_connections,
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        ..ServerOptions::default()
    };
    let server = Server::bind_with(&format!("{host}:{port}"), engine, options)
        .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;
    eprintln!(
        "scale-sim serve: listening on http://{} ({workers} workers, {cache}-entry cache, \
         queue depth {queue_depth}, {max_connections} max connections)",
        server.local_addr()
    );
    eprintln!(
        "routes: POST /simulate, POST /sweep, POST /explore, GET /stats, GET /metrics, \
         GET /healthz, GET /debug/jobs, GET /debug/trace"
    );
    eprintln!("logging: set SCALESIM_LOG=info (or debug,json) for access logs");

    signals::install();
    let handle = server.spawn();
    while !signals::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("scale-sim serve: shutdown signal received, draining (grace {grace_ms} ms)");
    handle.engine().dump_flight_recorder("drain");
    if handle.drain(Duration::from_millis(grace_ms)) {
        eprintln!("scale-sim serve: drained cleanly, exiting");
        Ok(())
    } else {
        Err(format!(
            "drain grace period of {grace_ms} ms expired with work still in flight"
        ))
    }
}

/// `scale-sim batch`: run a manifest of jobs concurrently and emit one
/// combined REPORT CSV plus a cache summary.
///
/// Flags: `--manifest <FILE>` (required), `--jobs <N>` concurrent jobs
/// (default: one per core), `--cache <N>` results (default: manifest
/// length), `--output <FILE>` for the CSV (default: stdout),
/// `--retries <N>` retry attempts for jobs shed by an overloaded engine,
/// with exponential backoff + jitter honoring the retry hint (default 3).
pub fn run_batch_cli(argv: &[String]) -> Result<(), String> {
    let mut manifest_path = None;
    let mut jobs_n = default_workers();
    let mut cache = None;
    let mut output = None;
    let mut retries: u32 = 3;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" | "--manifest" => manifest_path = Some(take_value(&mut it, "--manifest")?),
            "-j" | "--jobs" => {
                let text = take_value(&mut it, "--jobs")?;
                jobs_n = parse_nonzero(&text, "--jobs")?;
            }
            "--cache" => {
                let text = take_value(&mut it, "--cache")?;
                cache = Some(parse_nonzero(&text, "--cache")?);
            }
            "-o" | "--output" => output = Some(take_value(&mut it, "--output")?),
            "--retries" => {
                let text = take_value(&mut it, "--retries")?;
                retries = text
                    .parse()
                    .map_err(|_| format!("bad value for --retries: `{text}`"))?;
            }
            other => return Err(format!("unknown batch argument `{other}`")),
        }
    }
    let manifest_path = manifest_path.ok_or("batch requires --manifest <FILE>")?;
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read manifest {manifest_path}: {e}"))?;
    let jobs = parse_manifest(&text).map_err(|e| e.to_string())?;
    let cache = cache.unwrap_or_else(|| jobs.len().max(16));

    let engine = Engine::new(jobs_n, cache);
    let outcome = run_batch_with_retry(&engine, &jobs, jobs_n, RetryPolicy::with_retries(retries))
        .map_err(|e| e.to_string())?;
    engine.shutdown();

    let csv = outcome.to_csv();
    match &output {
        Some(path) => {
            fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{csv}"),
    }
    eprintln!("{}", outcome.summary());
    Ok(())
}

fn parse_nonzero(text: &str, flag: &str) -> Result<usize, String> {
    let n: usize = text
        .parse()
        .map_err(|_| format!("bad value for {flag}: `{text}`"))?;
    if n == 0 {
        return Err(format!("{flag} must be nonzero"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run_serve(&argv(&["--port", "notaport"])).is_err());
        assert!(run_serve(&argv(&["--workers", "0"])).is_err());
        assert!(run_serve(&argv(&["--frobnicate"])).is_err());
        assert!(run_serve(&argv(&["--queue-depth", "0"])).is_err());
        assert!(run_serve(&argv(&["--max-connections", "0"])).is_err());
        assert!(run_serve(&argv(&["--deadline-ms", "soon"])).is_err());
        assert!(run_serve(&argv(&["--grace-ms", "-1"])).is_err());
    }

    #[test]
    fn batch_requires_manifest() {
        let err = run_batch_cli(&argv(&["--jobs", "2"])).unwrap_err();
        assert!(err.contains("--manifest"));
        assert!(run_batch_cli(&argv(&["--manifest", "/no/such/file"])).is_err());
        assert!(run_batch_cli(&argv(&["--jobs", "0"])).is_err());
        assert!(run_batch_cli(&argv(&["--retries", "many"])).is_err());
    }

    #[test]
    fn batch_runs_a_manifest_end_to_end() {
        let dir = std::env::temp_dir().join("scalesim-batch-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("manifest.txt");
        let out = dir.join("report.csv");
        fs::write(
            &manifest,
            "# two identical tiny jobs\n\
             {\"topology_csv\": \"L1,8,8,3,3,4,8,1\", \"config\": {\"ArrayHeight\": 8, \"ArrayWidth\": 8}}\n\
             {\"topology_csv\": \"L1,8,8,3,3,4,8,1\", \"config\": {\"ArrayWidth\": 8, \"ArrayHeight\": 8}}\n",
        )
        .unwrap();
        run_batch_cli(&argv(&[
            "--manifest",
            manifest.to_str().unwrap(),
            "--jobs",
            "2",
            "--output",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let csv = fs::read_to_string(&out).unwrap();
        assert_eq!(csv.lines().count(), 3, "header + one row per job");
        fs::remove_dir_all(&dir).ok();
    }
}
