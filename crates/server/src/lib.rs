//! `scalesim-server` — a concurrent simulation service over the
//! `scale-sim-rs` simulator.
//!
//! Design-space exploration (the paper's Sections IV–V) re-runs the same
//! layer/configuration pairs constantly: sweeping partition grids over
//! ResNet-50 revisits identical monolithic baselines, and several users
//! sweeping together duplicate each other's work. This crate turns the
//! simulator into a shared service that exploits that redundancy:
//!
//! * **Job model** ([`job`]) — a [`SimJob`] names a workload (built-in
//!   network or inline topology CSV), config overrides, partition grid,
//!   dataflow and bandwidth. Normalization routes every field through the
//!   simulator's canonical serializers, so equivalent requests — reordered
//!   config keys, `ws` vs `weight_stationary`, reformatted CSV — collapse
//!   to one content-addressed [`JobKey`].
//! * **Engine** ([`engine`]) — a worker pool with *single-flight*
//!   deduplication (concurrent identical jobs run one simulation; the rest
//!   join it) in front of a sharded LRU result cache ([`cache`]).
//! * **Front ends** — an HTTP/1.1 service ([`http`]; `POST /simulate`,
//!   `POST /sweep`, `GET /stats`, `GET /metrics`, `GET /healthz`) and a
//!   manifest-driven batch runner ([`batch`]) that emits one combined
//!   REPORT CSV. Both are wired to the `scale-sim` binary's `serve` and
//!   `batch` subcommands via [`cli`].
//! * **Sweeps** ([`sweep`]) — `POST /sweep` expands a design-space plan
//!   (the same plan model as `scalesim::sweep`) and runs every point
//!   through the engine, sharing its cache and single-flight table with
//!   ordinary `/simulate` traffic.
//! * **Exploration** ([`explore`]) — `POST /explore` takes the same plan
//!   plus `keep_within` / `budget` knobs and runs the analytical-guided
//!   pipeline of [`scalesim::ExploreEngine`]: predict every candidate with
//!   the lower-bound runtime model, prune to the analytical Pareto band,
//!   simulate only the survivors.
//! * **Telemetry** — every service counter is a `scalesim-telemetry`
//!   metric: the [`Stats`] snapshot served at `/stats` and the Prometheus
//!   exposition at `/metrics` read the *same* counters, so the two views
//!   can never drift. Queue wait, simulation wall time and dedup fan-in
//!   are histograms; cache occupancy and evictions come from the LRU
//!   itself. Structured logs (access lines, job failures) are gated by the
//!   `SCALESIM_LOG` environment variable.
//! * **Overload & shutdown policy** — the engine queue is bounded
//!   ([`EngineOptions::queue_depth`]): jobs that would overflow it are
//!   shed with [`JobError::Overloaded`] (HTTP 503 + `Retry-After`), never
//!   queued without limit. Requests carry deadlines (the
//!   `X-Scalesim-Deadline-Ms` header or
//!   [`http::ServerOptions::default_deadline`]; HTTP 504 on expiry, with
//!   the in-flight result still cached for the next caller). `scale-sim
//!   serve` installs `SIGINT`/`SIGTERM` handlers ([`signals`]) and drains
//!   gracefully: `/healthz` flips to `draining`, new jobs shed with
//!   [`JobError::ShuttingDown`], in-flight work gets a bounded grace
//!   period. The batch runner retries shed jobs with exponential backoff +
//!   deterministic jitter ([`RetryPolicy`]), and the engine has a
//!   test-only fault-injection hook ([`FaultPlan`]) so every failure path
//!   is exercised without real overload.
//!
//! Everything is built on `std` networking and threads plus a hand-rolled
//! JSON module ([`json`]) — matching the repo-wide policy of no heavyweight
//! external dependencies.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod cli;
pub mod engine;
pub mod explore;
pub mod http;
pub mod job;
pub mod json;
pub mod signals;
pub mod sweep;

pub use batch::{parse_manifest, run_batch, run_batch_with_retry, BatchOutcome, RetryPolicy};
pub use cache::ShardedLru;
pub use engine::{
    Engine, EngineOptions, FaultPlan, JobContext, JobRecord, Served, SimResult, Stats,
    FLIGHT_RECORDER_CAPACITY,
};
pub use http::{Server, ServerHandle, ServerOptions};
pub use job::{JobError, JobKey, NormalizedJob, SimJob, Workload};
pub use json::Json;
