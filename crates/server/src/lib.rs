//! `scalesim-server` — a concurrent simulation service over the
//! `scale-sim-rs` simulator.
//!
//! Design-space exploration (the paper's Sections IV–V) re-runs the same
//! layer/configuration pairs constantly: sweeping partition grids over
//! ResNet-50 revisits identical monolithic baselines, and several users
//! sweeping together duplicate each other's work. This crate turns the
//! simulator into a shared service that exploits that redundancy:
//!
//! * **Job model** ([`job`]) — a [`SimJob`] names a workload (built-in
//!   network or inline topology CSV), config overrides, partition grid,
//!   dataflow and bandwidth. Normalization routes every field through the
//!   simulator's canonical serializers, so equivalent requests — reordered
//!   config keys, `ws` vs `weight_stationary`, reformatted CSV — collapse
//!   to one content-addressed [`JobKey`].
//! * **Engine** ([`engine`]) — a worker pool with *single-flight*
//!   deduplication (concurrent identical jobs run one simulation; the rest
//!   join it) in front of a sharded LRU result cache ([`cache`]).
//! * **Front ends** — an HTTP/1.1 service ([`http`]; `POST /simulate`,
//!   `POST /sweep`, `GET /stats`, `GET /metrics`, `GET /healthz`) and a
//!   manifest-driven batch runner ([`batch`]) that emits one combined
//!   REPORT CSV. Both are wired to the `scale-sim` binary's `serve` and
//!   `batch` subcommands via [`cli`].
//! * **Sweeps** ([`sweep`]) — `POST /sweep` expands a design-space plan
//!   (the same plan model as `scalesim::sweep`) and runs every point
//!   through the engine, sharing its cache and single-flight table with
//!   ordinary `/simulate` traffic.
//! * **Telemetry** — every service counter is a `scalesim-telemetry`
//!   metric: the [`Stats`] snapshot served at `/stats` and the Prometheus
//!   exposition at `/metrics` read the *same* counters, so the two views
//!   can never drift. Queue wait, simulation wall time and dedup fan-in
//!   are histograms; cache occupancy and evictions come from the LRU
//!   itself. Structured logs (access lines, job failures) are gated by the
//!   `SCALESIM_LOG` environment variable.
//!
//! Everything is built on `std` networking and threads plus a hand-rolled
//! JSON module ([`json`]) — matching the repo-wide policy of no heavyweight
//! external dependencies.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod cli;
pub mod engine;
pub mod http;
pub mod job;
pub mod json;
pub mod sweep;

pub use batch::{parse_manifest, run_batch, BatchOutcome};
pub use cache::ShardedLru;
pub use engine::{Engine, Served, SimResult, Stats};
pub use http::{Server, ServerHandle};
pub use job::{JobError, JobKey, NormalizedJob, SimJob, Workload};
pub use json::Json;
