//! A minimal HTTP/1.1 front end over the [`Engine`], built directly on
//! `std::net` — no async runtime, thread per connection.
//!
//! Routes:
//!
//! * `POST /simulate` — body is a [`SimJob`] JSON
//!   object; responds with the result JSON. The `X-Scalesim-Cache` header
//!   carries `miss` / `hit` / `joined`; the *body* is identical for equal
//!   jobs regardless of how they were served.
//! * `POST /sweep` — body is a design-space sweep plan (see
//!   [`crate::sweep`]); every expanded point runs through the same engine
//!   cache as `/simulate`, and the response lists points in plan order.
//! * `POST /explore` — body is a sweep plan plus `keep_within` / `budget`
//!   knobs (see [`crate::explore`]); analytical pruning picks the
//!   candidates worth simulating and the response carries the measured
//!   Pareto frontier per workload.
//! * `GET /stats` — service counters (legacy JSON view of the metrics).
//! * `GET /metrics` — Prometheus text exposition: the engine's registry
//!   (request outcomes, queue wait, cache occupancy/evictions, dedup
//!   fan-in, HTTP latency) plus the process-global simulator registry
//!   (per-layer cycles, phase timings, span totals).
//! * `GET /healthz` — liveness probe with crate version, uptime and the
//!   serving state (`ok` while serving, `draining` once shutdown has
//!   begun), so fleet probes can detect stale deploys and pull a draining
//!   instance out of rotation; answers immediately even while long
//!   simulations are running (handled on its own connection thread, never
//!   queued behind the worker pool).
//! * `GET /debug/jobs` — the engine's flight recorder: the last
//!   [`crate::engine::FLIGHT_RECORDER_CAPACITY`] job records (key, route,
//!   request id, outcome, queue wait, simulation time, worker), oldest
//!   first, as JSON.
//! * `GET /debug/trace` — the process trace ring as Chrome trace-event
//!   JSON (empty `traceEvents` unless tracing was installed).
//!
//! # Overload & shutdown semantics
//!
//! Every request either completes, is shed with a typed error, or times
//! out — never blocks forever:
//!
//! * **Admission control** — the engine's leader queue is bounded; a job
//!   that would overflow it is shed with HTTP 503 plus a `Retry-After`
//!   header (seconds, derived from recent simulation times).
//! * **Deadlines** — `/simulate` honors an `X-Scalesim-Deadline-Ms`
//!   request header (capped wait, HTTP 504 on expiry) and applies
//!   [`ServerOptions::default_deadline`] when the client sends none. The
//!   in-flight simulation keeps running on expiry and its result still
//!   lands in the cache for the next request.
//! * **Connection limiting** — a counting semaphore bounds concurrent
//!   connection threads ([`ServerOptions::max_connections`]); excess
//!   connections wait in the TCP accept backlog instead of spawning
//!   unbounded threads. Accept errors (e.g. fd exhaustion) back off
//!   briefly instead of spinning, counted in
//!   `scalesim_http_accept_errors_total`.
//! * **Graceful drain** — [`ServerHandle::drain`] flips `/healthz` to
//!   `draining`, stops the engine accepting new jobs (they shed with 503),
//!   waits a bounded grace period for in-flight work and connections to
//!   finish, then stops the accept loop.
//!
//! Every response carries an `X-Scalesim-Request-Id` header — the client's
//! own if it sent one, a generated `pid-sequence` id otherwise — and every
//! request (including malformed ones rejected before routing) emits one
//! `http.request` access-log event and one latency-histogram observation,
//! so attack traffic is as visible as well-formed traffic. Request ids
//! live in headers and logs only, never in bodies: responses for equal
//! jobs stay byte-identical regardless of telemetry.
//!
//! The subset implemented is deliberately small: one request per
//! connection (`Connection: close`), `Content-Length` bodies only, 16 KiB
//! header cap, 4 MiB body cap, 5 s socket timeouts. Both caps are
//! enforced with [`Read::take`] on the raw stream, so a peer that never
//! sends a line terminator cannot buffer more than the cap into memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use scalesim_telemetry::{log, Counter, Gauge, Histogram};

use crate::engine::Engine;
use crate::job::{JobError, SimJob};
use crate::json::Json;

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Tunables for a [`Server`]. `..Default::default()` keeps the historical
/// behavior everywhere a knob is not set explicitly.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Maximum concurrent connection threads; excess connections wait in
    /// the TCP accept backlog (minimum 1).
    pub max_connections: usize,
    /// Deadline applied to `/simulate` requests that carry no
    /// `X-Scalesim-Deadline-Ms` header; `None` waits indefinitely.
    pub default_deadline: Option<Duration>,
    /// Per-socket read/write timeout.
    pub socket_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 256,
            default_deadline: Some(Duration::from_secs(120)),
            socket_timeout: Duration::from_secs(5),
        }
    }
}

/// A counting semaphore bounding concurrent connection threads. Plain
/// Mutex + Condvar: the accept loop blocks in `acquire` when saturated,
/// which pushes backpressure into the TCP accept backlog.
struct Semaphore {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            free: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is free; returns `false` if `stop` was set
    /// while waiting (polled so a stopped server can't wedge on a
    /// saturated limiter).
    fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut free = self.free.lock().unwrap();
        loop {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            if *free > 0 {
                *free -= 1;
                return true;
            }
            (free, _) = self
                .cv
                .wait_timeout(free, Duration::from_millis(50))
                .unwrap();
        }
    }

    fn release(&self) {
        *self.free.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// Shared per-server state handed to every connection thread.
struct Context {
    engine: Engine,
    started: Instant,
    request_seq: AtomicU64,
    options: ServerOptions,
    /// Set once drain begins: `/healthz` reports `draining`.
    draining: AtomicBool,
    conn_limiter: Semaphore,
    connections: Arc<Gauge>,
    accept_errors: Arc<Counter>,
}

/// A bound, not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    context: Arc<Context>,
}

/// Handle to a serving [`Server`]; stops it hard via [`ServerHandle::stop`]
/// or gracefully via [`ServerHandle::drain`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    context: Arc<Context>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default [`ServerOptions`].
    pub fn bind(addr: &str, engine: Engine) -> std::io::Result<Server> {
        Server::bind_with(addr, engine, ServerOptions::default())
    }

    /// Binds with explicit [`ServerOptions`].
    pub fn bind_with(
        addr: &str,
        engine: Engine,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let registry = engine.registry();
        let connections = registry.gauge(
            "scalesim_http_connections_active",
            "HTTP connections currently being served.",
        );
        let accept_errors = registry.counter(
            "scalesim_http_accept_errors_total",
            "Accept-loop errors (e.g. fd exhaustion); each backs off briefly.",
        );
        Ok(Server {
            listener,
            context: Arc::new(Context {
                engine,
                started: Instant::now(),
                request_seq: AtomicU64::new(0),
                conn_limiter: Semaphore::new(options.max_connections),
                options,
                draining: AtomicBool::new(false),
                connections,
                accept_errors,
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Serves until the returned handle is stopped or drained. The accept
    /// loop runs on its own thread; each connection gets a thread, bounded
    /// by the connection limiter.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let context = Arc::clone(&self.context);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("http-accept".into())
            .spawn(move || self.accept_loop(stop_flag))
            .expect("spawn http accept thread");
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            context,
        }
    }

    fn accept_loop(self, stop: Arc<AtomicBool>) {
        // Accept-error backoff: under fd exhaustion (EMFILE) `accept`
        // fails continuously; sleeping between retries keeps the thread
        // from spinning at 100% CPU while the condition lasts.
        let mut backoff = Duration::from_millis(1);
        loop {
            if !self.context.conn_limiter.acquire(&stop) {
                return;
            }
            match self.listener.accept() {
                _ if stop.load(Ordering::SeqCst) => return,
                Ok((stream, _)) => {
                    backoff = Duration::from_millis(1);
                    let context = Arc::clone(&self.context);
                    context.connections.add(1);
                    // Permit and gauge travel with the connection thread.
                    let spawned =
                        std::thread::Builder::new()
                            .name("http-conn".into())
                            .spawn(move || {
                                let _ = handle_connection(stream, &context);
                                context.connections.sub(1);
                                context.conn_limiter.release();
                            });
                    if spawned.is_err() {
                        self.context.connections.sub(1);
                        self.context.conn_limiter.release();
                    }
                }
                Err(e) => {
                    self.context.conn_limiter.release();
                    self.context.accept_errors.inc();
                    log::debug("http.accept_error", &[("error", &e.to_string())]);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
            }
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts (e.g. to dump its flight recorder
    /// before a drain).
    pub fn engine(&self) -> &Engine {
        &self.context.engine
    }

    /// True once [`ServerHandle::drain`] has begun.
    pub fn is_draining(&self) -> bool {
        self.context.draining.load(Ordering::SeqCst)
    }

    /// Gracefully drains the server: `/healthz` flips to `draining`, the
    /// engine sheds new jobs with [`JobError::ShuttingDown`] (HTTP 503)
    /// while already-queued work completes, and the accept loop keeps
    /// answering probes until in-flight work and connections finish or
    /// `grace` expires. Returns `true` if everything drained within the
    /// grace period.
    pub fn drain(mut self, grace: Duration) -> bool {
        self.context.draining.store(true, Ordering::SeqCst);
        self.context.engine.shutdown();
        let deadline = Instant::now() + grace;
        let drained = loop {
            if self.context.engine.is_idle() && self.context.connections.get() <= 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        self.stop_accepting();
        drained
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish on their own threads. (Hard stop: does not wait
    /// for them — use [`ServerHandle::drain`] for a graceful exit.)
    pub fn stop(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// One routed response: status, extra headers, content type, body.
struct Routed {
    status: u16,
    headers: Vec<(&'static str, String)>,
    content_type: &'static str,
    body: String,
}

impl Routed {
    fn json(status: u16, body: String) -> Routed {
        Routed {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body,
        }
    }
}

/// One parsed request off the wire.
struct Request {
    method: String,
    path: String,
    body: String,
    request_id: Option<String>,
    /// Client deadline from `X-Scalesim-Deadline-Ms`, if sent.
    deadline_ms: Option<u64>,
}

fn handle_connection(stream: TcpStream, context: &Context) -> std::io::Result<()> {
    stream.set_read_timeout(Some(context.options.socket_timeout))?;
    stream.set_write_timeout(Some(context.options.socket_timeout))?;
    // `take` bounds what a peer can make us buffer: a request line or
    // header sent without `\n` hits the cap as a clean EOF instead of
    // growing a String without limit. The limit is raised to the body cap
    // once headers are in.
    let mut reader = BufReader::new(stream.try_clone()?.take(MAX_HEADER_BYTES as u64));
    let received = Instant::now();

    // Malformed requests flow through the same response/telemetry tail as
    // routed ones — id header, latency histogram, access log — so attack
    // traffic is visible in `/metrics` and logs.
    let (method, path, request_id, routed) = match read_request(&mut reader) {
        Ok(req) => {
            let request_id = req.request_id.clone().unwrap_or_else(|| mint_id(context));
            let deadline = req
                .deadline_ms
                .map(Duration::from_millis)
                .or(context.options.default_deadline)
                .map(|budget| received + budget);
            let routed = route(context, &req, deadline, &request_id);
            (req.method, req.path, request_id, routed)
        }
        Err(msg) => (
            "-".to_owned(),
            "-".to_owned(),
            mint_id(context),
            Routed::json(400, error_body(&msg).to_string()),
        ),
    };

    let mut headers: Vec<(&str, &str)> = vec![("X-Scalesim-Request-Id", &request_id)];
    headers.extend(routed.headers.iter().map(|(k, v)| (*k, v.as_str())));

    // Observe latency *before* writing the response: once the client has
    // the body it may immediately scrape `/metrics` and must see this
    // request in the histogram. (The wire time is not in `elapsed`, but
    // the histogram's contract is request handling, not socket flush.)
    let elapsed = received.elapsed();
    request_latency(context, &path).observe_duration(elapsed);

    let result = respond(
        &stream,
        routed.status,
        &headers,
        routed.content_type,
        &routed.body,
    );
    log::info(
        "http.request",
        &[
            ("id", &request_id),
            ("method", &method),
            ("path", &path),
            ("status", &routed.status.to_string()),
            ("micros", &(elapsed.as_micros() as u64).to_string()),
        ],
    );
    result
}

fn mint_id(context: &Context) -> String {
    format!(
        "{:x}-{}",
        std::process::id(),
        context.request_seq.fetch_add(1, Ordering::Relaxed)
    )
}

/// The per-route request latency histogram, labeled with a bounded route
/// set (unknown paths — including unparseable requests — collapse into
/// `other` to cap metric cardinality).
fn request_latency(context: &Context, path: &str) -> Arc<Histogram> {
    let route = match path {
        "/simulate" => "simulate",
        "/sweep" => "sweep",
        "/explore" => "explore",
        "/stats" => "stats",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/debug/jobs" => "debug_jobs",
        "/debug/trace" => "debug_trace",
        _ => "other",
    };
    context.engine.registry().histogram_with(
        "scalesim_http_request_seconds",
        "HTTP request latency from first byte read to response write.",
        &Histogram::duration_buckets(),
        &[("route", route)],
    )
}

fn route(context: &Context, req: &Request, deadline: Option<Instant>, request_id: &str) -> Routed {
    let engine = &context.engine;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let draining = context.draining.load(Ordering::SeqCst);
            Routed::json(
                200,
                Json::obj(vec![
                    (
                        "status",
                        Json::str(if draining { "draining" } else { "ok" }),
                    ),
                    ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                    (
                        "uptime_seconds",
                        Json::Int(context.started.elapsed().as_secs().into()),
                    ),
                ])
                .to_string(),
            )
        }
        ("GET", "/stats") => Routed::json(200, engine.stats().to_json().to_string()),
        ("GET", "/metrics") => {
            // Engine-scoped metrics first, then the process-global
            // simulator registry (per-layer cycles, phases, spans).
            let mut text = engine.registry().render();
            text.push_str(&scalesim_telemetry::global().render());
            Routed {
                status: 200,
                headers: Vec::new(),
                content_type: "text/plain; version=0.0.4",
                body: text,
            }
        }
        ("POST", "/simulate") => {
            let job = Json::parse(&req.body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| SimJob::from_json(&json));
            match job {
                Err(e) => error_response(&e),
                Ok(job) => match engine.run_with_context(
                    &job,
                    deadline,
                    crate::engine::JobContext {
                        route: "/simulate",
                        request_id,
                    },
                ) {
                    Ok((result, served)) => Routed {
                        status: 200,
                        headers: vec![("X-Scalesim-Cache", served.tag().to_owned())],
                        content_type: "application/json",
                        body: result.to_json().to_string(),
                    },
                    Err(e) => error_response(&e),
                },
            }
        }
        ("POST", "/sweep") => {
            let plan = Json::parse(&req.body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| crate::sweep::run_sweep(engine, &json));
            match plan {
                Ok(response) => Routed::json(200, response.to_string()),
                Err(e) => error_response(&e),
            }
        }
        ("POST", "/explore") => {
            let outcome = Json::parse(&req.body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| crate::explore::run_explore(engine, &json));
            match outcome {
                Ok(response) => Routed::json(200, response.to_string()),
                Err(e) => error_response(&e),
            }
        }
        ("GET", "/debug/jobs") => {
            let records: Vec<Json> = engine
                .recent_jobs()
                .iter()
                .map(crate::engine::JobRecord::to_json)
                .collect();
            Routed::json(
                200,
                Json::obj(vec![
                    (
                        "capacity",
                        Json::Int((crate::engine::FLIGHT_RECORDER_CAPACITY as u64).into()),
                    ),
                    ("jobs", Json::Arr(records)),
                ])
                .to_string(),
            )
        }
        ("GET", "/debug/trace") => {
            let mut buf: Vec<u8> = Vec::new();
            match scalesim_telemetry::trace::export_chrome_json(&mut buf) {
                Ok(()) => Routed::json(
                    200,
                    String::from_utf8(buf).unwrap_or_else(|e| {
                        error_body(&format!("trace export was not UTF-8: {e}")).to_string()
                    }),
                ),
                Err(e) => Routed::json(
                    500,
                    error_body(&format!("trace export failed: {e}")).to_string(),
                ),
            }
        }
        ("GET" | "POST", _) => Routed::json(404, error_body("no such route").to_string()),
        _ => Routed::json(405, error_body("method not allowed").to_string()),
    }
}

/// Maps a [`JobError`] to its HTTP response. Shedding outcomes carry a
/// `Retry-After` header (whole seconds, rounded up) so well-behaved
/// clients back off instead of hammering an overloaded or draining server.
fn error_response(e: &JobError) -> Routed {
    let body = error_body(&e.to_string()).to_string();
    match e {
        JobError::BadRequest(_) => Routed::json(400, body),
        JobError::Internal(_) => Routed::json(500, body),
        JobError::Overloaded { retry_after_ms } => Routed {
            status: 503,
            headers: vec![(
                "Retry-After",
                retry_after_ms.div_ceil(1000).max(1).to_string(),
            )],
            content_type: "application/json",
            body,
        },
        JobError::ShuttingDown => Routed {
            status: 503,
            headers: vec![("Retry-After", "1".to_owned())],
            content_type: "application/json",
            body,
        },
        JobError::DeadlineExpired => Routed::json(504, body),
    }
}

fn error_body(msg: &str) -> Json {
    Json::obj(vec![("error", Json::str(msg))])
}

/// Reads one header line into `line`. Errors if the header cap was
/// exhausted before a line terminator arrived — the `take` limit turns an
/// unbounded header into a clean EOF instead of unbounded buffering.
fn read_header_line(
    reader: &mut BufReader<std::io::Take<TcpStream>>,
    line: &mut String,
    what: &str,
) -> Result<(), String> {
    reader
        .read_line(line)
        .map_err(|e| format!("read {what}: {e}"))?;
    if !line.ends_with('\n') && reader.get_ref().limit() == 0 {
        return Err(format!("headers too large (cap {MAX_HEADER_BYTES} bytes)"));
    }
    Ok(())
}

/// Reads one request off the wire, with both the header block and the body
/// bounded by `Read::take` limits.
fn read_request(reader: &mut BufReader<std::io::Take<TcpStream>>) -> Result<Request, String> {
    let mut request_line = String::new();
    read_header_line(reader, &mut request_line, "request line")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line missing path")?.to_owned();
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length: usize = 0;
    let mut request_id = None;
    let mut deadline_ms = None;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        read_header_line(reader, &mut line, "header")?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            } else if name.eq_ignore_ascii_case("x-scalesim-request-id") {
                request_id = Some(value.trim().to_owned());
            } else if name.eq_ignore_ascii_case("x-scalesim-deadline-ms") {
                deadline_ms = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad X-Scalesim-Deadline-Ms `{}`", value.trim()))?,
                );
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    // Headers are in; re-bound the raw stream for the body. Bytes the
    // BufReader already buffered were counted against the header limit.
    reader.get_mut().set_limit(MAX_BODY_BYTES as u64);
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request {
        method,
        path,
        body,
        request_id,
        deadline_ms,
    })
}

fn respond(
    mut stream: &TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(&format!("{name}: {value}\r\n"));
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A tiny blocking HTTP client for tests and the batch tool's self-checks.
pub mod client {
    use super::*;

    /// A parsed HTTP response.
    #[derive(Debug, Clone)]
    pub struct Response {
        /// Status code.
        pub status: u16,
        /// Response headers, lowercased names.
        pub headers: Vec<(String, String)>,
        /// Body text.
        pub body: String,
    }

    impl Response {
        /// Looks up a header value by case-insensitive name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Issues one request against `addr` and reads the full response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        request_with_headers(addr, method, path, body, &[])
    }

    /// Like [`request`], but sends extra request headers (e.g. a client
    /// `X-Scalesim-Request-Id` to verify the echo path, or an
    /// `X-Scalesim-Deadline-Ms` budget).
    pub fn request_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let body = body.unwrap_or("");
        let extra: String = headers
            .iter()
            .map(|(name, value)| format!("{name}: {value}\r\n"))
            .collect();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse::<usize>().ok();
                }
                headers.push((name, value));
            }
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8_lossy(&buf).into_owned()
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}
