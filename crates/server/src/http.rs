//! A minimal HTTP/1.1 front end over the [`Engine`], built directly on
//! `std::net` — no async runtime, thread per connection.
//!
//! Routes:
//!
//! * `POST /simulate` — body is a [`SimJob`](crate::job::SimJob) JSON
//!   object; responds with the result JSON. The `X-Scalesim-Cache` header
//!   carries `miss` / `hit` / `joined`; the *body* is identical for equal
//!   jobs regardless of how they were served.
//! * `GET /stats` — service counters.
//! * `GET /healthz` — liveness probe; answers immediately even while long
//!   simulations are running (handled on its own connection thread, never
//!   queued behind the worker pool).
//!
//! The subset implemented is deliberately small: one request per
//! connection (`Connection: close`), `Content-Length` bodies only, 16 KiB
//! header cap, 4 MiB body cap, 5 s socket timeouts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::job::{JobError, SimJob};
use crate::json::Json;

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound, not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
}

/// Handle to a serving [`Server`]; stops it on [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, engine: Engine) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, engine })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Serves until the returned handle is stopped. The accept loop runs on
    /// its own thread; each connection gets a thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("http-accept".into())
            .spawn(move || self.accept_loop(stop_flag))
            .expect("spawn http accept thread");
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// Serves on the calling thread until the process exits. Used by
    /// `scale-sim serve`.
    pub fn run(self) -> ! {
        self.accept_loop(Arc::new(AtomicBool::new(false)));
        unreachable!("accept loop only returns when stopped");
    }

    fn accept_loop(self, stop: Arc<AtomicBool>) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let engine = self.engine.clone();
            // Detached: a hung connection times out via socket deadlines.
            let _ = std::thread::Builder::new()
                .name("http-conn".into())
                .spawn(move || {
                    let _ = handle_connection(stream, &engine);
                });
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish on their own threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `incoming()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let (method, path, body) = match read_request(&mut reader) {
        Ok(req) => req,
        Err(msg) => return respond(&stream, 400, &[], &error_body(&msg).to_string()),
    };

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond(&stream, 200, &[], r#"{"status":"ok"}"#),
        ("GET", "/stats") => respond(&stream, 200, &[], &engine.stats().to_json().to_string()),
        ("POST", "/simulate") => {
            let job = Json::parse(&body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| SimJob::from_json(&json));
            match job {
                Err(e) => respond(&stream, 400, &[], &error_body(&e.to_string()).to_string()),
                Ok(job) => match engine.run(&job) {
                    Ok((result, served)) => {
                        let headers = [("X-Scalesim-Cache", served.tag())];
                        respond(&stream, 200, &headers, &result.to_json().to_string())
                    }
                    Err(JobError::BadRequest(msg)) => {
                        respond(&stream, 400, &[], &error_body(&msg).to_string())
                    }
                    Err(JobError::Internal(msg)) => {
                        respond(&stream, 500, &[], &error_body(&msg).to_string())
                    }
                },
            }
        }
        ("GET" | "POST", _) => respond(&stream, 404, &[], &error_body("no such route").to_string()),
        _ => respond(
            &stream,
            405,
            &[],
            &error_body("method not allowed").to_string(),
        ),
    }
}

fn error_body(msg: &str) -> Json {
    Json::obj(vec![("error", Json::str(msg))])
}

/// Reads one request: returns (method, path, body).
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), String> {
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line missing path")?.to_owned();
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length: usize = 0;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((method, path, body))
}

fn respond(
    mut stream: &TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(&format!("{name}: {value}\r\n"));
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A tiny blocking HTTP client for tests and the batch tool's self-checks.
pub mod client {
    use super::*;

    /// A parsed HTTP response.
    #[derive(Debug, Clone)]
    pub struct Response {
        /// Status code.
        pub status: u16,
        /// Response headers, lowercased names.
        pub headers: Vec<(String, String)>,
        /// Body text.
        pub body: String,
    }

    impl Response {
        /// Looks up a header value by case-insensitive name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Issues one request against `addr` and reads the full response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse::<usize>().ok();
                }
                headers.push((name, value));
            }
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8_lossy(&buf).into_owned()
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}
