//! A minimal HTTP/1.1 front end over the [`Engine`], built directly on
//! `std::net` — no async runtime, thread per connection.
//!
//! Routes:
//!
//! * `POST /simulate` — body is a [`SimJob`] JSON
//!   object; responds with the result JSON. The `X-Scalesim-Cache` header
//!   carries `miss` / `hit` / `joined`; the *body* is identical for equal
//!   jobs regardless of how they were served.
//! * `POST /sweep` — body is a design-space sweep plan (see
//!   [`crate::sweep`]); every expanded point runs through the same engine
//!   cache as `/simulate`, and the response lists points in plan order.
//! * `GET /stats` — service counters (legacy JSON view of the metrics).
//! * `GET /metrics` — Prometheus text exposition: the engine's registry
//!   (request outcomes, queue wait, cache occupancy/evictions, dedup
//!   fan-in, HTTP latency) plus the process-global simulator registry
//!   (per-layer cycles, phase timings, span totals).
//! * `GET /healthz` — liveness probe with crate version and uptime, so
//!   fleet probes can detect stale deploys; answers immediately even while
//!   long simulations are running (handled on its own connection thread,
//!   never queued behind the worker pool).
//!
//! Every response carries an `X-Scalesim-Request-Id` header — the client's
//! own if it sent one, a generated `pid-sequence` id otherwise — and every
//! request emits one `http.request` access-log event (level *info*, so
//! visible under `SCALESIM_LOG=info`). Request ids live in headers and
//! logs only, never in bodies: responses for equal jobs stay
//! byte-identical regardless of telemetry.
//!
//! The subset implemented is deliberately small: one request per
//! connection (`Connection: close`), `Content-Length` bodies only, 16 KiB
//! header cap, 4 MiB body cap, 5 s socket timeouts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use scalesim_telemetry::{log, Histogram};

use crate::engine::Engine;
use crate::job::{JobError, SimJob};
use crate::json::Json;

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Shared per-server state handed to every connection thread.
struct Context {
    engine: Engine,
    started: Instant,
    request_seq: AtomicU64,
}

/// A bound, not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    context: Arc<Context>,
}

/// Handle to a serving [`Server`]; stops it on [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, engine: Engine) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            context: Arc::new(Context {
                engine,
                started: Instant::now(),
                request_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Serves until the returned handle is stopped. The accept loop runs on
    /// its own thread; each connection gets a thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("http-accept".into())
            .spawn(move || self.accept_loop(stop_flag))
            .expect("spawn http accept thread");
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// Serves on the calling thread until the process exits. Used by
    /// `scale-sim serve`.
    pub fn run(self) -> ! {
        self.accept_loop(Arc::new(AtomicBool::new(false)));
        unreachable!("accept loop only returns when stopped");
    }

    fn accept_loop(self, stop: Arc<AtomicBool>) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let context = Arc::clone(&self.context);
            // Detached: a hung connection times out via socket deadlines.
            let _ = std::thread::Builder::new()
                .name("http-conn".into())
                .spawn(move || {
                    let _ = handle_connection(stream, &context);
                });
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. In-flight
    /// connections finish on their own threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `incoming()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// One routed response: status, extra headers, content type, body.
struct Routed {
    status: u16,
    headers: Vec<(&'static str, String)>,
    content_type: &'static str,
    body: String,
}

impl Routed {
    fn json(status: u16, body: String) -> Routed {
        Routed {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body,
        }
    }
}

fn handle_connection(stream: TcpStream, context: &Context) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let received = Instant::now();

    let (method, path, body, request_id) = match read_request(&mut reader) {
        Ok(req) => req,
        Err(msg) => {
            return respond(
                &stream,
                400,
                &[],
                "application/json",
                &error_body(&msg).to_string(),
            )
        }
    };
    // Echo the client's request id, or mint a traceable one.
    let request_id = request_id.unwrap_or_else(|| {
        format!(
            "{:x}-{}",
            std::process::id(),
            context.request_seq.fetch_add(1, Ordering::Relaxed)
        )
    });

    let routed = route(context, &method, &path, &body);
    let mut headers: Vec<(&str, &str)> = vec![("X-Scalesim-Request-Id", &request_id)];
    headers.extend(routed.headers.iter().map(|(k, v)| (*k, v.as_str())));
    let result = respond(
        &stream,
        routed.status,
        &headers,
        routed.content_type,
        &routed.body,
    );

    let elapsed = received.elapsed();
    request_latency(context, &path).observe_duration(elapsed);
    log::info(
        "http.request",
        &[
            ("id", &request_id),
            ("method", &method),
            ("path", &path),
            ("status", &routed.status.to_string()),
            ("micros", &(elapsed.as_micros() as u64).to_string()),
        ],
    );
    result
}

/// The per-route request latency histogram, labeled with a bounded route
/// set (unknown paths collapse into `other` to cap metric cardinality).
fn request_latency(context: &Context, path: &str) -> Arc<Histogram> {
    let route = match path {
        "/simulate" => "simulate",
        "/sweep" => "sweep",
        "/stats" => "stats",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        _ => "other",
    };
    context.engine.registry().histogram_with(
        "scalesim_http_request_seconds",
        "HTTP request latency from first byte read to response write.",
        &Histogram::duration_buckets(),
        &[("route", route)],
    )
}

fn route(context: &Context, method: &str, path: &str, body: &str) -> Routed {
    let engine = &context.engine;
    match (method, path) {
        ("GET", "/healthz") => Routed::json(
            200,
            Json::obj(vec![
                ("status", Json::str("ok")),
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                (
                    "uptime_seconds",
                    Json::Int(context.started.elapsed().as_secs().into()),
                ),
            ])
            .to_string(),
        ),
        ("GET", "/stats") => Routed::json(200, engine.stats().to_json().to_string()),
        ("GET", "/metrics") => {
            // Engine-scoped metrics first, then the process-global
            // simulator registry (per-layer cycles, phases, spans).
            let mut text = engine.registry().render();
            text.push_str(&scalesim_telemetry::global().render());
            Routed {
                status: 200,
                headers: Vec::new(),
                content_type: "text/plain; version=0.0.4",
                body: text,
            }
        }
        ("POST", "/simulate") => {
            let job = Json::parse(body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| SimJob::from_json(&json));
            match job {
                Err(e) => Routed::json(400, error_body(&e.to_string()).to_string()),
                Ok(job) => match engine.run(&job) {
                    Ok((result, served)) => Routed {
                        status: 200,
                        headers: vec![("X-Scalesim-Cache", served.tag().to_owned())],
                        content_type: "application/json",
                        body: result.to_json().to_string(),
                    },
                    Err(JobError::BadRequest(msg)) => {
                        Routed::json(400, error_body(&msg).to_string())
                    }
                    Err(JobError::Internal(msg)) => Routed::json(500, error_body(&msg).to_string()),
                },
            }
        }
        ("POST", "/sweep") => {
            let plan = Json::parse(body)
                .map_err(|e| JobError::bad_request(format!("invalid JSON: {e}")))
                .and_then(|json| crate::sweep::run_sweep(engine, &json));
            match plan {
                Ok(response) => Routed::json(200, response.to_string()),
                Err(JobError::BadRequest(msg)) => Routed::json(400, error_body(&msg).to_string()),
                Err(JobError::Internal(msg)) => Routed::json(500, error_body(&msg).to_string()),
            }
        }
        ("GET" | "POST", _) => Routed::json(404, error_body("no such route").to_string()),
        _ => Routed::json(405, error_body("method not allowed").to_string()),
    }
}

fn error_body(msg: &str) -> Json {
    Json::obj(vec![("error", Json::str(msg))])
}

/// Reads one request: returns (method, path, body, client request id).
fn read_request(
    reader: &mut BufReader<TcpStream>,
) -> Result<(String, String, String, Option<String>), String> {
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line missing path")?.to_owned();
    let version = parts.next().ok_or("request line missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length: usize = 0;
    let mut request_id = None;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            } else if name.eq_ignore_ascii_case("x-scalesim-request-id") {
                request_id = Some(value.trim().to_owned());
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((method, path, body, request_id))
}

fn respond(
    mut stream: &TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(&format!("{name}: {value}\r\n"));
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A tiny blocking HTTP client for tests and the batch tool's self-checks.
pub mod client {
    use super::*;

    /// A parsed HTTP response.
    #[derive(Debug, Clone)]
    pub struct Response {
        /// Status code.
        pub status: u16,
        /// Response headers, lowercased names.
        pub headers: Vec<(String, String)>,
        /// Body text.
        pub body: String,
    }

    impl Response {
        /// Looks up a header value by case-insensitive name.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Issues one request against `addr` and reads the full response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        request_with_headers(addr, method, path, body, &[])
    }

    /// Like [`request`], but sends extra request headers (e.g. a client
    /// `X-Scalesim-Request-Id` to verify the echo path).
    pub fn request_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
        let body = body.unwrap_or("");
        let extra: String = headers
            .iter()
            .map(|(name, value)| format!("{name}: {value}\r\n"))
            .collect();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim_end()),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse::<usize>().ok();
                }
                headers.push((name, value));
            }
        }
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8_lossy(&buf).into_owned()
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}
