//! The execution engine: a worker pool over the simulator with
//! single-flight deduplication and a content-addressed result cache.
//!
//! Every job resolves to a [`JobKey`] before touching the simulator. The
//! engine then guarantees that, among any set of concurrently submitted
//! jobs with equal keys, **exactly one** simulation runs: the first caller
//! becomes the *leader* and enqueues work for the pool, later callers
//! become *joiners* that block on the leader's completion slot. Finished
//! results land in a sharded LRU cache, so repeats after completion are
//! pure cache hits.
//!
//! Stats semantics: `cache_hits` counts both LRU hits and single-flight
//! joins — every request that was served without running a simulation.
//! This makes hit-rate assertions independent of scheduling timing (a
//! duplicate counts the same whether it arrived before or after the leader
//! finished).
//!
//! # Overload and shutdown policy
//!
//! The leader queue is **bounded** ([`EngineOptions::queue_depth`]). A
//! leader that would grow it past the bound is *shed* with
//! [`JobError::Overloaded`] (carrying a back-off hint derived from recent
//! simulation times) instead of queueing without limit. Callers can pass a
//! deadline; when it expires before the result is ready they get
//! [`JobError::DeadlineExpired`] while the in-flight leader keeps running
//! and its result still lands in the cache. After [`Engine::shutdown`],
//! submissions fail fast with [`JobError::ShuttingDown`] — nothing is ever
//! enqueued onto a pool whose workers are exiting, so no caller can block
//! forever on a slot that will never be filled.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
#[cfg(test)]
use std::time::Duration;
use std::time::Instant;

use scalesim::{NetworkReport, Simulator};

// The fault-injection hook lives with the panic-safe executor in core, so
// the sweep engine, the explore pipeline and this worker pool share one
// injection point; re-exported here to keep the server API unchanged.
pub use scalesim::exec::FaultPlan;
use scalesim_telemetry::{log, Counter, FlightRecorder, Gauge, Histogram, Registry};

use crate::cache::ShardedLru;
use crate::job::{JobError, JobKey, NormalizedJob, SimJob};
use crate::json::Json;

/// How many recent job records the per-engine flight recorder retains.
/// Oldest records are evicted first; memory stays bounded at roughly
/// `capacity * sizeof(JobRecord)` regardless of traffic.
pub const FLIGHT_RECORDER_CAPACITY: usize = 256;

/// Request context attached to a job so the flight recorder can tie each
/// record back to the HTTP request that caused it. Internal callers
/// (batch, sweep expansion, tests) use [`JobContext::internal`].
#[derive(Debug, Clone, Copy)]
pub struct JobContext<'a> {
    /// The route (or internal caller) that submitted the job.
    pub route: &'static str,
    /// Request id minted by the HTTP layer; empty for internal callers.
    pub request_id: &'a str,
}

impl JobContext<'_> {
    /// Context for jobs submitted outside the HTTP request path.
    pub fn internal() -> JobContext<'static> {
        JobContext {
            route: "internal",
            request_id: "",
        }
    }
}

/// One entry in the engine's flight recorder: a completed or rejected
/// job as seen either by the requesting thread (hit/joined/shed/deadline/
/// shutdown outcomes) or by the worker that simulated it (fresh/failed).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content-addressed job key.
    pub key: String,
    /// Route (or internal caller) that submitted the job.
    pub route: &'static str,
    /// Request id minted by the HTTP layer; empty for internal callers.
    pub request_id: String,
    /// Outcome tag: `fresh`, `hit`, `joined`, `shed`, `deadline`,
    /// `failed`, or `shutdown`.
    pub outcome: &'static str,
    /// Leader queue wait in microseconds (fresh/failed records only).
    pub queue_wait_micros: u64,
    /// Simulation wall time in microseconds; for `hit`/`joined` this is
    /// the leader's measurement, 0 when no simulation backs the record.
    pub sim_micros: u64,
    /// Worker thread that ran the simulation; empty when none did.
    pub worker: String,
    /// When the record was made, as milliseconds since the engine started.
    pub age_ms: u64,
}

impl JobRecord {
    /// JSON object served by `GET /debug/jobs`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("key", Json::str(self.key.clone())),
            ("route", Json::str(self.route)),
            ("request_id", Json::str(self.request_id.clone())),
            ("outcome", Json::str(self.outcome)),
            (
                "queue_wait_micros",
                Json::Int(self.queue_wait_micros.into()),
            ),
            ("sim_micros", Json::Int(self.sim_micros.into())),
            ("worker", Json::str(self.worker.clone())),
            ("age_ms", Json::Int(self.age_ms.into())),
        ])
    }

    /// One `key=value` line for stderr dumps.
    fn to_line(&self) -> String {
        format!(
            "key={} route={} request_id={} outcome={} queue_wait_micros={} \
             sim_micros={} worker={} age_ms={}",
            self.key,
            self.route,
            if self.request_id.is_empty() {
                "-"
            } else {
                &self.request_id
            },
            self.outcome,
            self.queue_wait_micros,
            self.sim_micros,
            if self.worker.is_empty() {
                "-"
            } else {
                &self.worker
            },
            self.age_ms,
        )
    }
}

/// How a completed request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// This request's simulation actually ran.
    Fresh,
    /// Served from the result cache.
    Cache,
    /// Joined an identical in-flight simulation (single-flight dedup).
    Joined,
}

impl Served {
    /// Short lowercase tag, used in the `X-Scalesim-Cache` response header.
    pub fn tag(self) -> &'static str {
        match self {
            Served::Fresh => "miss",
            Served::Cache => "hit",
            Served::Joined => "joined",
        }
    }
}

/// The outcome of one simulation job.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Content-addressed key of the normalized job.
    pub key: JobKey,
    /// The simulation report.
    pub report: NetworkReport,
    /// Wall time of the underlying simulation in microseconds (the
    /// leader's measurement; identical for cache hits and joins, keeping
    /// response bodies for equal jobs byte-identical).
    pub sim_wall_micros: u64,
}

impl SimResult {
    /// JSON body returned by `POST /simulate`. Deterministic for a given
    /// key: field order is fixed and no request-specific data is included.
    pub fn to_json(&self) -> Json {
        let layers: Vec<Json> = self
            .report
            .layers()
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("name", Json::str(l.name.clone())),
                    ("cycles", Json::Int(l.total_cycles.into())),
                    ("effective_cycles", Json::Int(l.effective_cycles().into())),
                    ("macs", Json::Int(l.mac_ops.into())),
                    ("mapping_util", Json::Float(l.mapping_utilization)),
                    ("compute_util", Json::Float(l.compute_utilization)),
                    ("sram_accesses", Json::Int(l.sram.total().into())),
                    ("dram_bytes", Json::Int(l.dram.total_bytes().into())),
                    ("req_bw", Json::Float(l.required_bandwidth())),
                    ("avg_bw", Json::Float(l.average_bandwidth())),
                    ("energy", Json::Float(l.energy.total())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("key", Json::str(self.key.to_string())),
            ("network", Json::str(self.report.name().to_owned())),
            ("total_cycles", Json::Int(self.report.total_cycles().into())),
            ("total_macs", Json::Int(self.report.total_macs().into())),
            (
                "total_dram_bytes",
                Json::Int(self.report.total_dram_bytes().into()),
            ),
            (
                "overall_utilization",
                Json::Float(self.report.overall_utilization()),
            ),
            (
                "total_energy",
                Json::Float(self.report.total_energy().total()),
            ),
            ("sim_wall_micros", Json::Int(self.sim_wall_micros.into())),
            ("layers", Json::Arr(layers)),
        ])
    }
}

/// Service counters, backed by [`scalesim_telemetry`] primitives registered
/// in the engine's [`Registry`] — `GET /stats` and `GET /metrics` read the
/// *same* atomics, so the two views can never drift.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Jobs accepted for execution (normalized successfully).
    pub accepted: Arc<Counter>,
    /// Jobs completed (any path: fresh, cache, join).
    pub completed: Arc<Counter>,
    /// Simulations actually executed by the pool.
    pub simulations: Arc<Counter>,
    /// Requests that ran a fresh simulation
    /// (`scalesim_requests_total{outcome="fresh"}`).
    pub fresh: Arc<Counter>,
    /// Requests served from the LRU result cache
    /// (`scalesim_requests_total{outcome="hit"}`).
    pub lru_hits: Arc<Counter>,
    /// Requests that joined an identical in-flight simulation
    /// (`scalesim_requests_total{outcome="joined"}`).
    pub joins: Arc<Counter>,
    /// Requests whose simulation failed (a joiner of a failed leader counts
    /// here *and* in `joins`).
    pub errors: Arc<Counter>,
    /// Jobs currently being simulated.
    pub in_flight: Arc<Gauge>,
    /// Total simulation wall time in microseconds (fresh runs only).
    pub total_sim_micros: Arc<Counter>,
    /// Leader queue wait (enqueue to worker pickup), seconds.
    pub queue_wait: Arc<Histogram>,
    /// Simulation wall time (fresh runs only), seconds.
    pub sim_duration: Arc<Histogram>,
    /// Joiners that piled onto each completed leader (single-flight fan-in
    /// per key; counts joiners present when the leader finished).
    pub joiners_per_key: Arc<Histogram>,
    /// Jobs shed because the bounded queue was full
    /// (`scalesim_jobs_shed_total`).
    pub shed: Arc<Counter>,
    /// Requests whose deadline expired before the result was ready
    /// (`scalesim_jobs_deadline_expired_total`).
    pub deadline_expired: Arc<Counter>,
    /// Leaders currently waiting in the bounded queue
    /// (`scalesim_queue_depth`).
    pub queue_depth: Arc<Gauge>,
}

impl Stats {
    fn new(registry: &Registry) -> Stats {
        let outcome = |tag| {
            registry.counter_with(
                "scalesim_requests_total",
                "Completed requests by outcome.",
                &[("outcome", tag)],
            )
        };
        Stats {
            accepted: registry.counter(
                "scalesim_jobs_accepted_total",
                "Jobs accepted for execution (normalized successfully).",
            ),
            completed: registry.counter(
                "scalesim_jobs_completed_total",
                "Jobs completed on any path: fresh, cache hit, or join.",
            ),
            simulations: registry.counter(
                "scalesim_simulations_total",
                "Simulations actually executed by the worker pool.",
            ),
            fresh: outcome("fresh"),
            lru_hits: outcome("hit"),
            joins: outcome("joined"),
            errors: registry.counter(
                "scalesim_job_errors_total",
                "Requests whose simulation failed.",
            ),
            in_flight: registry.gauge("scalesim_jobs_in_flight", "Jobs currently being simulated."),
            total_sim_micros: registry.counter(
                "scalesim_sim_wall_micros_total",
                "Total simulation wall time in microseconds (fresh runs only).",
            ),
            queue_wait: registry.histogram(
                "scalesim_queue_wait_seconds",
                "Leader queue wait from enqueue to worker pickup.",
                &Histogram::duration_buckets(),
            ),
            sim_duration: registry.histogram(
                "scalesim_sim_seconds",
                "Simulation wall time (fresh runs only).",
                &Histogram::duration_buckets(),
            ),
            joiners_per_key: registry.histogram(
                "scalesim_dedup_joiners",
                "Joiners that piled onto each completed leader (per job key).",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            shed: registry.counter(
                "scalesim_jobs_shed_total",
                "Jobs shed with `Overloaded` because the bounded queue was full.",
            ),
            deadline_expired: registry.counter(
                "scalesim_jobs_deadline_expired_total",
                "Requests whose deadline expired before the result was ready.",
            ),
            queue_depth: registry.gauge(
                "scalesim_queue_depth",
                "Leaders currently waiting in the bounded queue.",
            ),
        }
    }

    /// Requests served without running a simulation (LRU hits + joins).
    pub fn cache_hits(&self) -> u64 {
        self.lru_hits.get() + self.joins.get()
    }

    /// JSON body returned by `GET /stats`. Field set is kept stable for
    /// pre-telemetry clients; values read the same counters as `/metrics`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accepted", Json::Int(self.accepted.get().into())),
            ("completed", Json::Int(self.completed.get().into())),
            ("simulations", Json::Int(self.simulations.get().into())),
            ("cache_hits", Json::Int(self.cache_hits().into())),
            ("lru_hits", Json::Int(self.lru_hits.get().into())),
            ("joins", Json::Int(self.joins.get().into())),
            ("in_flight", Json::Int(self.in_flight.get().max(0).into())),
            (
                "total_sim_micros",
                Json::Int(self.total_sim_micros.get().into()),
            ),
            ("shed", Json::Int(self.shed.get().into())),
            (
                "deadline_expired",
                Json::Int(self.deadline_expired.get().into()),
            ),
            (
                "queue_depth",
                Json::Int(self.queue_depth.get().max(0).into()),
            ),
        ])
    }
}

/// Completion slot shared by a leader and its joiners.
struct Slot {
    state: Mutex<Option<Result<Arc<SimResult>, JobError>>>,
    done: Condvar,
    /// Joiners registered so far; sampled into the `joiners_per_key`
    /// histogram when the leader finishes (joiners racing in after the
    /// fill are missed — acceptable for telemetry).
    joiners: AtomicU64,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(None),
            done: Condvar::new(),
            joiners: AtomicU64::new(0),
        })
    }

    fn fill(&self, result: Result<Arc<SimResult>, JobError>) {
        *self.state.lock().unwrap() = Some(result);
        self.done.notify_all();
    }

    /// Waits for the slot to be filled, up to `deadline` if one is given.
    /// Returns `None` when the deadline expires first — the leader keeps
    /// running and will still fill the slot (and the cache) later.
    fn wait_timeout(&self, deadline: Option<Instant>) -> Option<Result<Arc<SimResult>, JobError>> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(result) = state.as_ref() {
                return Some(result.clone());
            }
            match deadline {
                None => state = self.done.wait(state).unwrap(),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    (state, _) = self.done.wait_timeout(state, deadline - now).unwrap();
                }
            }
        }
    }
}

/// Sizing knobs for an [`Engine`]. `..Default::default()` keeps the
/// historical behavior everywhere a knob is not set explicitly.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Simulator worker threads (minimum 1).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Maximum leaders waiting in the queue before new leaders are shed
    /// with [`JobError::Overloaded`] (minimum 1).
    pub queue_depth: usize,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 1,
            cache_capacity: 256,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }
}

/// Default bound on the leader queue: deep enough that well-behaved
/// workloads (batch manifests, sweeps) never notice it, shallow enough
/// that an overload burst is shed in bounded memory and bounded latency.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// A queued leader job: the normalized work plus its completion slot, the
/// enqueue instant (for the queue-wait histogram) and the leader's request
/// context (for the flight recorder).
struct QueuedJob {
    job: NormalizedJob,
    key: JobKey,
    slot: Arc<Slot>,
    enqueued: Instant,
    route: &'static str,
    request_id: String,
}

struct Shared {
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    inflight: Mutex<HashMap<u128, Arc<Slot>>>,
    cache: ShardedLru<Arc<SimResult>>,
    registry: Arc<Registry>,
    stats: Stats,
    shutdown: AtomicBool,
    workers: usize,
    queue_depth: usize,
    faults: Mutex<FaultPlan>,
    recorder: FlightRecorder<JobRecord>,
    started: Instant,
}

impl Shared {
    /// Appends one record to the flight recorder (bounded; oldest out).
    #[allow(clippy::too_many_arguments)]
    fn record_job(
        &self,
        key: &JobKey,
        route: &'static str,
        request_id: &str,
        outcome: &'static str,
        queue_wait_micros: u64,
        sim_micros: u64,
        worker: &str,
    ) {
        self.recorder.record(JobRecord {
            key: key.to_string(),
            route,
            request_id: request_id.to_owned(),
            outcome,
            queue_wait_micros,
            sim_micros,
            worker: worker.to_owned(),
            age_ms: self.started.elapsed().as_millis() as u64,
        });
    }

    /// Writes every retained record to stderr, newest last. Called on
    /// worker panic and on drain so post-mortems survive the process.
    fn dump_recorder(&self, why: &str) {
        let records = self.recorder.snapshot();
        eprintln!("flight recorder dump ({why}): {} records", records.len());
        for record in records {
            eprintln!("  {}", record.to_line());
        }
    }
}

/// The simulation engine: worker pool + cache + single-flight table.
///
/// Cloning is cheap (an `Arc`); drop of the last handle created by
/// [`Engine::new`] does *not* stop workers — call [`Engine::shutdown`].
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

impl Engine {
    /// Spawns `workers` simulator threads and a cache of `cache_capacity`
    /// results, with the default queue bound. Worker threads are detached;
    /// they exit on [`Engine::shutdown`].
    pub fn new(workers: usize, cache_capacity: usize) -> Engine {
        Engine::with_options(EngineOptions {
            workers,
            cache_capacity,
            ..EngineOptions::default()
        })
    }

    /// Spawns an engine with explicit sizing ([`EngineOptions`]).
    pub fn with_options(options: EngineOptions) -> Engine {
        let EngineOptions {
            workers,
            cache_capacity,
            queue_depth,
        } = options;
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        // One registry per engine (not the process-wide one): stats stay
        // attributable to this engine, and engines in tests don't bleed
        // counters into each other. `/metrics` renders this registry plus
        // the global simulator-side one.
        let registry = Arc::new(Registry::new());
        let stats = Stats::new(&registry);
        let evictions = registry.counter(
            "scalesim_cache_evictions_total",
            "Results evicted from the LRU cache.",
        );
        let resident = registry.gauge(
            "scalesim_cache_resident_entries",
            "Results currently held by the LRU cache.",
        );
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            cache: ShardedLru::new(cache_capacity, workers.next_power_of_two().min(16))
                .with_metrics(evictions, resident),
            registry,
            stats,
            shutdown: AtomicBool::new(false),
            workers,
            queue_depth,
            faults: Mutex::new(FaultPlan::default()),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            started: Instant::now(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("sim-worker-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn simulation worker");
        }
        Engine { shared }
    }

    /// Service counters.
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// The engine's metric registry — everything `GET /stats` reports plus
    /// cache, queue-wait and dedup histograms, renderable as Prometheus
    /// text via [`Registry::render`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Runs a job to completion, deduplicating against the cache and any
    /// identical in-flight simulation. Blocks the calling thread.
    pub fn run(&self, job: &SimJob) -> Result<(Arc<SimResult>, Served), JobError> {
        self.run_normalized(job.normalize()?)
    }

    /// [`Engine::run`] with a completion deadline: when `deadline` passes
    /// before the result is ready the call returns
    /// [`JobError::DeadlineExpired`], while the in-flight simulation keeps
    /// running and its result still lands in the cache.
    pub fn run_with_deadline(
        &self,
        job: &SimJob,
        deadline: Option<Instant>,
    ) -> Result<(Arc<SimResult>, Served), JobError> {
        self.run_normalized_with_deadline(job.normalize()?, deadline)
    }

    /// Runs an already-normalized job through the pool, cache and
    /// single-flight table. This is the entry point for callers that build
    /// [`NormalizedJob`]s directly — e.g. the `POST /sweep` planner, which
    /// expands one plan into many jobs and must share this engine's cache.
    pub fn run_normalized(
        &self,
        normalized: NormalizedJob,
    ) -> Result<(Arc<SimResult>, Served), JobError> {
        self.run_normalized_with_deadline(normalized, None)
    }

    /// [`Engine::run_normalized`] with a completion deadline.
    pub fn run_normalized_with_deadline(
        &self,
        normalized: NormalizedJob,
        deadline: Option<Instant>,
    ) -> Result<(Arc<SimResult>, Served), JobError> {
        self.run_normalized_with_context(normalized, deadline, JobContext::internal())
    }

    /// [`Engine::run_with_deadline`] carrying request context for the
    /// flight recorder.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run_with_deadline`].
    pub fn run_with_context(
        &self,
        job: &SimJob,
        deadline: Option<Instant>,
        ctx: JobContext<'_>,
    ) -> Result<(Arc<SimResult>, Served), JobError> {
        self.run_normalized_with_context(job.normalize()?, deadline, ctx)
    }

    /// The full submission path: deadline plus request context. Every
    /// terminal outcome leaves one [`JobRecord`] in the flight recorder —
    /// hit/joined/shed/deadline/shutdown are recorded here by the
    /// requesting thread; fresh and failed are recorded by the worker that
    /// ran the simulation (with queue-wait and worker identity).
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run_with_deadline`].
    pub fn run_normalized_with_context(
        &self,
        normalized: NormalizedJob,
        deadline: Option<Instant>,
        ctx: JobContext<'_>,
    ) -> Result<(Arc<SimResult>, Served), JobError> {
        let key = normalized.key();
        let stats = &self.shared.stats;
        // Fail fast on a stopped pool: enqueueing here would park the
        // caller on a slot no worker will ever fill.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared
                .record_job(&key, ctx.route, ctx.request_id, "shutdown", 0, 0, "");
            return Err(JobError::ShuttingDown);
        }
        stats.accepted.inc();

        if let Some(result) = self.shared.cache.get(key.0) {
            stats.lru_hits.inc();
            stats.completed.inc();
            self.shared.record_job(
                &key,
                ctx.route,
                ctx.request_id,
                "hit",
                0,
                result.sim_wall_micros,
                "",
            );
            return Ok((result, Served::Cache));
        }

        // Slow path: become the leader for this key, or join an existing one.
        let (slot, leader) = {
            let mut inflight = self.shared.inflight.lock().unwrap();
            // A leader may have completed between the cache probe and this
            // lock; its result is in the cache (inserted before the inflight
            // entry is removed), so re-check under the lock.
            if let Some(result) = self.shared.cache.get(key.0) {
                stats.lru_hits.inc();
                stats.completed.inc();
                self.shared.record_job(
                    &key,
                    ctx.route,
                    ctx.request_id,
                    "hit",
                    0,
                    result.sim_wall_micros,
                    "",
                );
                return Ok((result, Served::Cache));
            }
            match inflight.get(&key.0) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Slot::new();
                    inflight.insert(key.0, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if leader {
            let mut queue = self.shared.queue.lock().unwrap();
            // Admission control, decided under the queue lock so the bound
            // and the shutdown flag are race-free with workers exiting.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                self.shared
                    .record_job(&key, ctx.route, ctx.request_id, "shutdown", 0, 0, "");
                return Err(self.abandon_leader(&key, &slot, JobError::ShuttingDown));
            }
            if queue.len() >= self.shared.queue_depth {
                let retry_after_ms = self.retry_after_hint_ms(queue.len());
                drop(queue);
                stats.shed.inc();
                log::info(
                    "engine.job_shed",
                    &[
                        ("key", &key.to_string()),
                        ("retry_after_ms", &retry_after_ms.to_string()),
                    ],
                );
                self.shared
                    .record_job(&key, ctx.route, ctx.request_id, "shed", 0, 0, "");
                return Err(self.abandon_leader(
                    &key,
                    &slot,
                    JobError::Overloaded { retry_after_ms },
                ));
            }
            queue.push_back(QueuedJob {
                job: normalized,
                key,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
                route: ctx.route,
                request_id: ctx.request_id.to_owned(),
            });
            stats.queue_depth.set(queue.len() as i64);
            drop(queue);
            self.shared.queue_cv.notify_one();
        } else {
            slot.joiners.fetch_add(1, Ordering::Relaxed);
            stats.joins.inc();
        }

        let Some(outcome) = slot.wait_timeout(deadline) else {
            stats.deadline_expired.inc();
            self.shared
                .record_job(&key, ctx.route, ctx.request_id, "deadline", 0, 0, "");
            return Err(JobError::DeadlineExpired);
        };
        stats.completed.inc();
        match &outcome {
            Ok(_) if leader => stats.fresh.inc(),
            Ok(result) => {
                self.shared.record_job(
                    &key,
                    ctx.route,
                    ctx.request_id,
                    "joined",
                    0,
                    result.sim_wall_micros,
                    "",
                );
            }
            Err(e) => {
                stats.errors.inc();
                log::error(
                    "engine.job_failed",
                    &[("key", &key.to_string()), ("error", &e.to_string())],
                );
            }
        }
        outcome.map(|r| {
            (
                r,
                if leader {
                    Served::Fresh
                } else {
                    Served::Joined
                },
            )
        })
    }

    /// Signals workers to exit once the queue drains. Idempotent. After
    /// this, new submissions fail fast with [`JobError::ShuttingDown`];
    /// already-queued leaders (and their joiners) still complete.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// True once nothing is queued and nothing is being simulated. Used by
    /// the HTTP layer's graceful drain to decide when shutdown is complete.
    pub fn is_idle(&self) -> bool {
        self.shared.queue.lock().unwrap().is_empty() && self.shared.stats.in_flight.get() <= 0
    }

    /// The configured bound on the leader queue.
    pub fn queue_depth_limit(&self) -> usize {
        self.shared.queue_depth
    }

    /// Installs a [`FaultPlan`] (test hook). Replaces any previous plan;
    /// pass `FaultPlan::new()` to clear.
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.shared.faults.lock().unwrap() = plan;
    }

    /// The flight recorder's retained job records, oldest first (at most
    /// [`FLIGHT_RECORDER_CAPACITY`]). This is the body of
    /// `GET /debug/jobs`.
    pub fn recent_jobs(&self) -> Vec<JobRecord> {
        self.shared.recorder.snapshot()
    }

    /// Dumps the flight recorder to stderr (newest record last), tagged
    /// with `why`. The HTTP layer calls this when a graceful drain starts;
    /// workers call it when a simulation panics.
    pub fn dump_flight_recorder(&self, why: &str) {
        self.shared.dump_recorder(why);
    }

    /// Drops a leader slot that was never enqueued: the inflight entry is
    /// removed first (so a later identical request elects a fresh leader),
    /// then any joiners that raced in are released with the same error.
    fn abandon_leader(&self, key: &JobKey, slot: &Slot, err: JobError) -> JobError {
        self.shared.inflight.lock().unwrap().remove(&key.0);
        slot.fill(Err(err.clone()));
        err
    }

    /// Back-off hint for shed jobs: roughly how long until a queue slot
    /// frees up, from the average simulation time of this engine's recent
    /// work. Clamped to [100 ms, 30 s]; defaults to 1 s before any
    /// simulation has completed.
    fn retry_after_hint_ms(&self, queue_len: usize) -> u64 {
        let stats = &self.shared.stats;
        let avg_ms = stats
            .total_sim_micros
            .get()
            .checked_div(stats.simulations.get())
            .map_or(1000, |avg_micros| avg_micros / 1000);
        (avg_ms.max(1) * (queue_len as u64 + 1) / self.shared.workers.max(1) as u64)
            .clamp(100, 30_000)
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let QueuedJob {
            job,
            key,
            slot,
            enqueued,
            route,
            request_id,
        } = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(item) = queue.pop_front() {
                    shared.stats.queue_depth.set(queue.len() as i64);
                    break item;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };

        let queue_wait = enqueued.elapsed();
        let queue_wait_micros = queue_wait.as_micros() as u64;
        shared.stats.queue_wait.observe_duration(queue_wait);
        shared.stats.in_flight.add(1);
        let faults = shared.faults.lock().unwrap().clone();
        let started = Instant::now();
        let mut sim = Simulator::new(job.config).with_grid(job.grid);
        if job.auto_dataflow {
            sim = sim.with_auto_dataflow();
        }
        // The panic-safe executor catches panics (including injected
        // faults) at every layer-task boundary, so a simulator bug in one
        // layer surfaces as a typed error instead of unwinding the worker.
        let run = scalesim::exec::run_topology_guarded(&sim, &job.topology, 1, &faults);
        let sim_wall = started.elapsed();
        let sim_wall_micros = sim_wall.as_micros() as u64;
        let worker = std::thread::current();
        let worker = worker.name().unwrap_or("sim-worker");

        let outcome = match run {
            Ok(report) => {
                shared.stats.simulations.inc();
                shared.stats.total_sim_micros.add(sim_wall_micros);
                shared.stats.sim_duration.observe_duration(sim_wall);
                shared.record_job(
                    &key,
                    route,
                    &request_id,
                    "fresh",
                    queue_wait_micros,
                    sim_wall_micros,
                    worker,
                );
                Ok(Arc::new(SimResult {
                    key,
                    report,
                    sim_wall_micros,
                }))
            }
            Err(err) => {
                shared.record_job(
                    &key,
                    route,
                    &request_id,
                    "failed",
                    queue_wait_micros,
                    sim_wall_micros,
                    worker,
                );
                // A panicking simulation is exactly the post-mortem the
                // recorder exists for: preserve it on stderr immediately.
                shared.dump_recorder("worker panic");
                Err(JobError::Internal(err.to_string()))
            }
        };

        // Order matters: publish to the cache *before* removing the inflight
        // entry, so a racing `run()` that misses the inflight table is
        // guaranteed to find the result in the cache.
        if let Ok(result) = &outcome {
            shared.cache.insert(key.0, Arc::clone(result));
        }
        shared.inflight.lock().unwrap().remove(&key.0);
        shared.stats.in_flight.sub(1);
        shared
            .stats
            .joiners_per_key
            .observe(slot.joiners.load(Ordering::Relaxed) as f64);
        slot.fill(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_job() -> SimJob {
        // Single tiny layer so engine tests stay fast.
        SimJob {
            workload: crate::job::Workload::InlineCsv {
                name: "tiny".into(),
                csv: "Layer,IfmapH,IfmapW,FilterH,FilterW,Channels,Filters,Strides\n\
                      L1,8,8,3,3,4,8,1\n"
                    .into(),
            },
            layer: None,
            config: vec![
                ("ArrayHeight".into(), "8".into()),
                ("ArrayWidth".into(), "8".into()),
            ],
            grid: (1, 1),
            dataflow: None,
            bandwidth: None,
            batch: None,
        }
    }

    #[test]
    fn fresh_then_cached() {
        let engine = Engine::new(2, 64);
        let job = small_job();
        let (first, served) = engine.run(&job).unwrap();
        assert_eq!(served, Served::Fresh);
        let (second, served) = engine.run(&job).unwrap();
        assert_eq!(served, Served::Cache);
        assert_eq!(first.key, second.key);
        assert_eq!(first.report, second.report);
        let stats = engine.stats();
        assert_eq!(stats.simulations.get(), 1);
        assert_eq!(stats.fresh.get(), 1);
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(stats.completed.get(), 2);
        engine.shutdown();
    }

    #[test]
    fn concurrent_duplicates_run_once() {
        let engine = Engine::new(4, 64);
        let job = small_job();
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = engine.clone();
                    let job = job.clone();
                    s.spawn(move || engine.run(&job).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = engine.stats();
        assert_eq!(stats.simulations.get(), 1);
        assert_eq!(stats.cache_hits(), 7);
        let first_json = results[0].0.to_json().to_string();
        for (result, _) in &results {
            assert_eq!(result.to_json().to_string(), first_json);
        }
        engine.shutdown();
    }

    #[test]
    fn distinct_jobs_each_simulate() {
        let engine = Engine::new(2, 64);
        let a = small_job();
        let mut b = small_job();
        b.config.push(("Dataflow".into(), "is".into()));
        engine.run(&a).unwrap();
        engine.run(&b).unwrap();
        assert_eq!(engine.stats().simulations.get(), 2);
        assert_eq!(engine.stats().cache_hits(), 0);
        engine.shutdown();
    }

    #[test]
    fn bad_job_is_rejected_before_the_pool() {
        let engine = Engine::new(1, 4);
        let job = SimJob::builtin("no_such_net");
        assert!(engine.run(&job).is_err());
        assert_eq!(engine.stats().accepted.get(), 0);
        engine.shutdown();
    }

    #[test]
    fn stats_json_shape() {
        let engine = Engine::new(1, 4);
        let json = engine.stats().to_json();
        for field in [
            "accepted",
            "completed",
            "simulations",
            "cache_hits",
            "lru_hits",
            "joins",
            "in_flight",
            "total_sim_micros",
        ] {
            assert!(json.get(field).is_some(), "missing stats field {field}");
        }
        engine.shutdown();
    }

    /// `/stats` and `/metrics` must report from one source of truth: the
    /// JSON counters and the rendered Prometheus exposition agree exactly.
    #[test]
    fn stats_and_metrics_share_counters() {
        let engine = Engine::new(2, 64);
        let job = small_job();
        engine.run(&job).unwrap();
        engine.run(&job).unwrap();

        let json = engine.stats().to_json();
        assert_eq!(json.get("simulations").and_then(Json::as_u64), Some(1));
        let registry = engine.registry();
        assert_eq!(
            registry.counter_value("scalesim_simulations_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("scalesim_requests_total", &[("outcome", "fresh")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("scalesim_requests_total", &[("outcome", "hit")]),
            Some(1)
        );

        let text = registry.render();
        assert!(text.contains("scalesim_simulations_total 1"));
        assert!(text.contains("scalesim_requests_total{outcome=\"fresh\"} 1"));
        assert!(text.contains("scalesim_requests_total{outcome=\"hit\"} 1"));
        assert!(text.contains("# TYPE scalesim_queue_wait_seconds histogram"));
        assert!(text.contains("scalesim_queue_wait_seconds_count 1"));
        assert!(text.contains("scalesim_sim_seconds_count 1"));
        assert!(text.contains("scalesim_cache_resident_entries 1"));
        assert!(text.contains("scalesim_cache_evictions_total 0"));
        assert!(text.contains("scalesim_dedup_joiners_count 1"));
        engine.shutdown();
    }

    #[test]
    fn auto_dataflow_jobs_simulate_per_layer_selection() {
        let engine = Engine::new(2, 64);
        let mut auto = small_job();
        auto.dataflow = Some("auto".into());
        let fixed = small_job();
        let (auto_result, _) = engine.run(&auto).unwrap();
        let (fixed_result, _) = engine.run(&fixed).unwrap();
        // Distinct keys, both simulated (no accidental cache collision).
        assert_ne!(auto_result.key, fixed_result.key);
        assert_eq!(engine.stats().simulations.get(), 2);
        engine.shutdown();
    }

    /// A layer with no work must serialize as real zeros, not `null`
    /// (NaN utilization used to slip through `Json::Float` as `null`,
    /// silently corrupting clients' sweeps).
    #[test]
    fn degenerate_layer_json_has_no_nulls() {
        use scalesim::{GemmShape, Layer, SimConfig, Simulator, Topology};
        let layer = Layer::Gemm {
            name: "empty".into(),
            shape: GemmShape { m: 0, k: 8, n: 8 },
        };
        let topology = Topology::from_layers("degenerate", vec![layer]);
        let report = Simulator::new(SimConfig::default()).run_topology(&topology);
        let result = SimResult {
            key: JobKey(0),
            report,
            sim_wall_micros: 0,
        };
        let text = result.to_json().to_string();
        assert!(
            !text.contains("null"),
            "degenerate report leaked null: {text}"
        );
        assert!(text.contains("\"compute_util\":0"));
        assert!(text.contains("\"overall_utilization\":0"));
    }

    /// Regression (hang): `run_normalized` after `shutdown()` used to
    /// enqueue a leader onto a pool whose workers had exited, and
    /// `slot.wait()` then blocked forever. It must fail fast instead.
    #[test]
    fn run_after_shutdown_returns_shutting_down() {
        let engine = Engine::new(1, 4);
        engine.shutdown();
        let started = Instant::now();
        let err = engine.run(&small_job()).unwrap_err();
        assert_eq!(err, JobError::ShuttingDown);
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "rejection must be immediate, took {:?}",
            started.elapsed()
        );
        // Nothing was accepted or queued.
        assert_eq!(engine.stats().accepted.get(), 0);
        assert!(engine.is_idle());
    }

    /// With one worker and a queue bound of one, a third distinct job
    /// arriving while the first simulates is shed with `Overloaded` and a
    /// back-off hint — never queued without limit, never blocked forever.
    #[test]
    fn full_queue_sheds_with_overloaded() {
        let engine = Engine::with_options(EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 1,
        });
        engine.inject_faults(FaultPlan::new().delay("tiny", Duration::from_millis(400)));
        fn job_n(n: u64) -> SimJob {
            let mut job = small_job();
            job.config.push(("IfmapSramSz".into(), n.to_string()));
            job
        }

        let (first, second) = std::thread::scope(|s| {
            let e1 = engine.clone();
            let first = s.spawn(move || e1.run(&job_n(1)));
            // Wait until the first job occupies the worker.
            while engine.stats().in_flight.get() < 1 {
                std::thread::sleep(Duration::from_millis(5));
            }
            let e2 = engine.clone();
            let second = s.spawn(move || e2.run(&job_n(2)));
            // Wait until the second job occupies the single queue slot.
            while engine.stats().queue_depth.get() < 1 {
                std::thread::sleep(Duration::from_millis(5));
            }
            let shed = engine.run(&job_n(3)).unwrap_err();
            match shed {
                JobError::Overloaded { retry_after_ms } => {
                    assert!((100..=30_000).contains(&retry_after_ms))
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
            (first.join().unwrap(), second.join().unwrap())
        });
        assert!(first.is_ok() && second.is_ok(), "admitted jobs complete");
        assert_eq!(engine.stats().shed.get(), 1);
        // The shed key was abandoned cleanly: retrying it now succeeds.
        engine.inject_faults(FaultPlan::new());
        let (_, served) = engine.run(&job_n(3)).unwrap();
        assert_eq!(served, Served::Fresh);
        engine.shutdown();
    }

    /// A request whose deadline expires gets `DeadlineExpired`, while the
    /// leader simulation keeps running and its result still lands in the
    /// cache for the next request.
    #[test]
    fn expired_deadline_still_caches_the_result() {
        let engine = Engine::new(1, 16);
        engine.inject_faults(FaultPlan::new().delay("tiny", Duration::from_millis(200)));
        let job = small_job();
        let err = engine
            .run_with_deadline(&job, Some(Instant::now() + Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, JobError::DeadlineExpired);
        assert_eq!(engine.stats().deadline_expired.get(), 1);

        // No deadline: joins the still-running leader or hits the cache.
        let (_, served) = engine.run(&job).unwrap();
        assert!(matches!(served, Served::Joined | Served::Cache));
        assert_eq!(engine.stats().simulations.get(), 1);

        // Registry view of the new counters.
        let text = engine.registry().render();
        assert!(text.contains("scalesim_jobs_deadline_expired_total 1"));
        assert!(text.contains("scalesim_jobs_shed_total 0"));
        engine.shutdown();
    }

    /// Injected panics surface as `Internal` errors and the worker
    /// survives to run later jobs.
    #[test]
    fn injected_panic_recovers_as_internal_error() {
        let engine = Engine::new(1, 16);
        engine.inject_faults(FaultPlan::new().panic("tiny", "injected fault"));
        let err = engine.run(&small_job()).unwrap_err();
        match err {
            JobError::Internal(msg) => assert!(msg.contains("injected fault"), "got: {msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        engine.inject_faults(FaultPlan::new());
        let (_, served) = engine.run(&small_job()).unwrap();
        assert_eq!(served, Served::Fresh, "worker survived the panic");
        engine.shutdown();
    }

    #[test]
    fn cache_evictions_surface_in_metrics() {
        // Capacity 1, single shard: the second distinct job evicts the first.
        let engine = Engine::new(1, 1);
        let a = small_job();
        let mut b = small_job();
        b.config.push(("Dataflow".into(), "is".into()));
        engine.run(&a).unwrap();
        engine.run(&b).unwrap();
        let registry = engine.registry();
        assert_eq!(
            registry.counter_value("scalesim_cache_evictions_total", &[]),
            Some(1)
        );
        let text = registry.render();
        assert!(text.contains("scalesim_cache_evictions_total 1"));
        assert!(text.contains("scalesim_cache_resident_entries 1"));
        engine.shutdown();
    }
}
