//! A hand-rolled JSON value, parser and writer.
//!
//! The server speaks JSON on the wire but the workspace's dependency set is
//! std-only (the vendored `serde` is a marker shim), so — exactly like the
//! repo's hand-rolled INI config and CSV topology formats — JSON support is
//! implemented locally. Integers are kept exact (`i128`) rather than routed
//! through `f64`, because cycle counts are `u64` and must round-trip.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer written without fraction or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", what as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("document too deeply nested".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are rejected rather than combined;
                        // the server never emits them.
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                    }
                    other => return Err(format!("invalid escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number `{text}`"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    /// Compact (no whitespace) serialization; deterministic for identical
    /// values, which the cache relies on for byte-identical responses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => write!(f, "null"), // NaN/inf are not JSON
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null, "e": true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        let reprinted = v.to_string();
        assert_eq!(Json::parse(&reprinted).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big = u64::MAX;
        let v = Json::parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
        assert_eq!(v.to_string(), format!("{{\"n\":{big}}}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\"b\\c\u{0001}".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\u0001""#);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
