//! `POST /explore`: analytical-guided design-space exploration.
//!
//! The request body is a sweep plan (same fields as `POST /sweep`, see
//! [`crate::sweep::parse_sweep_plan`]) plus the explore knobs:
//!
//! ```json
//! {
//!   "name": "fig9_tf0",
//!   "workloads": ["TF0"],
//!   "budgets": [1024, 4096],
//!   "aspect": "all",
//!   "keep_within": 10,        // slack band, percent (default 10)
//!   "budget": 50,             // max points simulated (optional)
//!   "budget_seconds": 30,     // or a wall-clock limit (optional)
//!   "jobs": 4                 // simulation parallelism (default 4)
//! }
//! ```
//!
//! The handler runs the three-stage pipeline of
//! [`scalesim::explore`](scalesim::ExploreEngine): analytical lower-bound
//! prediction over every candidate, Pareto-band pruning, then
//! cycle-accurate simulation of the survivors under the budget. Each
//! request uses its own [`ExploreEngine`] (stage 2 needs full simulation
//! reports, which the shared `/simulate` result cache does not retain), but
//! its telemetry lands in the engine registry so the
//! `scalesim_explore_*` series show up on `GET /metrics`.

use std::collections::HashSet;
use std::time::Duration;

use scalesim::{ExploreBudget, ExploreEngine, ExploreOptions, ExploreOutcome, MeasuredPoint};

use crate::engine::Engine;
use crate::job::JobError;
use crate::json::Json;

/// Cache capacity for the per-request explore engine: big enough that the
/// refinement loop never evicts a survivor's report mid-request.
const EXPLORE_CACHE: usize = 4096;

/// Splits the request body into the core sweep plan and the explore
/// options.
///
/// # Errors
///
/// [`JobError::BadRequest`] on malformed explore knobs or (via
/// [`crate::sweep::parse_sweep_plan`]) a malformed plan.
pub fn parse_explore_request(
    value: &Json,
) -> Result<(scalesim::SweepPlan, ExploreOptions), JobError> {
    let obj = value
        .as_object()
        .ok_or_else(|| JobError::bad_request("explore request must be a JSON object"))?;

    let mut options = ExploreOptions {
        jobs: 4,
        ..ExploreOptions::default()
    };
    let mut plan_fields: Vec<(String, Json)> = Vec::new();
    let mut sim_budget = None;
    let mut wall_budget = None;
    for (key, val) in obj {
        match key.as_str() {
            "keep_within" => {
                let pct = val
                    .as_f64()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| {
                        JobError::bad_request("`keep_within` must be a nonnegative percentage")
                    })?;
                options.keep_within_pct = pct;
            }
            "budget" => {
                let n = val.as_u64().ok_or_else(|| {
                    JobError::bad_request("`budget` must be an integer point count")
                })?;
                sim_budget = Some(ExploreBudget::Sims(n as usize));
            }
            "budget_seconds" => {
                let secs = val
                    .as_f64()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        JobError::bad_request("`budget_seconds` must be a positive number")
                    })?;
                wall_budget = Some(ExploreBudget::WallClock(Duration::from_secs_f64(secs)));
            }
            "jobs" => {
                let n = val
                    .as_u64()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| JobError::bad_request("`jobs` must be a positive integer"))?;
                options.jobs = n as usize;
            }
            _ => plan_fields.push((key.clone(), val.clone())),
        }
    }
    if sim_budget.is_some() && wall_budget.is_some() {
        return Err(JobError::bad_request(
            "`budget` and `budget_seconds` are mutually exclusive",
        ));
    }
    options.budget = sim_budget
        .or(wall_budget)
        .unwrap_or(ExploreBudget::Unlimited);

    let plan = crate::sweep::parse_sweep_plan(&Json::Obj(plan_fields))?;
    Ok((plan, options))
}

/// Parses and runs an explore request, returning the full response body.
/// Blocks until the budget is exhausted or the survivors are simulated.
///
/// # Errors
///
/// [`JobError::BadRequest`] for invalid requests, [`JobError::Internal`]
/// when a survivor's simulation fails.
pub fn run_explore(engine: &Engine, body: &Json) -> Result<Json, JobError> {
    let (plan, options) = parse_explore_request(body)?;
    let explorer = ExploreEngine::with_registry(EXPLORE_CACHE, engine.registry());
    let outcome = explorer
        .run(&plan, &options)
        .map_err(|e| JobError::Internal(format!("explore failed: {e}")))?;
    Ok(outcome_json(&outcome))
}

fn outcome_json(outcome: &ExploreOutcome) -> Json {
    let frontiers = outcome.frontiers();
    let on_frontier: HashSet<*const MeasuredPoint> = frontiers
        .iter()
        .flat_map(|(_, points)| points.iter().map(|p| *p as *const MeasuredPoint))
        .collect();

    let point_json = |p: &MeasuredPoint| {
        Json::obj(vec![
            ("workload", Json::str(p.spec.workload.clone())),
            ("budget", Json::Int(p.spec.budget.into())),
            ("partitions", Json::Int(p.spec.partitions().into())),
            ("grid", Json::str(p.spec.grid.to_string())),
            ("array", Json::str(p.spec.array.to_string())),
            ("dataflow", Json::str(p.spec.dataflow.to_string())),
            ("predicted_cycles", Json::Int(p.predicted.into())),
            ("cycles", Json::Int(p.report.total_cycles().into())),
            ("effective_cycles", Json::Int(p.measured().into())),
            (
                "on_frontier",
                Json::Bool(on_frontier.contains(&(p as *const MeasuredPoint))),
            ),
        ])
    };

    let frontier_json: Vec<Json> = frontiers
        .iter()
        .map(|(workload, points)| {
            Json::obj(vec![
                ("workload", Json::str(*workload)),
                (
                    "points",
                    Json::Arr(points.iter().map(|p| point_json(p)).collect()),
                ),
            ])
        })
        .collect();

    Json::obj(vec![
        ("plan", Json::str(outcome.plan_name.clone())),
        (
            "summary",
            Json::obj(vec![
                ("candidates", Json::Int((outcome.candidates as u64).into())),
                ("pruned", Json::Int((outcome.pruned as u64).into())),
                ("survivors", Json::Int((outcome.survivors as u64).into())),
                ("simulated", Json::Int((outcome.simulated as u64).into())),
                ("cache_hits", Json::Int(outcome.cache_hits.into())),
                (
                    "stage_seconds",
                    Json::obj(vec![
                        ("analytical", Json::Float(outcome.stage_seconds.analytical)),
                        ("prune", Json::Float(outcome.stage_seconds.prune)),
                        ("simulate", Json::Float(outcome.stage_seconds.simulate)),
                    ]),
                ),
                (
                    "analytical_error",
                    Json::obj(vec![
                        (
                            "count",
                            Json::Int((outcome.error_stats.count as u64).into()),
                        ),
                        ("p50", Json::Float(outcome.error_stats.p50)),
                        ("p95", Json::Float(outcome.error_stats.p95)),
                        ("mean", Json::Float(outcome.error_stats.mean)),
                        ("max", Json::Float(outcome.error_stats.max)),
                    ]),
                ),
            ]),
        ),
        (
            "points",
            Json::Arr(outcome.measured.iter().map(point_json).collect()),
        ),
        ("frontiers", Json::Arr(frontier_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(extra: &str) -> Json {
        Json::parse(&format!(
            r#"{{"name":"e","workloads":["TF1"],"budgets":[1024],
                 "config":{{"IfmapSramSz":64,"FilterSramSz":64,"OfmapSramSz":32}}{extra}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn request_parses_with_defaults() {
        let (plan, options) = parse_explore_request(&body("")).unwrap();
        assert_eq!(plan.name, "e");
        assert_eq!(options.keep_within_pct, 10.0);
        assert_eq!(options.budget, ExploreBudget::Unlimited);
        assert_eq!(options.jobs, 4);
    }

    #[test]
    fn request_parses_explore_knobs() {
        let (_, options) =
            parse_explore_request(&body(r#","keep_within":25,"budget":7,"jobs":2"#)).unwrap();
        assert_eq!(options.keep_within_pct, 25.0);
        assert_eq!(options.budget, ExploreBudget::Sims(7));
        assert_eq!(options.jobs, 2);

        let (_, options) = parse_explore_request(&body(r#","budget_seconds":1.5"#)).unwrap();
        assert_eq!(
            options.budget,
            ExploreBudget::WallClock(Duration::from_secs_f64(1.5))
        );
    }

    #[test]
    fn request_rejects_bad_knobs() {
        assert!(parse_explore_request(&body(r#","keep_within":-1"#)).is_err());
        assert!(parse_explore_request(&body(r#","budget":"lots""#)).is_err());
        assert!(parse_explore_request(&body(r#","budget_seconds":0"#)).is_err());
        assert!(parse_explore_request(&body(r#","jobs":0"#)).is_err());
        assert!(parse_explore_request(&body(r#","budget":1,"budget_seconds":1"#)).is_err());
        // Unknown fields still fall through to the plan parser and fail.
        assert!(parse_explore_request(&body(r#","bogus":1"#)).is_err());
    }

    #[test]
    fn explore_runs_and_reports_a_frontier() {
        let engine = Engine::new(2, 16);
        let response = run_explore(&engine, &body(r#","jobs":2"#)).unwrap();
        let summary = response.get("summary").unwrap();
        let candidates = summary.get("candidates").and_then(Json::as_u64).unwrap();
        let pruned = summary.get("pruned").and_then(Json::as_u64).unwrap();
        let survivors = summary.get("survivors").and_then(Json::as_u64).unwrap();
        let simulated = summary.get("simulated").and_then(Json::as_u64).unwrap();
        assert_eq!(candidates, 5);
        assert_eq!(candidates, pruned + survivors);
        assert!(simulated <= survivors);

        let frontiers = response.get("frontiers").and_then(Json::as_array).unwrap();
        assert_eq!(frontiers.len(), 1);
        let points = frontiers[0].get("points").and_then(Json::as_array).unwrap();
        assert!(!points.is_empty(), "frontier must be nonempty");
        for p in points {
            assert_eq!(p.get("on_frontier"), Some(&Json::Bool(true)));
            let predicted = p.get("predicted_cycles").and_then(Json::as_u64).unwrap();
            let cycles = p.get("cycles").and_then(Json::as_u64).unwrap();
            assert!(predicted <= cycles, "prediction must stay a lower bound");
        }

        // The explore telemetry landed in the engine registry.
        let registry = engine.registry();
        let read = |name| registry.counter_value(name, &[]).unwrap_or(0);
        assert_eq!(
            read(scalesim::explore::telemetry_names::CANDIDATES),
            candidates
        );
        assert_eq!(read(scalesim::explore::telemetry_names::PRUNED), pruned);
        assert_eq!(
            read(scalesim::explore::telemetry_names::SIMULATED),
            simulated
        );
        engine.shutdown();
    }
}
