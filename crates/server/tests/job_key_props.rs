//! Property tests for the content-addressed job key: equivalent requests
//! must collide, distinct requests must not.

use std::collections::HashSet;

use proptest::prelude::*;

use scalesim_server::job::{JobKey, SimJob, Workload};

/// Table I keys the job model accepts, with a generator for plausible values.
const CONFIG_KEYS: [&str; 5] = [
    "ArrayHeight",
    "ArrayWidth",
    "IfmapSramSz",
    "FilterSramSz",
    "OfmapSramSz",
];

fn inline_job(csv: &str) -> SimJob {
    SimJob {
        workload: Workload::InlineCsv {
            name: "prop".into(),
            csv: csv.into(),
        },
        layer: None,
        config: Vec::new(),
        grid: (1, 1),
        dataflow: None,
        bandwidth: None,
        batch: None,
    }
}

fn key_of(job: &SimJob) -> JobKey {
    job.normalize().expect("job is valid").key()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reordering (rotating) the config override list never changes the key.
    fn config_key_order_is_irrelevant(
        values in prop::collection::vec(1u64..=512, 2..=5),
        rotation in 0usize..5,
    ) {
        let mut job = SimJob::builtin("alexnet");
        job.config = values
            .iter()
            .enumerate()
            .map(|(i, v)| (CONFIG_KEYS[i].to_string(), v.to_string()))
            .collect();
        let mut rotated = job.clone();
        let len = rotated.config.len();
        rotated.config.rotate_left(rotation % len);
        prop_assert_eq!(key_of(&job), key_of(&rotated));
    }

    /// Config key spelling is case-insensitive.
    fn config_key_case_is_irrelevant(
        value in 1u64..=512,
        which in 0usize..5,
    ) {
        let key = CONFIG_KEYS[which % CONFIG_KEYS.len()];
        let mut a = SimJob::builtin("alexnet");
        a.config = vec![(key.to_string(), value.to_string())];
        let mut b = SimJob::builtin("alexnet");
        b.config = vec![(key.to_ascii_lowercase(), value.to_string())];
        let mut c = SimJob::builtin("alexnet");
        c.config = vec![(key.to_ascii_uppercase(), value.to_string())];
        prop_assert_eq!(key_of(&a), key_of(&b));
        prop_assert_eq!(key_of(&a), key_of(&c));
    }

    /// Every accepted spelling of a dataflow maps to the same key, and the
    /// explicit default spelling equals no override at all.
    fn dataflow_spellings_are_equivalent(which in 0usize..3, case_flip in 0u8..2) {
        let spellings: [&[&str]; 3] = [
            &["os", "output_stationary"],
            &["ws", "weight_stationary"],
            &["is", "input_stationary"],
        ];
        let pair = spellings[which % 3];
        let mut keys = Vec::new();
        for spelling in pair {
            let mut job = SimJob::builtin("alexnet");
            let text = if case_flip == 1 {
                spelling.to_ascii_uppercase()
            } else {
                (*spelling).to_string()
            };
            job.dataflow = Some(text);
            keys.push(key_of(&job));
        }
        prop_assert_eq!(keys[0], keys[1]);
        if pair[0] == "os" {
            // OS is the paper's default dataflow.
            prop_assert_eq!(keys[0], key_of(&SimJob::builtin("alexnet")));
        }
    }

    /// Whitespace, trailing commas, comments and blank lines in an inline
    /// topology CSV never change the key.
    fn topology_csv_whitespace_is_irrelevant(
        ih in 4u64..=64,
        fh in 1u64..=3,
        channels in 1u64..=16,
        filters in 1u64..=16,
        pad in 0usize..6,
    ) {
        let iw = ih;
        let tight = format!("L0,{ih},{iw},{fh},{fh},{channels},{filters},1");
        let spaces = " ".repeat(pad);
        let loose = format!(
            "# generated\n\n  L0 ,{spaces}{ih} , {iw},{spaces}{fh}, {fh} , {channels} ,{filters} , 1 ,,\n\n"
        );
        prop_assert_eq!(key_of(&inline_job(&tight)), key_of(&inline_job(&loose)));
    }

    /// Semantically different jobs get different keys.
    fn different_jobs_differ(
        grid_a in 1u64..=4, grid_b in 1u64..=4,
        height in 4u64..=8,
    ) {
        prop_assume!(grid_a != grid_b);
        let csv = format!("L0,{height},{height},3,3,4,8,1");
        let mut a = inline_job(&csv);
        a.grid = (grid_a, 1);
        let mut b = inline_job(&csv);
        b.grid = (grid_b, 1);
        prop_assert_ne!(key_of(&a), key_of(&b));
    }
}

/// 10k-sample collision sweep: distinct jobs spanning grids, array shapes,
/// dataflows and layer geometries must produce 10k distinct FNV-128 keys.
#[test]
fn ten_thousand_distinct_jobs_no_collision() {
    let mut keys: HashSet<u128> = HashSet::with_capacity(10_000);
    let mut jobs = 0u32;
    'outer: for grid_r in 1u64..=5 {
        for grid_c in 1u64..=5 {
            for (di, df) in ["os", "ws", "is"].iter().enumerate() {
                for array in [4u64, 8, 16, 32, 64] {
                    for ih in 0..30u64 {
                        let mut job = inline_job(&format!(
                            "L0,{h},{h},3,3,{c},8,1",
                            h = 8 + ih,
                            c = 1 + di as u64,
                        ));
                        job.grid = (grid_r, grid_c);
                        job.dataflow = Some((*df).to_string());
                        job.config = vec![
                            ("ArrayHeight".into(), array.to_string()),
                            ("ArrayWidth".into(), array.to_string()),
                        ];
                        let key = key_of(&job);
                        assert!(
                            keys.insert(key.0),
                            "collision at job {jobs}: grid {grid_r}x{grid_c} df {df} \
                             array {array} ih {ih} -> {key}"
                        );
                        jobs += 1;
                        if jobs == 10_000 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(keys.len() as u32, jobs);
    assert!(jobs >= 10_000, "sweep produced only {jobs} jobs");
}
