//! Overload and shutdown behavior over real TCP sockets: queue-full
//! shedding (503 + `Retry-After`), request deadlines (504, result still
//! cached), graceful drain, slowloris/oversized-header rejection with
//! bounded memory, and telemetry on the malformed-request path.
//!
//! Slow simulations are staged with the engine's deterministic
//! [`FaultPlan`] hook instead of real heavy jobs, so every test is fast
//! and non-flaky.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use scalesim_server::http::client::{request, request_with_headers};
use scalesim_server::{
    Engine, EngineOptions, FaultPlan, Json, Server, ServerHandle, ServerOptions,
};

/// A distinct tiny inline job: varying `IfmapSramSz` changes the job key
/// while the workload name stays `tiny` (the fault plans key on it).
fn tiny_job(n: u64) -> String {
    format!(
        r#"{{"topology_name": "tiny", "topology_csv": "L1,8,8,3,3,4,8,1",
             "config": {{"ArrayHeight": 8, "ArrayWidth": 8, "IfmapSramSz": {n}}}}}"#
    )
}

fn start(options: ServerOptions, engine_options: EngineOptions, faults: FaultPlan) -> ServerHandle {
    let engine = Engine::with_options(engine_options);
    engine.inject_faults(faults);
    Server::bind_with("127.0.0.1:0", engine, options)
        .expect("bind ephemeral port")
        .spawn()
}

/// Writes raw bytes and reads whatever comes back until EOF/timeout.
/// Malformed-request tests need this: the well-formed client can't send
/// broken framing.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8], patience: Duration) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(patience)).unwrap();
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let mut response = Vec::new();
    // Reset or clean close are both acceptable ends of the exchange.
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

/// A burst of 4x the queue bound: the server sheds with 503 +
/// `Retry-After` instead of queueing without limit, serves what it
/// admitted, and counts the shed jobs in `/metrics`.
#[test]
fn burst_past_queue_bound_sheds_with_503() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 2,
        },
        FaultPlan::new().delay("tiny", Duration::from_millis(300)),
    );

    let responses: Vec<_> = std::thread::scope(|s| {
        (0..8)
            .map(|n| {
                let addr = handle.addr();
                s.spawn(move || {
                    request(addr, "POST", "/simulate", Some(&tiny_job(n))).expect("POST completes")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect()
    });

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert_eq!(ok + shed.len(), 8, "every request completed or was shed");
    assert!(ok >= 1, "the admitted jobs were served");
    assert!(!shed.is_empty(), "a 4x-queue-bound burst must shed");
    for r in &shed {
        let secs: u64 = r
            .header("retry-after")
            .expect("503 carries Retry-After")
            .parse()
            .expect("Retry-After is whole seconds");
        assert!(secs >= 1);
        let body = Json::parse(&r.body).expect("shed body is JSON");
        assert!(body
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("overloaded")));
    }

    let metrics = request(handle.addr(), "GET", "/metrics", None).unwrap();
    let line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("scalesim_jobs_shed_total"))
        .expect("shed counter exported");
    let count: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert_eq!(count as usize, shed.len());

    handle.stop();
}

/// The acceptance scenario: `X-Scalesim-Deadline-Ms: 1` on a cold
/// ResNet-50 job returns 504, the leader keeps simulating, and the same
/// job later returns 200 from the cache having simulated exactly once.
#[test]
fn expired_deadline_returns_504_and_still_caches() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 2,
            cache_capacity: 64,
            queue_depth: 64,
        },
        FaultPlan::new(),
    );
    let job = r#"{"network": "resnet50"}"#;

    let expired = request_with_headers(
        handle.addr(),
        "POST",
        "/simulate",
        Some(job),
        &[("X-Scalesim-Deadline-Ms", "1")],
    )
    .unwrap();
    assert_eq!(expired.status, 504, "body: {}", expired.body);
    assert!(expired.body.contains("deadline expired"));

    // No deadline header: the server default (120 s) applies; the request
    // joins the still-running leader or hits the cache — never re-runs.
    let served = request(handle.addr(), "POST", "/simulate", Some(job)).unwrap();
    assert_eq!(served.status, 200, "body: {}", served.body);
    let tag = served.header("X-Scalesim-Cache").expect("cache header");
    assert!(tag == "joined" || tag == "hit", "got {tag}");

    let stats = request(handle.addr(), "GET", "/stats", None).unwrap();
    let stats = Json::parse(&stats.body).unwrap();
    assert_eq!(stats.get("simulations").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats.get("deadline_expired").and_then(Json::as_u64),
        Some(1)
    );

    // A malformed deadline header never reaches the engine.
    let bad = request_with_headers(
        handle.addr(),
        "POST",
        "/simulate",
        Some(job),
        &[("X-Scalesim-Deadline-Ms", "soonish")],
    )
    .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("X-Scalesim-Deadline-Ms"));

    handle.stop();
}

/// Graceful drain: the in-flight request completes 200, `/healthz` reports
/// `draining`, new jobs shed with 503 while probes still answer, and the
/// listener is closed once drained.
#[test]
fn drain_completes_in_flight_work_and_sheds_new_jobs() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 8,
        },
        FaultPlan::new().delay("tiny", Duration::from_millis(600)),
    );
    let addr = handle.addr();

    let in_flight = std::thread::spawn(move || {
        request(addr, "POST", "/simulate", Some(&tiny_job(0))).expect("in-flight POST")
    });
    // Let the slow job reach the worker before draining.
    std::thread::sleep(Duration::from_millis(150));

    let drainer = std::thread::spawn(move || handle.drain(Duration::from_secs(10)));

    // While draining: probes answer and report it, new jobs shed.
    std::thread::sleep(Duration::from_millis(100));
    let health = request(addr, "GET", "/healthz", None).expect("healthz during drain");
    assert_eq!(health.status, 200);
    assert_eq!(
        Json::parse(&health.body)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("draining")
    );
    let refused = request(addr, "POST", "/simulate", Some(&tiny_job(1))).expect("shed POST");
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused.body.contains("shutting down"));

    let slow = in_flight.join().unwrap();
    assert_eq!(slow.status, 200, "in-flight work completed during drain");
    assert!(drainer.join().unwrap(), "drained within the grace period");

    // The listener is gone: new connections fail (allow a beat for the OS).
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if request(addr, "GET", "/healthz", None).is_err() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "listener still accepting after drain"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A header block sent without a line terminator stops buffering at the
/// 16 KiB cap (bounded memory) and is rejected promptly — no reading
/// "until newline" forever.
#[test]
fn oversized_headers_without_newline_are_rejected() {
    let handle = start(
        ServerOptions {
            socket_timeout: Duration::from_millis(500),
            ..ServerOptions::default()
        },
        EngineOptions::default(),
        FaultPlan::new(),
    );

    let flood = vec![b'A'; 64 * 1024];
    let started = Instant::now();
    let response = raw_exchange(handle.addr(), &flood, Duration::from_secs(5));
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "rejection must not wait for more input"
    );
    // The server answers 400 (`headers too large`); a peer that floods
    // past the cap may see a reset instead of the body — either way the
    // connection is over and the server stays healthy below.
    if !response.is_empty() {
        assert!(response.starts_with("HTTP/1.1 400"), "got: {response:.60}");
    }

    let health = request(handle.addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200, "server survived the flood");
    handle.stop();
}

/// A slowloris client that sends half a header then stalls is cut off by
/// the socket timeout, and the malformed-request path still emits the
/// request id and latency telemetry (the early-400 observability fix).
#[test]
fn stalled_and_malformed_requests_are_visible_telemetry() {
    let handle = start(
        ServerOptions {
            socket_timeout: Duration::from_millis(300),
            ..ServerOptions::default()
        },
        EngineOptions::default(),
        FaultPlan::new(),
    );

    // Stall mid-header: the read times out server-side and the connection
    // is torn down within the socket timeout (plus slack), not never.
    let started = Instant::now();
    let stalled = raw_exchange(
        handle.addr(),
        b"POST /simulate HTTP/1.1\r\nContent-Le",
        Duration::from_secs(5),
    );
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "stalled connection must be cut off by the socket timeout"
    );
    if !stalled.is_empty() {
        assert!(stalled.starts_with("HTTP/1.1 400"), "got: {stalled:.60}");
    }

    // A malformed request line gets the full response treatment: 400 with
    // a minted request id.
    let garbage = raw_exchange(handle.addr(), b"NONSENSE\r\n\r\n", Duration::from_secs(5));
    assert!(garbage.starts_with("HTTP/1.1 400"), "got: {garbage:.60}");
    assert!(
        garbage
            .to_ascii_lowercase()
            .contains("x-scalesim-request-id:"),
        "malformed requests still carry a request id"
    );

    // And it lands in the latency histogram under route="other".
    let metrics = request(handle.addr(), "GET", "/metrics", None).unwrap();
    let count = metrics
        .body
        .lines()
        .find(|l| l.starts_with(r#"scalesim_http_request_seconds_count{route="other"}"#))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse::<u64>().ok())
        .expect("route=other histogram exported");
    assert!(count >= 1, "malformed requests are counted");

    handle.stop();
}

/// Reads one route's `scalesim_http_request_seconds_count` value from a
/// `/metrics` body.
fn route_count(metrics: &str, route: &str) -> u64 {
    let prefix = format!(r#"scalesim_http_request_seconds_count{{route="{route}"}}"#);
    metrics
        .lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Early-shed 503s and `/explore` responses go through the same access
/// telemetry as every other path: each request — shed or served — counts
/// exactly once in its route's latency histogram.
#[test]
fn shed_and_explore_responses_share_the_access_telemetry() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 1,
        },
        FaultPlan::new().delay("tiny", Duration::from_millis(300)),
    );

    let responses: Vec<_> = std::thread::scope(|s| {
        (0..6)
            .map(|n| {
                let addr = handle.addr();
                s.spawn(move || {
                    request(addr, "POST", "/simulate", Some(&tiny_job(n))).expect("POST completes")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect()
    });
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert!(shed >= 1, "a 6-deep burst past queue depth 1 must shed");

    let explore_body = r#"{"name":"e","workloads":["TF1"],"budgets":[1024],
         "config":{"IfmapSramSz":64,"FilterSramSz":64,"OfmapSramSz":32},"jobs":1}"#;
    let explored = request(handle.addr(), "POST", "/explore", Some(explore_body)).unwrap();
    assert_eq!(explored.status, 200, "body: {}", explored.body);

    let metrics = request(handle.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(
        route_count(&metrics.body, "simulate"),
        6,
        "shed responses observe the simulate histogram like served ones"
    );
    assert_eq!(route_count(&metrics.body, "explore"), 1);

    handle.stop();
}

/// The flight recorder remembers recent jobs with route, request id and
/// outcome — including the 503-shed ones — and serves them over
/// `GET /debug/jobs`.
#[test]
fn debug_jobs_reports_shed_and_fresh_outcomes() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 1,
            cache_capacity: 16,
            queue_depth: 1,
        },
        FaultPlan::new().delay("tiny", Duration::from_millis(300)),
    );

    let responses: Vec<_> = std::thread::scope(|s| {
        (0..6)
            .map(|n| {
                let addr = handle.addr();
                s.spawn(move || {
                    request(addr, "POST", "/simulate", Some(&tiny_job(n))).expect("POST completes")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect()
    });
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert!(shed >= 1, "the burst must shed to exercise the recorder");

    let debug = request(handle.addr(), "GET", "/debug/jobs", None).unwrap();
    assert_eq!(debug.status, 200);
    let body = Json::parse(&debug.body).expect("debug body is JSON");
    let jobs = body.get("jobs").and_then(Json::as_array).expect("jobs[]");
    assert!(!jobs.is_empty(), "records were retained");

    let outcome_of = |j: &Json| j.get("outcome").and_then(Json::as_str).unwrap().to_owned();
    let shed_records: Vec<_> = jobs.iter().filter(|j| outcome_of(j) == "shed").collect();
    assert_eq!(shed_records.len(), shed, "every 503 left a shed record");
    for record in &shed_records {
        assert_eq!(
            record.get("route").and_then(Json::as_str),
            Some("/simulate")
        );
        let id = record.get("request_id").and_then(Json::as_str).unwrap();
        assert!(!id.is_empty(), "shed records carry the request id");
    }

    let fresh: Vec<_> = jobs.iter().filter(|j| outcome_of(j) == "fresh").collect();
    assert!(!fresh.is_empty(), "served jobs left fresh records");
    for record in &fresh {
        assert!(record.get("sim_micros").and_then(Json::as_u64).unwrap() > 0);
        let worker = record.get("worker").and_then(Json::as_str).unwrap();
        assert!(worker.starts_with("sim-worker"), "got worker `{worker}`");
    }

    handle.stop();
}

/// A worker panic (here injected, in production a simulator bug) must
/// surface to the client as a 500 with the panic payload — never a hang —
/// and leave a `failed` record in the flight recorder. The server keeps
/// serving afterwards.
#[test]
fn injected_panic_returns_500_and_a_failed_record() {
    let handle = start(
        ServerOptions::default(),
        EngineOptions {
            workers: 2,
            cache_capacity: 16,
            queue_depth: 8,
        },
        FaultPlan::new().panic("tiny", "injected worker panic"),
    );

    let started = Instant::now();
    let response = request(handle.addr(), "POST", "/simulate", Some(&tiny_job(0)))
        .expect("the panicking job still gets a response");
    assert_eq!(response.status, 500, "panic maps to 500: {}", response.body);
    assert!(
        response.body.contains("injected worker panic"),
        "500 body carries the panic payload: {}",
        response.body
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the panic path must answer promptly, not hang"
    );

    let debug = request(handle.addr(), "GET", "/debug/jobs", None).unwrap();
    let body = Json::parse(&debug.body).expect("debug body is JSON");
    let jobs = body.get("jobs").and_then(Json::as_array).expect("jobs[]");
    let failed = jobs
        .iter()
        .filter(|j| j.get("outcome").and_then(Json::as_str) == Some("failed"))
        .count();
    assert_eq!(failed, 1, "the panicked job left a failed record");

    // The pool survived the panic: a non-faulted workload still serves.
    let ok = request(
        handle.addr(),
        "POST",
        "/simulate",
        Some(r#"{"topology_name": "fine", "topology_csv": "L1,8,8,3,3,4,8,1"}"#),
    )
    .expect("follow-up job");
    assert_eq!(ok.status, 200, "workers keep serving after a panic");

    handle.stop();
}
