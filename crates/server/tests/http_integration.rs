//! Integration tests of the HTTP front end over real TCP sockets: an
//! ephemeral-port server, concurrent duplicate submissions, liveness under
//! load, and error paths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use scalesim_server::http::client::{request, request_with_headers, Response};
use scalesim_server::{Engine, Json, Server};

fn start_server(workers: usize) -> scalesim_server::ServerHandle {
    let engine = Engine::new(workers, 64);
    Server::bind("127.0.0.1:0", engine)
        .expect("bind ephemeral port")
        .spawn()
}

fn get(handle: &scalesim_server::ServerHandle, path: &str) -> Response {
    request(handle.addr(), "GET", path, None).expect("GET succeeds")
}

fn stats_field(handle: &scalesim_server::ServerHandle, field: &str) -> u64 {
    let response = get(handle, "/stats");
    assert_eq!(response.status, 200);
    Json::parse(&response.body)
        .expect("stats is JSON")
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {field} missing"))
}

/// The acceptance scenario: the same ResNet-50 layer job POSTed twice
/// concurrently runs one simulation, counts one cache hit, returns
/// byte-identical bodies — and `/healthz` answers 200 the whole time.
#[test]
fn concurrent_duplicate_posts_share_one_simulation() {
    let handle = start_server(4);
    let job = r#"{"network": "resnet50", "layer": "Conv1"}"#;

    let done = Arc::new(AtomicBool::new(false));
    let responses: Vec<Response> = std::thread::scope(|s| {
        let posts: Vec<_> = (0..2)
            .map(|_| {
                let addr = handle.addr();
                s.spawn(move || request(addr, "POST", "/simulate", Some(job)).expect("POST"))
            })
            .collect();
        // Liveness probe: hammer /healthz while the (multi-second) layer
        // simulation is in flight.
        let health_done = Arc::clone(&done);
        let addr = handle.addr();
        let health = s.spawn(move || {
            let mut probes = 0u32;
            while !health_done.load(Ordering::SeqCst) {
                let response = request(addr, "GET", "/healthz", None).expect("healthz");
                assert_eq!(response.status, 200);
                let health = Json::parse(&response.body).expect("healthz is JSON");
                assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
                assert!(health.get("version").is_some());
                assert!(health.get("uptime_seconds").is_some());
                probes += 1;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            probes
        });
        let responses = posts.into_iter().map(|p| p.join().unwrap()).collect();
        done.store(true, Ordering::SeqCst);
        assert!(health.join().unwrap() > 0, "healthz probed at least once");
        responses
    });

    for response in &responses {
        assert_eq!(response.status, 200, "body: {}", response.body);
    }
    assert_eq!(
        responses[0].body, responses[1].body,
        "duplicate jobs must return identical JSON bodies"
    );
    let tags: Vec<&str> = responses
        .iter()
        .map(|r| r.header("X-Scalesim-Cache").expect("cache header"))
        .collect();
    assert!(
        tags.contains(&"miss"),
        "one request must be the leader, got {tags:?}"
    );

    assert_eq!(stats_field(&handle, "simulations"), 1);
    assert_eq!(stats_field(&handle, "cache_hits"), 1);
    assert_eq!(stats_field(&handle, "accepted"), 2);
    assert_eq!(stats_field(&handle, "completed"), 2);

    // A third, later submission is a pure LRU hit with the same body.
    let third = request(handle.addr(), "POST", "/simulate", Some(job)).unwrap();
    assert_eq!(third.status, 200);
    assert_eq!(third.header("X-Scalesim-Cache"), Some("hit"));
    assert_eq!(third.body, responses[0].body);
    assert_eq!(stats_field(&handle, "simulations"), 1);
    assert_eq!(stats_field(&handle, "cache_hits"), 2);

    // The body carries the expected report fields.
    let body = Json::parse(&third.body).unwrap();
    assert_eq!(body.get("network").and_then(Json::as_str), Some("resnet50"));
    assert!(body.get("total_cycles").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        body.get("layers").and_then(Json::as_array).unwrap().len(),
        1
    );

    handle.stop();
}

#[test]
fn error_paths_return_clean_json() {
    let handle = start_server(1);

    let bad_json = request(handle.addr(), "POST", "/simulate", Some("{nope")).unwrap();
    assert_eq!(bad_json.status, 400);
    assert!(Json::parse(&bad_json.body).unwrap().get("error").is_some());

    let bad_net = request(
        handle.addr(),
        "POST",
        "/simulate",
        Some(r#"{"network": "skynet"}"#),
    )
    .unwrap();
    assert_eq!(bad_net.status, 400);
    assert!(bad_net.body.contains("unknown built-in workload"));

    let bad_layer = request(
        handle.addr(),
        "POST",
        "/simulate",
        Some(r#"{"network": "alexnet", "layer": "Conv99"}"#),
    )
    .unwrap();
    assert_eq!(bad_layer.status, 400);

    let missing = get(&handle, "/nope");
    assert_eq!(missing.status, 404);

    let delete = request(handle.addr(), "DELETE", "/simulate", None).unwrap();
    assert_eq!(delete.status, 405);

    // Nothing was accepted by the engine.
    assert_eq!(stats_field(&handle, "accepted"), 0);
    assert_eq!(stats_field(&handle, "simulations"), 0);

    handle.stop();
}

/// `/metrics` is a live Prometheus view of the service: outcome counters
/// move as `/simulate` requests complete, cache and per-layer simulator
/// series appear, and request ids are generated or echoed — all without
/// perturbing response bodies.
#[test]
fn metrics_reflect_completed_simulations() {
    let handle = start_server(2);
    let job = r#"{"topology_csv": "M1,8,8,3,3,4,8,1",
                  "config": {"ArrayHeight": 8, "ArrayWidth": 8}}"#;

    let first = request(handle.addr(), "POST", "/simulate", Some(job)).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("X-Scalesim-Cache"), Some("miss"));
    assert!(
        first.header("X-Scalesim-Request-Id").is_some(),
        "a request id is generated when the client sends none"
    );

    let second = request_with_headers(
        handle.addr(),
        "POST",
        "/simulate",
        Some(job),
        &[("X-Scalesim-Request-Id", "itest-42")],
    )
    .unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Scalesim-Cache"), Some("hit"));
    assert_eq!(
        second.header("X-Scalesim-Request-Id"),
        Some("itest-42"),
        "client request ids are echoed back"
    );
    assert_eq!(
        first.body, second.body,
        "telemetry must never leak into response bodies"
    );

    // The latency histogram is observed after the response bytes are
    // written, so poll briefly until both /simulate requests are recorded.
    let simulate_count = r#"scalesim_http_request_seconds_count{route="simulate"} 2"#;
    let mut metrics = get(&handle, "/metrics");
    for _ in 0..100 {
        if metrics.body.contains(simulate_count) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        metrics = get(&handle, "/metrics");
    }
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .header("content-type")
            .is_some_and(|t| t.starts_with("text/plain")),
        "exposition is text/plain"
    );
    let text = &metrics.body;
    // Engine registry: outcomes, dedup, cache, HTTP latency.
    assert!(text.contains("# TYPE scalesim_requests_total counter"));
    assert!(text.contains("scalesim_requests_total{outcome=\"fresh\"} 1\n"));
    assert!(text.contains("scalesim_requests_total{outcome=\"hit\"} 1\n"));
    assert!(text.contains("scalesim_simulations_total 1\n"));
    assert!(text.contains("scalesim_sim_seconds_count 1\n"));
    assert!(text.contains("scalesim_queue_wait_seconds_count 1\n"));
    assert!(text.contains("scalesim_cache_resident_entries 1\n"));
    assert!(text.contains("scalesim_cache_evictions_total 0\n"));
    assert!(text.contains(simulate_count));
    // Global simulator registry: the layer this test simulated.
    assert!(text.contains("scalesim_layer_cycles_total{layer=\"M1\"}"));
    assert!(text.contains("# TYPE scalesim_sim_phase_micros_total counter"));

    handle.stop();
}

/// `POST /sweep` over the wire: a small Fig. 11-style plan comes back in
/// plan order with a summary, repeated plans are served from the engine
/// cache, and sweep counters surface in `/metrics`.
#[test]
fn sweep_route_runs_plans_and_reuses_the_cache() {
    let handle = start_server(4);
    let plan = r#"{
        "name": "itest",
        "workloads": ["TF1"],
        "budgets": [1024],
        "config": {"IfmapSramSz": 64, "FilterSramSz": 64, "OfmapSramSz": 32}
    }"#;

    let first = request(handle.addr(), "POST", "/sweep", Some(plan)).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    let body = Json::parse(&first.body).unwrap();
    assert_eq!(body.get("plan").and_then(Json::as_str), Some("itest"));
    let points = body.get("points").and_then(Json::as_array).unwrap();
    assert_eq!(points.len(), 5);
    // Plan order: ascending partition count, monolithic first.
    assert_eq!(points[0].get("partitions").and_then(Json::as_u64), Some(1));
    assert_eq!(points[4].get("partitions").and_then(Json::as_u64), Some(16));
    let summary = body.get("summary").unwrap();
    assert_eq!(summary.get("simulations").and_then(Json::as_u64), Some(5));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(0));

    // Identical plan again: zero fresh simulations.
    let second = request(handle.addr(), "POST", "/sweep", Some(plan)).unwrap();
    assert_eq!(second.status, 200);
    let body = Json::parse(&second.body).unwrap();
    let summary = body.get("summary").unwrap();
    assert_eq!(summary.get("simulations").and_then(Json::as_u64), Some(0));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(5));

    // Sweep metrics appear alongside the engine's, labeled by route.
    let metrics = get(&handle, "/metrics");
    assert!(metrics.body.contains("scalesim_sweep_points_total 10"));
    assert!(metrics.body.contains("scalesim_sweep_simulations_total 5"));
    assert!(metrics.body.contains("scalesim_sweep_cache_hits_total 5"));
    assert!(metrics
        .body
        .contains("scalesim_sweep_point_seconds_count 5"));

    // Bad plans fail clean.
    let bad = request(handle.addr(), "POST", "/sweep", Some(r#"{"budgets":[2]}"#)).unwrap();
    assert_eq!(bad.status, 400);
    assert!(Json::parse(&bad.body).unwrap().get("error").is_some());

    handle.stop();
}

#[test]
fn explore_route_prunes_and_reports_a_frontier() {
    let handle = start_server(2);
    let plan = r#"{
        "name": "explore-itest",
        "workloads": ["TF1"],
        "budgets": [1024],
        "aspect": "all",
        "keep_within": 15,
        "jobs": 2,
        "config": {"IfmapSramSz": 64, "FilterSramSz": 64, "OfmapSramSz": 32}
    }"#;

    let response = request(handle.addr(), "POST", "/explore", Some(plan)).unwrap();
    assert_eq!(response.status, 200, "body: {}", response.body);
    let body = Json::parse(&response.body).unwrap();
    assert_eq!(
        body.get("plan").and_then(Json::as_str),
        Some("explore-itest")
    );
    let summary = body.get("summary").unwrap();
    let candidates = summary.get("candidates").and_then(Json::as_u64).unwrap();
    let pruned = summary.get("pruned").and_then(Json::as_u64).unwrap();
    let survivors = summary.get("survivors").and_then(Json::as_u64).unwrap();
    assert!(candidates > 0);
    assert_eq!(candidates, pruned + survivors);
    assert!(summary.get("analytical_error").is_some());
    let frontiers = body.get("frontiers").and_then(Json::as_array).unwrap();
    assert_eq!(frontiers.len(), 1);
    assert!(!frontiers[0]
        .get("points")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    // Explore metrics are exported on /metrics alongside the engine's.
    let metrics = get(&handle, "/metrics");
    assert!(metrics.body.contains("scalesim_explore_candidates_total"));
    assert!(metrics.body.contains("scalesim_explore_frontier_size"));

    // Bad explore knobs fail clean with a 400.
    let bad = request(
        handle.addr(),
        "POST",
        "/explore",
        Some(r#"{"workloads":["TF1"],"budgets":[1024],"keep_within":-2}"#),
    )
    .unwrap();
    assert_eq!(bad.status, 400);
    assert!(Json::parse(&bad.body).unwrap().get("error").is_some());

    handle.stop();
}

#[test]
fn inline_topology_round_trips_over_http() {
    let handle = start_server(2);
    let job = r#"{
        "topology_name": "tiny",
        "topology_csv": "L1,8,8,3,3,4,8,1\nL2,8,8,1,1,8,8,1",
        "config": {"ArrayHeight": 8, "ArrayWidth": 8},
        "dataflow": "ws",
        "grid": "2x2"
    }"#;
    let response = request(handle.addr(), "POST", "/simulate", Some(job)).unwrap();
    assert_eq!(response.status, 200, "body: {}", response.body);
    let body = Json::parse(&response.body).unwrap();
    assert_eq!(body.get("network").and_then(Json::as_str), Some("tiny"));
    let layers = body.get("layers").and_then(Json::as_array).unwrap();
    assert_eq!(layers.len(), 2);
    assert_eq!(layers[0].get("name").and_then(Json::as_str), Some("L1"));
    handle.stop();
}
