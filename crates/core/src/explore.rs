//! Analytical-guided design-space exploration: successive refinement from
//! the full cartesian candidate space down to a cycle-accurate Pareto
//! frontier.
//!
//! The paper's methodology (Sec. III–IV) is not "simulate everything": the
//! closed-form runtime model (Eqs. 1–4) bounds the design space first, and
//! cycle-accurate simulation is spent only where the analytical picture is
//! incomplete. [`ExploreEngine`] packages that workflow over a normal
//! [`SweepPlan`] in three stages:
//!
//! * **Stage 0 — analytical evaluation.** Every candidate point is scored
//!   with [`predict_cycles`], an exact reimplementation of the simulator's
//!   stall-free runtime (Eq. 3 summed over folds of the worst partition
//!   tile). Candidates are generated lazily through [`SweepPlan::points`],
//!   so million-point spaces never materialize.
//! * **Stage 1 — frontier pruning.** Per workload, the per-budget best
//!   predictions form a cost/runtime [`Frontier`]; only candidates within
//!   `keep_within` percent of the frontier at their budget (or cheaper)
//!   survive ([`Frontier::within_band`]). Survivors are ranked by
//!   predicted runtime.
//! * **Stage 2 — budgeted refinement.** Survivors are simulated through
//!   the shared [`SweepEngine`] (inheriting its result cache, the
//!   process-wide layer cache and crossbeam parallelism) in fixed-size
//!   batches. After each batch the measured frontier and the
//!   measured/predicted error distribution are updated, and the next batch
//!   is chosen by [`acquisition_score`] — the candidates whose corrected
//!   predictions fall furthest below the measured frontier, i.e. the
//!   largest analytical-vs-measured gaps in the frontier neighborhood.
//!
//! Determinism: with [`ExploreBudget::Sims`] (or unlimited), the same plan
//! and budget produce byte-identical output at any `jobs` count — batch
//! composition depends only on deterministic simulation results and ties
//! break on plan order. [`ExploreBudget::WallClock`] necessarily trades
//! that away: it stops at a machine-dependent batch boundary.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use scalesim_analytical::{
    acquisition_score, best_dataflow, exact_scaleup, AnalyticalModel, ErrorStats, Frontier,
    PartitionGrid,
};
use scalesim_systolic::ArrayShape;
use scalesim_telemetry::{Counter, Gauge, Histogram, Registry};
use scalesim_topology::{GemmShape, Topology};

use crate::report::NetworkReport;
use crate::sweep::{
    escape_json, sweep_row_fields, DataflowChoice, NullSink, PointSpec, SweepEngine, SweepError,
    SweepPlan,
};

/// Metric names the explore engine records. Part of the public API:
/// servers and dashboards read these back by name.
pub mod telemetry_names {
    /// Counter: candidate points evaluated analytically (stage 0).
    pub const CANDIDATES: &str = "scalesim_explore_candidates_total";
    /// Counter: candidates discarded by frontier pruning (stage 1).
    pub const PRUNED: &str = "scalesim_explore_pruned_total";
    /// Counter: candidates simulated cycle-accurately (stage 2).
    pub const SIMULATED: &str = "scalesim_explore_simulated_total";
    /// Histogram: wall time per stage, seconds, labeled `stage=analytical
    /// |prune|simulate`.
    pub const STAGE_SECONDS: &str = "scalesim_explore_stage_seconds";
    /// Gauge: measured-frontier points across workloads after the last
    /// explore run.
    pub const FRONTIER_SIZE: &str = "scalesim_explore_frontier_size";
}

/// How many survivors stage 2 simulates per refinement step. A fixed
/// constant — never derived from the worker count — so batch composition,
/// and therefore the output, is identical at any `jobs` value.
pub const REFINE_BATCH: usize = 8;

/// Stage-2 simulation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreBudget {
    /// Simulate every survivor (the refinement loop runs dry).
    Unlimited,
    /// At most this many survivor points go through cycle-accurate
    /// simulation (cache hits count: the budget bounds *points*, keeping
    /// the outcome independent of what earlier runs left in the caches).
    Sims(usize),
    /// Stop at the first batch boundary past this wall-clock duration.
    /// Best-effort: the measured set becomes machine-dependent, so the
    /// byte-identical-output contract does not apply.
    WallClock(Duration),
}

/// Explore parameters beyond the plan itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreOptions {
    /// Stage-1 slack band: survivors are within this percentage of the
    /// analytical frontier at their budget or cheaper.
    pub keep_within_pct: f64,
    /// Stage-2 simulation budget.
    pub budget: ExploreBudget,
    /// Parallel workers for stage-2 simulation batches.
    pub jobs: usize,
    /// Emit live progress lines on stderr: one per stage boundary plus
    /// one per refinement batch, with an ETA extrapolated from the
    /// stage-0 predicted-cycle totals. Off by default; when off the cost
    /// is one branch per batch.
    pub progress: bool,
}

impl Default for ExploreOptions {
    /// 10 % slack, unlimited simulation budget, single worker, no
    /// progress output.
    fn default() -> ExploreOptions {
        ExploreOptions {
            keep_within_pct: 10.0,
            budget: ExploreBudget::Unlimited,
            jobs: 1,
            progress: false,
        }
    }
}

/// The analytical lower bound the explore pipeline prunes with: the exact
/// stall-free cycles the simulator would report for `topology` on a
/// `grid` of `array`s — computed in closed form, no simulation.
///
/// Mirrors the simulator's partitioning convention exactly: the `M × N`
/// output space splits into `grid` tiles of at most
/// `⌈M/P_R⌉ × ⌈N/P_C⌉`; partitions run in parallel, so a layer costs its
/// largest tile, which is the first one. Under [`DataflowChoice::Auto`]
/// the per-layer dataflow is re-selected from the *unsplit* shape, exactly
/// as [`crate::Simulator`] does. Because fold cycles (Eq. 3) are monotone
/// in the spatial extents, the first tile dominates every edge tile, and
/// the sum over layers equals [`NetworkReport::total_cycles`] — the
/// stall-free component of the measured runtime. Memory stalls only add
/// cycles, so this never exceeds
/// [`NetworkReport::total_effective_cycles`].
///
/// ```
/// use scalesim::explore::predict_cycles;
/// use scalesim::{DataflowChoice, Simulator, SimConfig};
/// use scalesim_analytical::PartitionGrid;
/// use scalesim_systolic::ArrayShape;
/// use scalesim_topology::{Layer, Topology};
///
/// let topo = Topology::from_layers("t", vec![Layer::gemm("l0", 100, 32, 60)]);
/// let config = SimConfig { array: ArrayShape::new(16, 16), ..SimConfig::default() };
/// let grid = PartitionGrid::new(2, 2);
/// let predicted = predict_cycles(
///     &topo, config.array, grid, DataflowChoice::Fixed(config.dataflow));
/// let report = Simulator::new(config).with_grid(grid).run_topology(&topo);
/// assert_eq!(predicted, report.total_cycles());
/// ```
pub fn predict_cycles(
    topology: &Topology,
    array: ArrayShape,
    grid: PartitionGrid,
    dataflow: DataflowChoice,
) -> u64 {
    topology
        .layers()
        .iter()
        .map(|layer| {
            let shape = layer.shape();
            if shape.m == 0 || shape.k == 0 || shape.n == 0 {
                return 0;
            }
            let df = match dataflow {
                DataflowChoice::Fixed(df) => df,
                DataflowChoice::Auto => best_dataflow(shape, array, &AnalyticalModel).dataflow,
            };
            let tile = GemmShape::new(
                shape.m.div_ceil(grid.rows()),
                shape.k,
                shape.n.div_ceil(grid.cols()),
            );
            exact_scaleup(&tile.project(df), array)
        })
        .sum()
}

/// A candidate that survived stage-1 pruning, with its prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivorPoint {
    /// The design point (plan-order `index` preserved).
    pub spec: PointSpec,
    /// Stage-0 predicted stall-free cycles.
    pub predicted: u64,
}

/// A survivor that went through cycle-accurate simulation.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// The design point.
    pub spec: PointSpec,
    /// Stage-0 predicted stall-free cycles.
    pub predicted: u64,
    /// The full simulation report.
    pub report: Arc<NetworkReport>,
}

impl MeasuredPoint {
    /// Measured effective (stall-inclusive) cycles.
    pub fn measured(&self) -> u64 {
        self.report.total_effective_cycles()
    }

    /// Measured/predicted ratio — ≥ 1.0 by the lower-bound contract.
    pub fn error_ratio(&self) -> f64 {
        self.measured() as f64 / (self.predicted.max(1)) as f64
    }
}

/// The result of stages 0–1 alone: the analytical evaluation and pruning
/// of a plan's candidate space, before any simulation.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Candidate points evaluated analytically.
    pub candidates: usize,
    /// Survivors of the slack band, ranked by predicted runtime (plan
    /// order on ties).
    pub survivors: Vec<SurvivorPoint>,
    /// Wall-clock of stage 0 (lazy analytical evaluation), seconds.
    pub analytical_seconds: f64,
    /// Wall-clock of stage 1 (frontier construction + band), seconds.
    pub prune_seconds: f64,
}

/// Wall-clock spent per explore stage, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSeconds {
    /// Stage 0: lazy analytical evaluation of every candidate.
    pub analytical: f64,
    /// Stage 1: frontier construction and slack-band pruning.
    pub prune: f64,
    /// Stage 2: budgeted cycle-accurate refinement.
    pub simulate: f64,
}

/// The result of an explore run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The plan's name.
    pub plan_name: String,
    /// Candidate points evaluated analytically (stage 0).
    pub candidates: usize,
    /// Candidates discarded by frontier pruning (stage 1).
    pub pruned: usize,
    /// Survivors of pruning (`candidates - pruned`).
    pub survivors: usize,
    /// Survivor points actually simulated (bounded by the budget).
    pub simulated: usize,
    /// Points served by the sweep engine without a fresh simulation.
    pub cache_hits: u64,
    /// Simulated points in plan order.
    pub measured: Vec<MeasuredPoint>,
    /// Distribution of measured/predicted ratios over `measured`.
    pub error_stats: ErrorStats,
    /// Wall-clock per stage.
    pub stage_seconds: StageSeconds,
}

impl ExploreOutcome {
    /// The measured Pareto frontiers, one `(workload, points)` entry per
    /// workload in order of first appearance: the simulated points where
    /// spending more MACs strictly reduced effective cycles.
    pub fn frontiers(&self) -> Vec<(&str, Vec<&MeasuredPoint>)> {
        let mut order: Vec<&str> = Vec::new();
        let mut groups: HashMap<&str, Vec<&MeasuredPoint>> = HashMap::new();
        for point in &self.measured {
            let entry = groups.entry(point.spec.workload.as_str()).or_default();
            if entry.is_empty() {
                order.push(point.spec.workload.as_str());
            }
            entry.push(point);
        }
        order
            .into_iter()
            .map(|workload| {
                let mut members = groups.remove(workload).expect("group recorded in order");
                members.sort_by_key(|p| (p.spec.budget, p.measured(), p.spec.index));
                let mut frontier: Vec<&MeasuredPoint> = Vec::new();
                for point in members {
                    match frontier.last() {
                        Some(last) if point.measured() >= last.measured() => {}
                        _ => frontier.push(point),
                    }
                }
                (workload, frontier)
            })
            .collect()
    }

    /// Whether `point` (by plan index) is on its workload's measured
    /// frontier.
    fn on_frontier(&self, index: usize) -> bool {
        self.frontiers()
            .iter()
            .any(|(_, points)| points.iter().any(|p| p.spec.index == index))
    }

    /// Writes the measured points as CSV ([`EXPLORE_CSV_HEADER`] + one row
    /// per point, plan order).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_csv<W: io::Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(EXPLORE_CSV_HEADER.as_bytes())?;
        let on_frontier: Vec<bool> = self
            .measured
            .iter()
            .map(|p| self.on_frontier(p.spec.index))
            .collect();
        for (point, frontier) in self.measured.iter().zip(on_frontier) {
            let (prefix, suffix) = sweep_row_fields(&point.spec, &point.report);
            writeln!(
                writer,
                "{prefix},{},{suffix},{}",
                point.predicted, frontier as u8
            )?;
        }
        writer.flush()
    }

    /// Writes the measured points as JSON Lines: one object per point,
    /// fixed key order, plan order.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: io::Write>(&self, mut writer: W) -> io::Result<()> {
        for point in &self.measured {
            let report = &point.report;
            writeln!(
                writer,
                "{{\"workload\":\"{}\",\"budget\":{},\"partitions\":{},\"grid\":\"{}\",\
                 \"array\":\"{}\",\"dataflow\":\"{}\",\"predicted_cycles\":{},\"cycles\":{},\
                 \"effective_cycles\":{},\"macs\":{},\"overall_util\":{:.4},\"dram_bytes\":{},\
                 \"peak_bw_bytes_per_cycle\":{:.3},\"energy\":{:.1},\"on_frontier\":{}}}",
                escape_json(&point.spec.workload),
                point.spec.budget,
                point.spec.partitions(),
                point.spec.grid,
                point.spec.array,
                point.spec.dataflow,
                point.predicted,
                report.total_cycles(),
                report.total_effective_cycles(),
                report.total_macs(),
                report.overall_utilization(),
                report.total_dram_bytes(),
                report.peak_required_bandwidth(),
                report.total_energy().total(),
                self.on_frontier(point.spec.index),
            )?;
        }
        writer.flush()
    }
}

/// The CSV columns emitted by [`ExploreOutcome::write_csv`], terminated by
/// a newline. The sweep columns plus the stage-0 prediction and a
/// frontier-membership flag.
pub const EXPLORE_CSV_HEADER: &str = "workload,budget,partitions,grid,array,dataflow,\
     predicted_cycles,cycles,effective_cycles,macs,overall_util,dram_bytes,\
     peak_bw_bytes_per_cycle,energy,on_frontier\n";

/// The successive-refinement executor. Wraps a [`SweepEngine`] (stage-2
/// simulation inherits its result cache and telemetry) and adds the
/// explore counters.
pub struct ExploreEngine {
    sweep: SweepEngine,
    candidates: Arc<Counter>,
    pruned: Arc<Counter>,
    simulated: Arc<Counter>,
    frontier_size: Arc<Gauge>,
    stage_analytical: Arc<Histogram>,
    stage_prune: Arc<Histogram>,
    stage_simulate: Arc<Histogram>,
}

impl ExploreEngine {
    /// An engine whose stage-2 sweep caches up to `cache_capacity`
    /// distinct results, with telemetry in the process-global registry.
    pub fn new(cache_capacity: usize) -> ExploreEngine {
        ExploreEngine::with_registry(cache_capacity, scalesim_telemetry::global())
    }

    /// An engine recording its metrics into `registry`.
    pub fn with_registry(cache_capacity: usize, registry: &Registry) -> ExploreEngine {
        let stage = |label: &str| {
            registry.histogram_with(
                telemetry_names::STAGE_SECONDS,
                "Wall time per explore stage.",
                &Histogram::duration_buckets(),
                &[("stage", label)],
            )
        };
        ExploreEngine {
            sweep: SweepEngine::with_registry(cache_capacity, registry),
            candidates: registry.counter(
                telemetry_names::CANDIDATES,
                "Explore candidates evaluated analytically.",
            ),
            pruned: registry.counter(
                telemetry_names::PRUNED,
                "Explore candidates discarded by frontier pruning.",
            ),
            simulated: registry.counter(
                telemetry_names::SIMULATED,
                "Explore candidates simulated cycle-accurately.",
            ),
            frontier_size: registry.gauge(
                telemetry_names::FRONTIER_SIZE,
                "Measured-frontier points across workloads, last explore run.",
            ),
            stage_analytical: stage("analytical"),
            stage_prune: stage("prune"),
            stage_simulate: stage("simulate"),
        }
    }

    /// The wrapped sweep engine (e.g. to inspect its result cache).
    pub fn sweep_engine(&self) -> &SweepEngine {
        &self.sweep
    }

    /// Installs a fault-injection plan on the wrapped sweep engine, so
    /// tests can panic or delay stage-2 simulations. See
    /// [`crate::exec::FaultPlan`]; an empty plan clears injection.
    pub fn inject_faults(&self, plan: crate::exec::FaultPlan) {
        self.sweep.inject_faults(plan);
    }

    /// Runs stages 0–1 only: analytically evaluates every candidate and
    /// prunes to the slack band around the per-workload frontier. This is
    /// the shared front half of [`ExploreEngine::run`], public so callers
    /// can inspect (or exhaustively simulate) the surviving region.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] for invalid plans.
    pub fn prune(
        &self,
        plan: &SweepPlan,
        keep_within_pct: f64,
    ) -> Result<PruneOutcome, SweepError> {
        // Stage 0: lazy analytical evaluation. One u64 per candidate is
        // the only allocation proportional to the space.
        let stage0_span = scalesim_telemetry::trace::span("explore.stage0");
        let started = Instant::now();
        let topologies: HashMap<&str, &Topology> = plan
            .workloads
            .iter()
            .map(|w| (w.label.as_str(), &w.topology))
            .collect();
        let mut predictions: Vec<u64> = Vec::with_capacity(plan.points()?.len());
        // (workload label, budget) -> minimum prediction.
        let mut best: HashMap<(String, u64), u64> = HashMap::new();
        for spec in plan.points()? {
            let predicted = predict_cycles(
                topologies[spec.workload.as_str()],
                spec.array,
                spec.grid,
                spec.dataflow,
            );
            predictions.push(predicted);
            best.entry((spec.workload, spec.budget))
                .and_modify(|b| *b = (*b).min(predicted))
                .or_insert(predicted);
        }
        let candidates = predictions.len();
        self.candidates.add(candidates as u64);
        let analytical_seconds = started.elapsed().as_secs_f64();
        self.stage_analytical.observe(analytical_seconds);
        drop(stage0_span);

        // Stage 1: per-workload analytical frontiers; keep the slack band.
        let stage1_span = scalesim_telemetry::trace::span("explore.stage1");
        let started = Instant::now();
        let mut frontiers: HashMap<&str, Frontier> = HashMap::new();
        for w in &plan.workloads {
            let points = best
                .iter()
                .filter(|((label, _), _)| label == &w.label)
                .map(|(&(_, budget), &cycles)| (budget, cycles));
            frontiers.insert(w.label.as_str(), Frontier::build(points));
        }
        let mut survivors: Vec<SurvivorPoint> = Vec::new();
        for (spec, &predicted) in plan.points()?.zip(&predictions) {
            let frontier = &frontiers[spec.workload.as_str()];
            if frontier.within_band(spec.budget, predicted, keep_within_pct) {
                survivors.push(SurvivorPoint { spec, predicted });
            }
        }
        self.pruned.add((candidates - survivors.len()) as u64);
        // Rank by predicted runtime, plan order on ties.
        survivors.sort_by_key(|s| (s.predicted, s.spec.index));
        let prune_seconds = started.elapsed().as_secs_f64();
        self.stage_prune.observe(prune_seconds);
        drop(stage1_span);

        Ok(PruneOutcome {
            candidates,
            survivors,
            analytical_seconds,
            prune_seconds,
        })
    }

    /// Runs the three-stage refinement over `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] for invalid plans.
    pub fn run(
        &self,
        plan: &SweepPlan,
        options: &ExploreOptions,
    ) -> Result<ExploreOutcome, SweepError> {
        let _run_span = scalesim_telemetry::trace::span("explore.run");
        let pruned_space = self.prune(plan, options.keep_within_pct)?;
        let candidates = pruned_space.candidates;
        let survivor_count = pruned_space.survivors.len();
        let pruned = candidates - survivor_count;
        if options.progress {
            eprintln!(
                "explore {}: stage 0 evaluated {candidates} candidates in {:.2}s",
                plan.name, pruned_space.analytical_seconds,
            );
            eprintln!(
                "explore {}: stage 1 kept {survivor_count}/{candidates} ({pruned} pruned, {:.1}%)",
                plan.name,
                100.0 * pruned as f64 / candidates.max(1) as f64,
            );
        }
        let mut stage_seconds = StageSeconds {
            analytical: pruned_space.analytical_seconds,
            prune: pruned_space.prune_seconds,
            simulate: 0.0,
        };

        // Stage 2: budgeted refinement through the sweep engine.
        let stage2_span = scalesim_telemetry::trace::span("explore.stage2");
        let started = Instant::now();
        let mut remaining = pruned_space.survivors;
        let mut measured: Vec<MeasuredPoint> = Vec::new();
        let mut cache_hits = 0u64;
        let sims_allowed = match options.budget {
            ExploreBudget::Sims(n) => n,
            ExploreBudget::Unlimited | ExploreBudget::WallClock(_) => usize::MAX,
        };
        // Progress bookkeeping: ETA extrapolates wall time per predicted
        // cycle over the predicted cycles still queued for measurement.
        let target = remaining.len().min(sims_allowed);
        let predicted_total: u128 = if options.progress {
            // Cap at the sims budget: the cheapest-predicted points go
            // first, so the first `target` entries approximate the set
            // that will actually be measured.
            remaining
                .iter()
                .take(target)
                .map(|s| u128::from(s.predicted))
                .sum()
        } else {
            0
        };
        let mut predicted_done: u128 = 0;
        while !remaining.is_empty() && measured.len() < sims_allowed {
            if let ExploreBudget::WallClock(limit) = options.budget {
                if started.elapsed() >= limit {
                    break;
                }
            }
            let take = REFINE_BATCH
                .min(remaining.len())
                .min(sims_allowed - measured.len());
            // Acquisition ordering: before any measurement the predicted
            // ranking stands; afterwards, corrected predictions furthest
            // below the measured frontier come first.
            if !measured.is_empty() {
                let global = median_ratio(measured.iter());
                let corrections: HashMap<&str, f64> = plan
                    .workloads
                    .iter()
                    .map(|w| {
                        let of_workload = measured.iter().filter(|p| p.spec.workload == w.label);
                        let ratio = if of_workload.clone().next().is_some() {
                            median_ratio(of_workload)
                        } else {
                            global
                        };
                        (w.label.as_str(), ratio)
                    })
                    .collect();
                let measured_frontiers: HashMap<&str, Frontier> = plan
                    .workloads
                    .iter()
                    .map(|w| {
                        let points = measured
                            .iter()
                            .filter(|p| p.spec.workload == w.label)
                            .map(|p| (p.spec.budget, p.measured()));
                        (w.label.as_str(), Frontier::build(points))
                    })
                    .collect();
                remaining.sort_by(|a, b| {
                    let score = |s: &SurvivorPoint| {
                        acquisition_score(
                            s.spec.budget,
                            s.predicted,
                            corrections[s.spec.workload.as_str()],
                            &measured_frontiers[s.spec.workload.as_str()],
                        )
                    };
                    score(b)
                        .total_cmp(&score(a))
                        .then(a.spec.index.cmp(&b.spec.index))
                });
            }
            let batch: Vec<SurvivorPoint> = remaining.drain(..take).collect();
            let specs: Vec<PointSpec> = batch.iter().map(|s| s.spec.clone()).collect();
            let outcome = self
                .sweep
                .run_points(plan, specs, options.jobs, &mut NullSink)?;
            cache_hits += outcome.cache_hits;
            for (survivor, result) in batch.into_iter().zip(outcome.results) {
                predicted_done += u128::from(survivor.predicted);
                measured.push(MeasuredPoint {
                    spec: survivor.spec,
                    predicted: survivor.predicted,
                    report: result.report,
                });
            }
            if options.progress {
                let elapsed = started.elapsed().as_secs_f64();
                let eta = if predicted_done > 0 {
                    elapsed / predicted_done as f64
                        * predicted_total.saturating_sub(predicted_done) as f64
                } else {
                    0.0
                };
                eprintln!(
                    "explore {}: stage 2 measured {}/{target} points ({cache_hits} cache hits), ETA {eta:.0}s",
                    plan.name,
                    measured.len(),
                );
            }
        }
        drop(stage2_span);
        measured.sort_by_key(|p| p.spec.index);
        let simulated = measured.len();
        self.simulated.add(simulated as u64);
        stage_seconds.simulate = started.elapsed().as_secs_f64();
        self.stage_simulate.observe(stage_seconds.simulate);

        let error_stats =
            ErrorStats::from_ratios(measured.iter().map(|p| p.error_ratio()).collect());
        let outcome = ExploreOutcome {
            plan_name: plan.name.clone(),
            candidates,
            pruned,
            survivors: survivor_count,
            simulated,
            cache_hits,
            measured,
            error_stats,
            stage_seconds,
        };
        let frontier_points: usize = outcome.frontiers().iter().map(|(_, p)| p.len()).sum();
        self.frontier_size.set(frontier_points as i64);
        Ok(outcome)
    }
}

/// Median measured/predicted ratio over an iterator of measured points.
fn median_ratio<'a>(points: impl Iterator<Item = &'a MeasuredPoint>) -> f64 {
    ErrorStats::from_ratios(points.map(MeasuredPoint::error_ratio).collect()).p50
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use crate::sweep::{AspectAxis, SweepWorkload};
    use scalesim_topology::{Dataflow, Layer};

    fn synthetic_plan(bandwidth: Option<f64>) -> SweepPlan {
        let mut plan = SweepPlan::new("explore-test");
        plan.base.dram_bandwidth = bandwidth;
        for (i, (m, k, n)) in [(100u64, 32u64, 60u64), (48, 96, 24), (320, 16, 120)]
            .iter()
            .enumerate()
        {
            let label = format!("G{i}");
            plan.workloads.push(SweepWorkload {
                label: label.clone(),
                topology: Topology::from_layers(&label, vec![Layer::gemm("l0", *m, *k, *n)]),
            });
        }
        plan.budgets = vec![1 << 10, 1 << 12];
        plan.aspects = AspectAxis::All;
        plan.dataflows = vec![
            DataflowChoice::Fixed(Dataflow::OutputStationary),
            DataflowChoice::Auto,
        ];
        plan
    }

    #[test]
    fn prediction_matches_simulator_stall_free_cycles() {
        let plan = synthetic_plan(Some(16.0));
        for spec in plan.points().unwrap() {
            let w = plan
                .workloads
                .iter()
                .find(|w| w.label == spec.workload)
                .unwrap();
            let predicted = predict_cycles(&w.topology, spec.array, spec.grid, spec.dataflow);
            let config = spec.config(&plan.base);
            let mut sim = Simulator::new(config).with_grid(spec.grid);
            if spec.dataflow == DataflowChoice::Auto {
                sim = sim.with_auto_dataflow();
            }
            let report = sim.run_topology(&w.topology);
            assert_eq!(
                predicted,
                report.total_cycles(),
                "stall-free mismatch at {spec:?}"
            );
            assert!(
                predicted <= report.total_effective_cycles(),
                "lower bound violated at {spec:?}"
            );
        }
    }

    /// Compares explore's frontiers against frontiers rebuilt from an
    /// independent exhaustive sweep of `specs`.
    fn assert_frontiers_match(plan: &SweepPlan, outcome: &ExploreOutcome, specs: Vec<PointSpec>) {
        let sweep = SweepEngine::with_registry(1024, &Registry::new());
        let all = sweep
            .run_points(plan, specs, 1, &mut crate::sweep::NullSink)
            .unwrap();
        let mut exhaustive: HashMap<&str, Vec<(u64, u64)>> = HashMap::new();
        for r in &all.results {
            exhaustive
                .entry(r.spec.workload.as_str())
                .or_default()
                .push((r.spec.budget, r.report.total_effective_cycles()));
        }
        for (workload, points) in exhaustive {
            let full = Frontier::build(points);
            let explored = outcome
                .frontiers()
                .into_iter()
                .find(|(w, _)| *w == workload)
                .map(|(_, pts)| Frontier::build(pts.iter().map(|p| (p.spec.budget, p.measured()))))
                .unwrap();
            assert_eq!(explored, full, "frontier diverged for {workload}");
        }
    }

    #[test]
    fn explore_recovers_exhaustive_frontier_of_surviving_region() {
        // Bandwidth on, so effective cycles > predicted and the band
        // genuinely matters.
        let plan = synthetic_plan(Some(8.0));
        let options = ExploreOptions {
            keep_within_pct: 10.0,
            budget: ExploreBudget::Unlimited,
            jobs: 2,
            progress: false,
        };
        let engine = ExploreEngine::with_registry(1024, &Registry::new());
        let outcome = engine.run(&plan, &options).unwrap();
        assert_eq!(outcome.candidates, plan.expand().unwrap().len());
        assert_eq!(outcome.candidates, outcome.pruned + outcome.survivors);
        assert_eq!(outcome.simulated, outcome.survivors); // unlimited budget

        // The surviving region, recomputed independently.
        let survivors = ExploreEngine::with_registry(64, &Registry::new())
            .prune(&plan, options.keep_within_pct)
            .unwrap()
            .survivors;
        assert_eq!(survivors.len(), outcome.survivors);
        assert_frontiers_match(
            &plan,
            &outcome,
            survivors.into_iter().map(|s| s.spec).collect(),
        );
    }

    #[test]
    fn wide_band_explore_recovers_the_full_space_frontier() {
        // With an unbounded band nothing is pruned, so explore's frontier
        // must equal the frontier of the full exhaustive sweep — the same
        // answer through two different pipelines.
        let plan = synthetic_plan(Some(8.0));
        let options = ExploreOptions {
            keep_within_pct: 1e9,
            budget: ExploreBudget::Unlimited,
            jobs: 2,
            progress: false,
        };
        let engine = ExploreEngine::with_registry(1024, &Registry::new());
        let outcome = engine.run(&plan, &options).unwrap();
        assert_eq!(outcome.pruned, 0);
        assert_frontiers_match(&plan, &outcome, plan.expand().unwrap());
    }

    #[test]
    fn sims_budget_is_respected_and_deterministic_across_jobs() {
        let plan = synthetic_plan(Some(8.0));
        let options = |jobs| ExploreOptions {
            keep_within_pct: 25.0,
            budget: ExploreBudget::Sims(10),
            jobs,
            progress: false,
        };
        let run = |jobs| {
            let engine = ExploreEngine::with_registry(256, &Registry::new());
            let outcome = engine.run(&plan, &options(jobs)).unwrap();
            let mut csv = Vec::new();
            outcome.write_csv(&mut csv).unwrap();
            (outcome.simulated, csv)
        };
        let (sims1, csv1) = run(1);
        let (sims4, csv4) = run(4);
        assert_eq!(sims1, 10);
        assert_eq!(sims1, sims4);
        assert_eq!(csv1, csv4, "explore output must not depend on jobs");
    }

    #[test]
    fn pruning_shrinks_with_tighter_band() {
        let plan = synthetic_plan(None);
        let run = |pct| {
            let engine = ExploreEngine::with_registry(256, &Registry::new());
            let outcome = engine
                .run(
                    &plan,
                    &ExploreOptions {
                        keep_within_pct: pct,
                        budget: ExploreBudget::Sims(0),
                        jobs: 1,
                        progress: false,
                    },
                )
                .unwrap();
            outcome.survivors
        };
        assert!(run(0.0) <= run(50.0));
        assert!(run(50.0) <= run(1e9));
    }

    #[test]
    fn error_stats_respect_the_lower_bound() {
        let plan = synthetic_plan(Some(4.0));
        let engine = ExploreEngine::with_registry(256, &Registry::new());
        let outcome = engine.run(&plan, &ExploreOptions::default()).unwrap();
        assert!(outcome.error_stats.count > 0);
        assert!(outcome.error_stats.p50 >= 1.0);
        assert!(outcome.error_stats.p95 >= outcome.error_stats.p50);
        for point in &outcome.measured {
            assert!(point.predicted <= point.measured());
        }
    }

    #[test]
    fn csv_output_shape() {
        let plan = synthetic_plan(None);
        let engine = ExploreEngine::with_registry(256, &Registry::new());
        let outcome = engine.run(&plan, &ExploreOptions::default()).unwrap();
        let mut csv = Vec::new();
        outcome.write_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            EXPLORE_CSV_HEADER.trim_end_matches('\n')
        );
        assert_eq!(lines.count(), outcome.simulated);
        assert!(text.contains(",1\n") || text.contains(",0\n"));

        let mut jsonl = Vec::new();
        outcome.write_jsonl(&mut jsonl).unwrap();
        let text = String::from_utf8(jsonl).unwrap();
        assert_eq!(text.lines().count(), outcome.simulated);
        assert!(text.lines().all(|l| l.contains("\"predicted_cycles\":")));
    }

    #[test]
    fn telemetry_counters_add_up() {
        let registry = Registry::new();
        let plan = synthetic_plan(None);
        let engine = ExploreEngine::with_registry(256, &registry);
        let outcome = engine
            .run(
                &plan,
                &ExploreOptions {
                    keep_within_pct: 10.0,
                    budget: ExploreBudget::Sims(5),
                    jobs: 2,
                    progress: false,
                },
            )
            .unwrap();
        let read = |name| registry.counter_value(name, &[]).unwrap();
        assert_eq!(read(telemetry_names::CANDIDATES), outcome.candidates as u64);
        assert_eq!(read(telemetry_names::PRUNED), outcome.pruned as u64);
        assert_eq!(read(telemetry_names::SIMULATED), outcome.simulated as u64);
    }
}
