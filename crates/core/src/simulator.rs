//! The simulator facade: one layer or a whole topology, monolithic or
//! partitioned, cycle-accurate compute plus the DRAM interface model.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use scalesim_analytical::PartitionGrid;
use scalesim_energy::EnergyModel;
use scalesim_memory::{
    AddressMap, ConvAddressMap, DramModel, DramSummary, DramTraceWriter, GemmAddressMap,
    StallModel, StallSummary, SubGemmMap,
};
use scalesim_systolic::{
    analyze, fold_demand_runs_in, fold_demands, simulate, ComputeReport, CsvTraceSink, SramCounts,
};
use scalesim_topology::{GemmShape, Layer, Topology};

use crate::config::SimConfig;
use crate::layer_cache;
use crate::report::{LayerReport, NetworkReport};

/// The SCALE-Sim simulator: a hardware configuration bound to an optional
/// partition grid and an energy model.
///
/// With the default 1×1 grid this is the classic monolithic tool; with a
/// larger grid every layer's output space is tiled across `P_R × P_C`
/// identical arrays that execute in parallel, with the SRAM budget divided
/// evenly (Sections III-C / IV-A of the paper). Partitions are simulated
/// concurrently on OS threads.
///
/// See the crate-level docs for examples.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    grid: PartitionGrid,
    energy_model: EnergyModel,
    auto_dataflow: bool,
}

impl Simulator {
    /// Creates a monolithic simulator for `config`.
    pub fn new(config: SimConfig) -> Self {
        Simulator {
            config,
            grid: PartitionGrid::monolithic(),
            energy_model: EnergyModel::default(),
            auto_dataflow: false,
        }
    }

    /// Runs on a `P_R × P_C` partition grid instead of a single array.
    pub fn with_grid(mut self, grid: PartitionGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Overrides the energy constants.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Selects the fastest dataflow *per layer* (by the analytical model,
    /// Sec. III-B) instead of the configured one. Models a mapper that is
    /// free to re-map every layer — the configured dataflow becomes a
    /// fallback label only.
    pub fn with_auto_dataflow(mut self) -> Self {
        self.auto_dataflow = true;
        self
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The partition grid.
    pub fn grid(&self) -> PartitionGrid {
        self.grid
    }

    /// The configuration `layer` actually runs with: under
    /// [`Simulator::with_auto_dataflow`] the dataflow is re-selected per
    /// layer by the analytical model, otherwise the configured one is kept.
    ///
    /// [`Simulator::run_layer`], [`Simulator::write_traces`] and
    /// [`Simulator::write_dram_traces`] all route through this, so reports
    /// and exported traces always describe the same schedule.
    pub fn effective_config(&self, layer: &Layer) -> SimConfig {
        if self.auto_dataflow {
            let best = scalesim_analytical::best_dataflow(
                layer.shape(),
                self.config.array,
                &scalesim_analytical::AnalyticalModel,
            );
            SimConfig {
                dataflow: best.dataflow,
                ..self.config
            }
        } else {
            self.config
        }
    }

    /// Simulates one layer end to end: cycle-accurate compute schedule plus
    /// the double-buffered DRAM interface model, per partition, aggregated.
    ///
    /// Telemetry: records wall time, cycle totals and per-phase (compute /
    /// dram / energy) timings into the
    /// [`scalesim_telemetry::global`] registry under the metric names in
    /// [`telemetry_names`].
    pub fn run_layer(&self, layer: &Layer) -> LayerReport {
        let started = Instant::now();
        let _span = scalesim_telemetry::span!("run_layer", layer = layer.name());
        let phases = PhaseNanos::default();
        let shape = layer.shape();
        let config = self.effective_config(layer);

        // Sub-problem memoization: the result is a pure function of
        // (geometry, effective config, grid, energy constants) — the name
        // is a label. Whole networks repeat shapes, and sweeps re-run the
        // unchanged layers of neighbouring design points, so this removes
        // entire simulations from the cold path.
        let cache_key = layer_cache::key(&config, self.grid, &self.energy_model, layer);
        let registry = scalesim_telemetry::global();
        let cached = {
            let _phase = scalesim_telemetry::trace::span("phase.cache_probe");
            layer_cache::lookup(cache_key)
        };
        if let Some(cached) = cached {
            registry
                .counter(
                    telemetry_names::LAYER_CACHE_HITS,
                    "Layer simulations answered from the layer-result cache.",
                )
                .inc();
            let mut report = (*cached).clone();
            report.name = layer.name().to_owned();
            // A hit is still a simulated layer as far as observers are
            // concerned: cycle/energy/traffic totals must keep adding up.
            record_layer_telemetry(&report, started.elapsed(), &phases);
            return report;
        }
        registry
            .counter(
                telemetry_names::LAYER_CACHE_MISSES,
                "Layer simulations that ran the full cold path.",
            )
            .inc();

        let map = layer_map(layer, &config);
        let tiles = partition_tiles(shape, self.grid);
        let provisioned = self.grid.count();

        // Each partition gets an even share of the interface bandwidth.
        let per_partition_bw = config.dram_bandwidth.map(|bw| bw / provisioned as f64);
        let volume = DemandVolume::default();
        let results = run_partitions(
            &tiles,
            &*map,
            shape,
            &config,
            provisioned,
            per_partition_bw,
            &phases,
            &volume,
        );
        record_demand_telemetry(&volume);

        // Aggregate across partitions, consuming the per-partition results
        // in place rather than cloning summaries out of them.
        let active_partitions = results.len();
        let mut per_partition_cycles = Vec::with_capacity(active_partitions);
        let mut sram = SramCounts::default();
        let mut dram = DramSummary::default();
        let mut mapping_util_sum = 0.0;
        let mut total_cycles = 0u64;
        let mut worst_stall: Option<StallSummary> = None;
        for (compute, part_dram, part_stall) in results {
            per_partition_cycles.push(compute.total_cycles);
            total_cycles = total_cycles.max(compute.total_cycles);
            sram.a_reads += compute.sram.a_reads;
            sram.b_reads += compute.sram.b_reads;
            sram.o_reads += compute.sram.o_reads;
            sram.o_writes += compute.sram.o_writes;
            mapping_util_sum += compute.mapping_utilization;
            if dram.folds == 0 && dram.total_accesses() == 0 {
                dram = part_dram;
            } else {
                dram.merge_concurrent(&part_dram);
            }
            if let Some(ps) = part_stall {
                let slower = match &worst_stall {
                    Some(ws) => ps.stalled_cycles > ws.stalled_cycles,
                    None => true,
                };
                if slower {
                    worst_stall = Some(ps);
                }
            }
        }
        // Report the stall result at the layer level: the slowest
        // partition gates the layer, and the configured (total) bandwidth
        // is what the user asked about. Bus utilization must be recomputed
        // in the same scope — the worst partition's figure measures its
        // traffic against its 1/P bandwidth share, not against the total
        // interface the summary reports.
        let stall = worst_stall.map(|ws| {
            let bandwidth = config.dram_bandwidth.expect("stall implies bandwidth");
            let stalled_cycles = ws.stalled_cycles.max(total_cycles);
            let bus_utilization = if stalled_cycles == 0 {
                0.0
            } else {
                // All partitions drain their traffic concurrently within the
                // layer's stalled horizon; each fits its share, so the
                // aggregate never exceeds 1 (the clamp guards the model's
                // per-fold ceil rounding only).
                (dram.total_bytes() as f64 / (bandwidth * stalled_cycles as f64)).min(1.0)
            };
            StallSummary {
                bandwidth,
                compute_cycles: total_cycles,
                stalled_cycles,
                stall_cycles: stalled_cycles - total_cycles,
                bus_utilization,
            }
        });

        let mac_ops = shape.macs();
        // Idle accounting covers every provisioned PE for the whole layer
        // runtime — including partitions that finished early or had no work.
        let pe_cycles = provisioned * config.array.macs() * total_cycles;
        let energy_started = Instant::now();
        let energy = {
            let _phase = scalesim_telemetry::trace::span("phase.energy");
            self.energy_model
                .evaluate(mac_ops, pe_cycles, sram.total(), dram.total_accesses())
        };
        phases.add_energy(energy_started.elapsed());

        let report = LayerReport {
            name: layer.name().to_owned(),
            grid: self.grid,
            array: config.array,
            total_cycles,
            active_partitions: active_partitions as u64,
            per_partition_cycles,
            mac_ops,
            sram,
            dram,
            mapping_utilization: if active_partitions == 0 {
                0.0
            } else {
                mapping_util_sum / active_partitions as f64
            },
            // A layer with no work (zero cycles) must report 0, not NaN —
            // NaN is not JSON and silently turns into `null` downstream.
            compute_utilization: if pe_cycles == 0 {
                0.0
            } else {
                mac_ops as f64 / pe_cycles as f64
            },
            energy,
            stall,
        };
        layer_cache::store(cache_key, Arc::new(report.clone()));
        record_layer_telemetry(&report, started.elapsed(), &phases);
        report
    }

    /// Simulates every layer of `topology` in order (SCALE-Sim serializes
    /// layers — Section II-E).
    pub fn run_topology(&self, topology: &Topology) -> NetworkReport {
        let _span = scalesim_telemetry::span!("run_topology", network = topology.name());
        let layers = topology.iter().map(|l| self.run_layer(l)).collect();
        scalesim_telemetry::global()
            .counter(
                telemetry_names::NETWORK_RUNS,
                "Topologies simulated end to end.",
            )
            .inc();
        NetworkReport::new(topology.name(), layers)
    }

    /// Writes the cycle-accurate SRAM traces of `layer` in the original
    /// tool's CSV format (`cycle, addr, …` rows): reads to `reads`, writes
    /// to `writes`. Traces are generated for a single monolithic array (the
    /// configured shape); the partition grid is ignored. The dataflow is
    /// resolved per layer exactly as in [`Simulator::run_layer`], so traces
    /// agree with the report under [`Simulator::with_auto_dataflow`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised by the writers.
    pub fn write_traces<W: Write>(
        &self,
        layer: &Layer,
        reads: W,
        writes: W,
    ) -> io::Result<ComputeReport> {
        let config = self.effective_config(layer);
        let map = layer_map(layer, &config);
        let dims = layer.shape().project(config.dataflow);
        let mut sink = CsvTraceSink::new(reads, writes);
        let report = simulate(&dims, config.array, &*map, &mut sink);
        sink.finish()?;
        Ok(report)
    }

    /// Writes the DRAM interface traces of `layer` (prefetch reads and
    /// streamed writes, `cycle, addr, …` rows — the "DRAM R/W" output of
    /// Fig. 2), for a single monolithic array, with the dataflow resolved
    /// per layer exactly as in [`Simulator::run_layer`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised by the writers.
    pub fn write_dram_traces<W: Write>(
        &self,
        layer: &Layer,
        reads: W,
        writes: W,
    ) -> io::Result<DramSummary> {
        let config = self.effective_config(layer);
        let map = layer_map(layer, &config);
        let dims = layer.shape().project(config.dataflow);
        let mut dram = DramModel::new(
            config.ifmap_buffer(1),
            config.filter_buffer(1),
            config.ofmap_buffer(1),
        );
        let mut tracer = DramTraceWriter::new(reads, writes);
        for d in fold_demands(&dims, config.array, &*map) {
            dram.fold_traced(
                d.fold.duration,
                d.a,
                d.b,
                d.o_spill,
                d.o_writes,
                &mut tracer,
            )?;
        }
        tracer.finish()?;
        Ok(dram.finish())
    }
}

/// Metric names the simulator records into the
/// [`scalesim_telemetry::global`] registry. Servers and profilers read
/// these back by name, so they are part of the public API.
pub mod telemetry_names {
    /// Counter, `{layer}`: layers simulated.
    pub const LAYER_RUNS: &str = "scalesim_layer_runs_total";
    /// Counter, `{layer}`: cumulative stall-free cycles per layer tag.
    pub const LAYER_CYCLES: &str = "scalesim_layer_cycles_total";
    /// Counter, `{layer}`: cumulative simulation wall time per layer tag.
    pub const LAYER_WALL_MICROS: &str = "scalesim_layer_wall_micros_total";
    /// Counter, `{phase}` in `compute` / `dram` / `energy`: wall time spent
    /// in each simulation phase.
    pub const PHASE_MICROS: &str = "scalesim_sim_phase_micros_total";
    /// Counter: modeled DRAM traffic across all simulated layers.
    pub const DRAM_BYTES: &str = "scalesim_sim_dram_bytes_total";
    /// Counter: modeled SRAM accesses across all simulated layers.
    pub const SRAM_ACCESSES: &str = "scalesim_sim_sram_accesses_total";
    /// Float counter: modeled energy across all simulated layers.
    pub const ENERGY: &str = "scalesim_sim_energy_total";
    /// Counter: whole topologies simulated.
    pub const NETWORK_RUNS: &str = "scalesim_network_runs_total";
    /// Counter: layer simulations answered from the layer-result cache.
    pub const LAYER_CACHE_HITS: &str = "scalesim_layer_cache_hits_total";
    /// Counter: layer simulations that ran the full cold path.
    pub const LAYER_CACHE_MISSES: &str = "scalesim_layer_cache_misses_total";
    /// Counter: layer-result cache LRU evictions.
    pub const LAYER_CACHE_EVICTIONS: &str = "scalesim_layer_cache_evictions_total";
    /// Gauge: layer-result cache live entries.
    pub const LAYER_CACHE_RESIDENT: &str = "scalesim_layer_cache_resident_entries";
    /// Counter: demand-stream elements fed to the DRAM model (what the
    /// element-granular representation would have walked).
    pub const DEMAND_ELEMENTS: &str = "scalesim_demand_elements_total";
    /// Counter: run-length records the DRAM model actually walked.
    pub const DEMAND_RUNS: &str = "scalesim_demand_runs_total";
    /// Gauge: cumulative elements-per-run compression ratio, rounded down
    /// to an integer (gauges are integral).
    pub const DEMAND_COMPRESSION: &str = "scalesim_demand_compression_ratio";
}

/// Per-phase wall-time accumulators, shared across partition threads.
#[derive(Debug, Default)]
struct PhaseNanos {
    compute: AtomicU64,
    dram: AtomicU64,
    energy: AtomicU64,
}

impl PhaseNanos {
    fn add_compute(&self, d: std::time::Duration) {
        self.compute
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn add_dram(&self, d: std::time::Duration) {
        self.dram.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn add_energy(&self, d: std::time::Duration) {
        self.energy
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn micros(&self) -> [(&'static str, u64); 3] {
        [
            ("compute", self.compute.load(Ordering::Relaxed) / 1_000),
            ("dram", self.dram.load(Ordering::Relaxed) / 1_000),
            ("energy", self.energy.load(Ordering::Relaxed) / 1_000),
        ]
    }
}

/// Demand-stream volume accumulators, shared across partition threads:
/// how many elements the DRAM interface model was asked about, and how
/// many run-length records it walked to answer.
#[derive(Debug, Default)]
struct DemandVolume {
    elements: AtomicU64,
    runs: AtomicU64,
}

impl DemandVolume {
    fn add(&self, elements: u64, runs: u64) {
        self.elements.fetch_add(elements, Ordering::Relaxed);
        self.runs.fetch_add(runs, Ordering::Relaxed);
    }
}

/// Publishes one layer's demand-stream volume and the cumulative
/// compression ratio to the global metric registry.
fn record_demand_telemetry(volume: &DemandVolume) {
    let registry = scalesim_telemetry::global();
    let elements = registry.counter(
        telemetry_names::DEMAND_ELEMENTS,
        "Demand-stream elements fed to the DRAM model.",
    );
    elements.add(volume.elements.load(Ordering::Relaxed));
    let runs = registry.counter(
        telemetry_names::DEMAND_RUNS,
        "Run-length records the DRAM model walked.",
    );
    runs.add(volume.runs.load(Ordering::Relaxed));
    registry
        .gauge(
            telemetry_names::DEMAND_COMPRESSION,
            "Cumulative elements-per-run compression ratio (integer).",
        )
        .set((elements.get() / runs.get().max(1)) as i64);
}

/// Publishes one finished layer's results to the global metric registry.
fn record_layer_telemetry(report: &LayerReport, wall: std::time::Duration, phases: &PhaseNanos) {
    let registry = scalesim_telemetry::global();
    let labels = [("layer", report.name.as_str())];
    registry
        .counter_with(telemetry_names::LAYER_RUNS, "Layers simulated.", &labels)
        .inc();
    registry
        .counter_with(
            telemetry_names::LAYER_CYCLES,
            "Cumulative stall-free cycles per layer tag.",
            &labels,
        )
        .add(report.total_cycles);
    registry
        .counter_with(
            telemetry_names::LAYER_WALL_MICROS,
            "Cumulative simulation wall time per layer tag.",
            &labels,
        )
        .add(wall.as_micros() as u64);
    for (phase, micros) in phases.micros() {
        registry
            .counter_with(
                telemetry_names::PHASE_MICROS,
                "Wall time spent in each simulation phase.",
                &[("phase", phase)],
            )
            .add(micros);
    }
    registry
        .counter(
            telemetry_names::DRAM_BYTES,
            "Modeled DRAM traffic across all simulated layers.",
        )
        .add(report.dram.total_bytes());
    registry
        .counter(
            telemetry_names::SRAM_ACCESSES,
            "Modeled SRAM accesses across all simulated layers.",
        )
        .add(report.sram.total());
    registry
        .float_counter(
            telemetry_names::ENERGY,
            "Modeled energy across all simulated layers.",
        )
        .add(report.energy.total());
}

/// Builds the operand address map for a layer.
fn layer_map(layer: &Layer, config: &SimConfig) -> Box<dyn AddressMap + Send + Sync> {
    match layer {
        Layer::Conv(conv) => Box::new(ConvAddressMap::new(conv, config.offsets)),
        Layer::Gemm { shape, .. } => Box::new(GemmAddressMap::from_shape(*shape, config.offsets)),
    }
}

/// One partition's tile of the output space.
#[derive(Debug, Clone, Copy)]
struct Tile {
    m_off: u64,
    m_len: u64,
    n_off: u64,
    n_len: u64,
}

/// Tiles the `M × N` output space across the grid (Eq. 5 of the paper,
/// applied in output coordinates so every partition computes complete
/// outputs regardless of dataflow). Partitions whose ceiling share starts
/// past the end of a dimension receive no work and are skipped.
fn partition_tiles(shape: GemmShape, grid: PartitionGrid) -> Vec<Tile> {
    let chunk_m = shape.m.div_ceil(grid.rows());
    let chunk_n = shape.n.div_ceil(grid.cols());
    let mut tiles = Vec::new();
    for pi in 0..grid.rows() {
        let m_off = pi * chunk_m;
        if m_off >= shape.m {
            break;
        }
        let m_len = chunk_m.min(shape.m - m_off);
        for pj in 0..grid.cols() {
            let n_off = pj * chunk_n;
            if n_off >= shape.n {
                break;
            }
            let n_len = chunk_n.min(shape.n - n_off);
            tiles.push(Tile {
                m_off,
                m_len,
                n_off,
                n_len,
            });
        }
    }
    tiles
}

/// Simulates each tile (compute schedule + DRAM model), in parallel across
/// OS threads when there are several. Phase wall time (compute schedule vs
/// DRAM interface walk) accumulates into `phases` from every thread, and
/// demand-stream volume (elements vs runs) into `volume`.
#[allow(clippy::too_many_arguments)]
fn run_partitions(
    tiles: &[Tile],
    map: &(dyn AddressMap + Send + Sync),
    shape: GemmShape,
    config: &SimConfig,
    provisioned: u64,
    bandwidth_share: Option<f64>,
    phases: &PhaseNanos,
    volume: &DemandVolume,
) -> Vec<(ComputeReport, DramSummary, Option<StallSummary>)> {
    let run_tile = |tile: &Tile| -> (ComputeReport, DramSummary, Option<StallSummary>) {
        let sub_map = SubGemmMap::new(map, tile.m_off, tile.n_off);
        let sub_shape = GemmShape::new(tile.m_len, shape.k, tile.n_len);
        let dims = sub_shape.project(config.dataflow);
        let compute_started = Instant::now();
        let compute = {
            let _phase = scalesim_telemetry::trace::span("phase.compute");
            analyze(&dims, config.array)
        };
        phases.add_compute(compute_started.elapsed());
        let dram_started = Instant::now();
        let (dram, stall) = {
            let _phase = scalesim_telemetry::trace::span("phase.dram");
            // The fold loop draws all of its scratch from this worker's
            // arena: operand buffers from the pool, the per-fold demand
            // streams filled in place. After the thread's first layer the
            // loop performs no steady-state heap allocation.
            crate::arena::with_arena(|arena| {
                let mut dram = DramModel::new_in(
                    config.ifmap_buffer(provisioned),
                    config.filter_buffer(provisioned),
                    config.ofmap_buffer(provisioned),
                    &mut arena.pool,
                );
                let mut stall = bandwidth_share.map(StallModel::new);
                let mut elements = 0u64;
                let mut runs = 0u64;
                let mut demands = fold_demand_runs_in(
                    &dims,
                    config.array,
                    &sub_map,
                    std::mem::take(&mut arena.a_seen),
                    std::mem::take(&mut arena.a_scratch),
                );
                while demands.next_into(&mut arena.demand) {
                    let demand = &arena.demand;
                    elements += demand.element_count();
                    runs += demand.run_count();
                    let traffic = dram.fold_runs(
                        demand.fold.duration,
                        &demand.a,
                        &demand.b,
                        &demand.o_spill,
                        &demand.o_writes,
                    );
                    if let Some(stall) = stall.as_mut() {
                        stall.fold(traffic.duration, traffic.read_bytes, traffic.write_bytes);
                    }
                }
                (arena.a_seen, arena.a_scratch) = demands.into_scratch();
                volume.add(elements, runs);
                (
                    dram.finish_into(&mut arena.pool),
                    stall.map(StallModel::finish),
                )
            })
        };
        phases.add_dram(dram_started.elapsed());
        (compute, dram, stall)
    };

    if tiles.len() <= 1 {
        return tiles.iter().map(run_tile).collect();
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(tiles.len());
    let chunk_size = tiles.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tiles
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| chunk.iter().map(run_tile).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
    .expect("partition scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_systolic::ArrayShape;
    use scalesim_topology::{networks, ConvLayer, Dataflow};

    fn small_config() -> SimConfig {
        SimConfig::builder()
            .array(ArrayShape::square(16))
            .sram_kb(64, 64, 32)
            .build()
    }

    #[test]
    fn monolithic_layer_report_is_consistent() {
        let sim = Simulator::new(small_config());
        let layer = Layer::gemm("g", 100, 40, 60);
        let report = sim.run_layer(&layer);
        assert_eq!(report.active_partitions, 1);
        assert_eq!(report.mac_ops, 100 * 40 * 60);
        assert_eq!(report.per_partition_cycles.len(), 1);
        assert_eq!(report.per_partition_cycles[0], report.total_cycles);
        assert!(report.dram.total_bytes() > 0);
        assert!(report.energy.total() > 0.0);
    }

    #[test]
    fn partitioned_run_is_faster_but_hungrier() {
        // The central trade-off of the paper (Fig. 11): more partitions ->
        // lower runtime, higher DRAM bandwidth requirement.
        let layer = networks::language_model("TF1").unwrap();
        let mono = Simulator::new(small_config()).run_layer(&layer);
        let quad = Simulator::new(small_config())
            .with_grid(PartitionGrid::new(2, 2))
            .run_layer(&layer);
        assert!(quad.total_cycles < mono.total_cycles);
        assert!(quad.required_bandwidth() >= mono.required_bandwidth());
        // Same useful work either way.
        assert_eq!(quad.mac_ops, mono.mac_ops);
    }

    #[test]
    fn partition_tiles_cover_output_exactly() {
        let shape = GemmShape::new(10, 5, 7);
        let tiles = partition_tiles(shape, PartitionGrid::new(3, 2));
        let covered: u64 = tiles.iter().map(|t| t.m_len * t.n_len).sum();
        assert_eq!(covered, 70);
        // Ceil split of 10 over 3 = 4: partitions at m = 0, 4, 8.
        assert_eq!(tiles.len(), 6);
    }

    #[test]
    fn oversized_grid_drops_empty_partitions() {
        let shape = GemmShape::new(2, 5, 1);
        let tiles = partition_tiles(shape, PartitionGrid::new(8, 8));
        assert_eq!(tiles.len(), 2);
        let sim = Simulator::new(small_config()).with_grid(PartitionGrid::new(8, 8));
        let report = sim.run_layer(&Layer::gemm("tiny", 2, 5, 1));
        assert_eq!(report.active_partitions, 2);
    }

    #[test]
    fn partitioned_macs_match_monolithic_for_conv() {
        let conv = ConvLayer::new("c", 16, 16, 3, 3, 8, 16, 1).unwrap();
        let layer: Layer = conv.into();
        let mono = Simulator::new(small_config()).run_layer(&layer);
        let split = Simulator::new(small_config())
            .with_grid(PartitionGrid::new(2, 2))
            .run_layer(&layer);
        assert_eq!(mono.mac_ops, split.mac_ops);
        // Losing spatial reuse costs extra DRAM reads, never fewer.
        assert!(split.dram.reads_a + split.dram.reads_b >= mono.dram.reads_a + mono.dram.reads_b);
    }

    #[test]
    fn run_topology_covers_all_layers_in_order() {
        let sim = Simulator::new(small_config());
        let net = networks::alexnet();
        let report = sim.run_topology(&net);
        assert_eq!(report.layers().len(), net.len());
        for (lr, l) in report.layers().iter().zip(net.iter()) {
            assert_eq!(lr.name, l.name());
        }
        assert_eq!(
            report.total_cycles(),
            report.layers().iter().map(|l| l.total_cycles).sum::<u64>()
        );
    }

    #[test]
    fn traces_round_trip_basic_shape() {
        let sim = Simulator::new(small_config());
        let layer = Layer::gemm("g", 8, 4, 8);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let report = sim.write_traces(&layer, &mut reads, &mut writes).unwrap();
        let read_text = String::from_utf8(reads).unwrap();
        let write_text = String::from_utf8(writes).unwrap();
        assert!(!read_text.is_empty());
        assert!(!write_text.is_empty());
        // Every row is `cycle,addr[,addr...]`; the largest cycle stamp is
        // within the reported horizon.
        let max_cycle = write_text
            .lines()
            .map(|l| l.split(',').next().unwrap().parse::<u64>().unwrap())
            .max()
            .unwrap();
        assert_eq!(max_cycle + 1, report.total_cycles);
    }

    #[test]
    fn stall_model_engages_when_bandwidth_is_set() {
        let layer = Layer::gemm("g", 200, 64, 200);
        let free = Simulator::new(small_config()).run_layer(&layer);
        assert!(free.stall.is_none());
        assert_eq!(free.effective_cycles(), free.total_cycles);

        // Starve the interface: far below the stall-free requirement.
        let starved_cfg = SimConfig {
            dram_bandwidth: Some(1.0),
            ..small_config()
        };
        let starved = Simulator::new(starved_cfg).run_layer(&layer);
        let stall = starved.stall.expect("stall analysis must run");
        assert!(stall.stalled_cycles > starved.total_cycles);
        assert!(stall.slowdown() > 1.0);
        assert_eq!(starved.effective_cycles(), stall.stalled_cycles);

        // Ample bandwidth: stalls vanish (cold start aside).
        let ample_cfg = SimConfig {
            dram_bandwidth: Some(1e9),
            ..small_config()
        };
        let ample = Simulator::new(ample_cfg).run_layer(&layer);
        assert!(ample.stall.unwrap().stalled_cycles <= starved.stall.unwrap().stalled_cycles);
    }

    #[test]
    fn stall_slowdown_decreases_with_more_bandwidth() {
        let layer = Layer::gemm("g", 300, 32, 300);
        let slowdown = |bw: f64| {
            let cfg = SimConfig {
                dram_bandwidth: Some(bw),
                ..small_config()
            };
            Simulator::new(cfg)
                .run_layer(&layer)
                .stall
                .unwrap()
                .slowdown()
        };
        let s1 = slowdown(1.0);
        let s8 = slowdown(8.0);
        let s64 = slowdown(64.0);
        assert!(s1 >= s8);
        assert!(s8 >= s64);
    }

    #[test]
    fn dram_trace_export_covers_all_misses() {
        let sim = Simulator::new(small_config());
        let layer = Layer::gemm("g", 32, 8, 32);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let summary = sim
            .write_dram_traces(&layer, &mut reads, &mut writes)
            .unwrap();
        let count_addrs = |buf: &[u8]| -> u64 {
            String::from_utf8(buf.to_vec())
                .unwrap()
                .lines()
                .map(|l| l.split(',').count() as u64 - 1)
                .sum()
        };
        assert_eq!(
            count_addrs(&reads),
            summary.reads_a + summary.reads_b + summary.reads_o
        );
        assert_eq!(count_addrs(&writes), summary.writes_o);
    }

    #[test]
    fn auto_dataflow_never_loses_to_the_fixed_default() {
        // Per-layer selection must match or beat the configured dataflow
        // on every layer's runtime.
        let net = networks::alexnet();
        let fixed = Simulator::new(small_config());
        let auto = Simulator::new(small_config()).with_auto_dataflow();
        for layer in &net {
            let f = fixed.run_layer(layer);
            let a = auto.run_layer(layer);
            assert!(
                a.total_cycles <= f.total_cycles,
                "{}: auto {} > fixed {}",
                layer.name(),
                a.total_cycles,
                f.total_cycles
            );
        }
    }

    #[test]
    fn auto_dataflow_helps_fat_output_gemms() {
        // GNMT3 (2048 x 32 x 4096) has a tiny contraction: OS pays a fold
        // per output tile, while WS keeps the whole contraction resident.
        // Auto selection must find that and win by a wide margin.
        let layer = networks::language_model("GNMT3").unwrap();
        let fixed = Simulator::new(small_config()).run_layer(&layer);
        let auto = Simulator::new(small_config())
            .with_auto_dataflow()
            .run_layer(&layer);
        assert!(
            (auto.total_cycles as f64) < 0.7 * fixed.total_cycles as f64,
            "auto {} vs fixed {}",
            auto.total_cycles,
            fixed.total_cycles
        );
    }

    #[test]
    fn degenerate_layer_reports_zero_utilization() {
        // A layer with no output space yields no tiles, hence zero cycles;
        // utilization must be 0.0, never NaN (regression: 0/0 divide).
        let layer = Layer::Gemm {
            name: "empty".into(),
            shape: GemmShape { m: 0, k: 8, n: 8 },
        };
        let report = Simulator::new(small_config()).run_layer(&layer);
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.active_partitions, 0);
        assert_eq!(report.compute_utilization, 0.0);
        assert!(report.compute_utilization.is_finite());
        assert_eq!(report.mapping_utilization, 0.0);
    }

    #[test]
    fn trace_export_respects_auto_dataflow() {
        // A fat-output GEMM with a tiny contraction: the analytical model
        // picks a different dataflow than the configured OS default, and
        // the exported traces must follow that per-layer choice.
        let layer = Layer::gemm("fat", 64, 4, 96);
        let sim = Simulator::new(small_config()).with_auto_dataflow();
        let effective = sim.effective_config(&layer);
        assert_ne!(
            effective.dataflow,
            sim.config().dataflow,
            "test needs a shape where auto selection changes the dataflow"
        );

        let report = sim.run_layer(&layer);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let compute = sim.write_traces(&layer, &mut reads, &mut writes).unwrap();
        assert_eq!(compute.total_cycles, report.total_cycles);
        let max_cycle = String::from_utf8(writes)
            .unwrap()
            .lines()
            .map(|l| l.split(',').next().unwrap().parse::<u64>().unwrap())
            .max()
            .unwrap();
        assert_eq!(max_cycle + 1, report.total_cycles);

        // Regression: the fixed-dataflow schedule is genuinely different,
        // so the old behavior (tracing `config.dataflow`) would disagree.
        let fixed = Simulator::new(small_config()).run_layer(&layer);
        assert_ne!(fixed.total_cycles, report.total_cycles);
    }

    #[test]
    fn partitioned_stall_bus_utilization_is_layer_scoped() {
        // Regression: the layer summary used to report the *total*
        // bandwidth next to the worst partition's utilization of its own
        // 1/P share — mixed scopes. The reported utilization must equal
        // total traffic over total interface capacity across the stalled
        // horizon.
        let layer = Layer::gemm("g", 256, 64, 256);
        let cfg = SimConfig {
            dram_bandwidth: Some(16.0),
            ..small_config()
        };
        let report = Simulator::new(cfg)
            .with_grid(PartitionGrid::new(2, 2))
            .run_layer(&layer);
        let stall = report.stall.expect("stall analysis must run");
        assert_eq!(stall.bandwidth, 16.0);
        let expected =
            report.dram.total_bytes() as f64 / (stall.bandwidth * stall.stalled_cycles as f64);
        assert!(
            (stall.bus_utilization - expected.min(1.0)).abs() < 1e-9,
            "bus_utilization {} != layer-level {}",
            stall.bus_utilization,
            expected
        );
        assert!(stall.bus_utilization > 0.0 && stall.bus_utilization <= 1.0);
    }

    #[test]
    fn run_layer_records_telemetry() {
        let registry = scalesim_telemetry::global();
        let labels = [("layer", "telemetry_probe")];
        let before = registry
            .counter_value(telemetry_names::LAYER_CYCLES, &labels)
            .unwrap_or(0);
        let report =
            Simulator::new(small_config()).run_layer(&Layer::gemm("telemetry_probe", 64, 32, 64));
        let cycles = registry
            .counter_value(telemetry_names::LAYER_CYCLES, &labels)
            .expect("layer cycles recorded");
        assert_eq!(cycles - before, report.total_cycles);
        assert!(registry
            .counter_value(telemetry_names::LAYER_WALL_MICROS, &labels)
            .is_some());
        // Phase counters exist once any layer ran (values are cumulative
        // across concurrently running tests, so only presence is asserted).
        for phase in ["compute", "dram", "energy"] {
            assert!(registry
                .counter_value(telemetry_names::PHASE_MICROS, &[("phase", phase)])
                .is_some());
        }
    }

    #[test]
    fn layer_cache_hit_reproduces_the_cold_report() {
        let registry = scalesim_telemetry::global();
        let sim = Simulator::new(small_config());
        // A shape no other test simulates with this config, so the first
        // run is the one that populates the cache.
        let cold = sim.run_layer(&Layer::gemm("cache_probe_cold", 97, 43, 81));
        let hits_before = registry
            .counter_value(telemetry_names::LAYER_CACHE_HITS, &[])
            .unwrap_or(0);
        let warm = sim.run_layer(&Layer::gemm("cache_probe_warm", 97, 43, 81));
        let hits_after = registry
            .counter_value(telemetry_names::LAYER_CACHE_HITS, &[])
            .unwrap_or(0);
        assert!(hits_after > hits_before, "second run must hit the cache");
        // The memoized result is the cold result with the name patched.
        assert_eq!(warm.name, "cache_probe_warm");
        let mut renamed = warm;
        renamed.name = cold.name.clone();
        assert_eq!(renamed, cold);
    }

    #[test]
    fn dataflow_choice_changes_sram_profile() {
        let layer = Layer::gemm("g", 256, 64, 128);
        let os = Simulator::new(small_config()).run_layer(&layer);
        let ws_cfg = SimConfig {
            dataflow: Dataflow::WeightStationary,
            ..small_config()
        };
        let ws = Simulator::new(ws_cfg).run_layer(&layer);
        assert_ne!(os.sram, ws.sram);
        assert_eq!(os.mac_ops, ws.mac_ops);
    }
}
