//! The hardware configuration (Table I of the paper) and its file format.
//!
//! SCALE-Sim reads an INI-style config file:
//!
//! ```text
//! [general]
//! run_name = my_run
//!
//! [architecture_presets]
//! ArrayHeight : 32
//! ArrayWidth : 32
//! IfmapSramSz : 512
//! FilterSramSz : 512
//! OfmapSramSz : 256
//! IfmapOffset : 0
//! FilterOffset : 10000000
//! OfmapOffset : 20000000
//! Dataflow : os
//! ```
//!
//! [`parse_config`] accepts that format (`:` or `=` separators, sections
//! and comments ignored, keys case-insensitive); [`SimConfig::to_config_string`]
//! writes it back.

use serde::{Deserialize, Serialize};

use scalesim_memory::{OperandBufferSpec, RegionOffsets};
use scalesim_systolic::ArrayShape;
use scalesim_topology::Dataflow;

use crate::error::ParseConfigError;

/// Complete hardware configuration of one simulated accelerator
/// (Table I of the paper, plus a word-size extension).
///
/// SRAM sizes are the *total* budget; when the simulator runs a partitioned
/// (scale-out) configuration the budget is divided evenly among partitions,
/// as in Sec. IV-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Shape of each systolic array (`ArrayHeight × ArrayWidth`).
    pub array: ArrayShape,
    /// Mapping dataflow.
    pub dataflow: Dataflow,
    /// IFMAP working-set SRAM in KB.
    pub ifmap_sram_kb: u64,
    /// Filter working-set SRAM in KB.
    pub filter_sram_kb: u64,
    /// OFMAP working-set SRAM in KB.
    pub ofmap_sram_kb: u64,
    /// Base addresses of the three operand regions.
    pub offsets: RegionOffsets,
    /// Bytes per data word (1 in the original tool's element-granular
    /// traces).
    pub word_bytes: u64,
    /// Available DRAM interface bandwidth in bytes/cycle. `None` (the
    /// default) reproduces SCALE-Sim's stall-free model, which *reports*
    /// the required bandwidth; `Some(b)` additionally runs the finite-
    /// bandwidth stall model and fills [`crate::LayerReport::stall`].
    pub dram_bandwidth: Option<f64>,
}

impl Default for SimConfig {
    /// The paper's experimental setup: a 32×32 OS array with 512 KB IFMAP,
    /// 512 KB filter and 256 KB OFMAP SRAM (Sec. IV-A), 1-byte words.
    fn default() -> Self {
        SimConfig {
            array: ArrayShape::square(32),
            dataflow: Dataflow::OutputStationary,
            ifmap_sram_kb: 512,
            filter_sram_kb: 512,
            ofmap_sram_kb: 256,
            offsets: RegionOffsets::default(),
            word_bytes: 1,
            dram_bandwidth: None,
        }
    }
}

impl SimConfig {
    /// Starts a builder initialized with the defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// The IFMAP buffer spec, scaled down for `partitions` partitions.
    pub fn ifmap_buffer(&self, partitions: u64) -> OperandBufferSpec {
        scaled_spec(self.ifmap_sram_kb, self.word_bytes, partitions)
    }

    /// The filter buffer spec, scaled down for `partitions` partitions.
    pub fn filter_buffer(&self, partitions: u64) -> OperandBufferSpec {
        scaled_spec(self.filter_sram_kb, self.word_bytes, partitions)
    }

    /// The OFMAP buffer spec, scaled down for `partitions` partitions.
    pub fn ofmap_buffer(&self, partitions: u64) -> OperandBufferSpec {
        scaled_spec(self.ofmap_sram_kb, self.word_bytes, partitions)
    }

    /// Serializes to the SCALE-Sim config file format; the result parses
    /// back to an equal config via [`parse_config`].
    pub fn to_config_string(&self) -> String {
        format!(
            "[architecture_presets]\n\
             ArrayHeight : {}\n\
             ArrayWidth : {}\n\
             IfmapSramSz : {}\n\
             FilterSramSz : {}\n\
             OfmapSramSz : {}\n\
             IfmapOffset : {}\n\
             FilterOffset : {}\n\
             OfmapOffset : {}\n\
             WordBytes : {}\n\
             Dataflow : {}\n\
             {}",
            self.array.rows(),
            self.array.cols(),
            self.ifmap_sram_kb,
            self.filter_sram_kb,
            self.ofmap_sram_kb,
            self.offsets.ifmap,
            self.offsets.filter,
            self.offsets.ofmap,
            self.word_bytes,
            self.dataflow,
            match self.dram_bandwidth {
                Some(bw) => format!("DramBandwidth : {bw}\n"),
                None => String::new(),
            },
        )
    }
}

fn scaled_spec(kb: u64, word_bytes: u64, partitions: u64) -> OperandBufferSpec {
    OperandBufferSpec {
        size_bytes: (kb * 1024) / partitions.max(1),
        word_bytes,
    }
}

/// Incremental constructor for [`SimConfig`].
///
/// ```
/// use scalesim::{ArrayShape, Dataflow, SimConfig};
///
/// let config = SimConfig::builder()
///     .array(ArrayShape::new(128, 128))
///     .dataflow(Dataflow::WeightStationary)
///     .sram_kb(1024, 1024, 512)
///     .build();
/// assert_eq!(config.array.macs(), 16384);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the array shape.
    pub fn array(mut self, array: ArrayShape) -> Self {
        self.config.array = array;
        self
    }

    /// Sets the dataflow.
    pub fn dataflow(mut self, dataflow: Dataflow) -> Self {
        self.config.dataflow = dataflow;
        self
    }

    /// Sets the three SRAM budgets in KB (ifmap, filter, ofmap).
    pub fn sram_kb(mut self, ifmap: u64, filter: u64, ofmap: u64) -> Self {
        self.config.ifmap_sram_kb = ifmap;
        self.config.filter_sram_kb = filter;
        self.config.ofmap_sram_kb = ofmap;
        self
    }

    /// Sets the operand region offsets.
    pub fn offsets(mut self, offsets: RegionOffsets) -> Self {
        self.config.offsets = offsets;
        self
    }

    /// Sets the word size in bytes.
    pub fn word_bytes(mut self, bytes: u64) -> Self {
        self.config.word_bytes = bytes;
        self
    }

    /// Constrains the DRAM interface to `bytes_per_cycle`, enabling the
    /// stall model.
    pub fn dram_bandwidth(mut self, bytes_per_cycle: f64) -> Self {
        self.config.dram_bandwidth = Some(bytes_per_cycle);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> SimConfig {
        self.config
    }
}

/// Parses the SCALE-Sim configuration file format.
///
/// Sections (`[...]`), blank lines and comments (`#`, `;`, `//`) are
/// ignored. Separators may be `:` or `=`. Keys are matched
/// case-insensitively against Table I (`ArrayHeight`, `ArrayWidth`,
/// `IfmapSramSz`, `FilterSramSz`, `OfmapSramSz`, `IfmapOffset`,
/// `FilterOffset`, `OfmapOffset`, `Dataflow`), plus the extensions
/// `WordBytes`, and the original file keys `run_name` / `topology` (parsed
/// and ignored here — the CLI consumes them).
///
/// # Errors
///
/// Returns [`ParseConfigError`] on malformed lines, non-numeric values,
/// unknown keys, invalid dataflow names, or zero array/word dimensions.
///
/// ```
/// use scalesim::parse_config;
///
/// let cfg = parse_config("ArrayHeight: 16\nArrayWidth = 64\nDataflow: ws\n")?;
/// assert_eq!(cfg.array.rows(), 16);
/// assert_eq!(cfg.array.cols(), 64);
/// # Ok::<(), scalesim::ParseConfigError>(())
/// ```
pub fn parse_config(text: &str) -> Result<SimConfig, ParseConfigError> {
    let defaults = SimConfig::default();
    let mut rows = defaults.array.rows();
    let mut cols = defaults.array.cols();
    let mut config = defaults;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with(';')
            || line.starts_with("//")
            || (line.starts_with('[') && line.ends_with(']'))
        {
            continue;
        }
        let (key, value) = line
            .split_once([':', '='])
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| ParseConfigError::Malformed {
                line: line_no,
                text: line.to_owned(),
            })?;
        let lower = key.to_ascii_lowercase();
        let num = |key: &str| -> Result<u64, ParseConfigError> {
            value
                .parse::<u64>()
                .map_err(|_| ParseConfigError::InvalidNumber {
                    line: line_no,
                    key: key.to_owned(),
                    text: value.to_owned(),
                })
        };
        match lower.as_str() {
            "arrayheight" => rows = num(key)?,
            "arraywidth" => cols = num(key)?,
            "ifmapsramsz" => config.ifmap_sram_kb = num(key)?,
            "filtersramsz" => config.filter_sram_kb = num(key)?,
            "ofmapsramsz" => config.ofmap_sram_kb = num(key)?,
            "ifmapoffset" => config.offsets.ifmap = num(key)?,
            "filteroffset" => config.offsets.filter = num(key)?,
            "ofmapoffset" => config.offsets.ofmap = num(key)?,
            "wordbytes" => config.word_bytes = num(key)?,
            "drambandwidth" => {
                let bw: f64 = value.parse().map_err(|_| ParseConfigError::InvalidNumber {
                    line: line_no,
                    key: key.to_owned(),
                    text: value.to_owned(),
                })?;
                if !(bw.is_finite() && bw > 0.0) {
                    return Err(ParseConfigError::ZeroParameter {
                        key: "DramBandwidth",
                    });
                }
                config.dram_bandwidth = Some(bw);
            }
            "dataflow" => {
                config.dataflow = value
                    .parse()
                    .map_err(|_| ParseConfigError::InvalidDataflow {
                        line: line_no,
                        text: value.to_owned(),
                    })?;
            }
            // Keys present in original config files but consumed elsewhere.
            "run_name" | "runname" | "topology" => {}
            _ => {
                return Err(ParseConfigError::UnknownKey {
                    line: line_no,
                    key: key.to_owned(),
                })
            }
        }
    }

    if rows == 0 {
        return Err(ParseConfigError::ZeroParameter { key: "ArrayHeight" });
    }
    if cols == 0 {
        return Err(ParseConfigError::ZeroParameter { key: "ArrayWidth" });
    }
    if config.word_bytes == 0 {
        return Err(ParseConfigError::ZeroParameter { key: "WordBytes" });
    }
    config.array = ArrayShape::new(rows, cols);
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.array, ArrayShape::square(32));
        assert_eq!(c.dataflow, Dataflow::OutputStationary);
        assert_eq!(
            (c.ifmap_sram_kb, c.filter_sram_kb, c.ofmap_sram_kb),
            (512, 512, 256)
        );
    }

    #[test]
    fn config_round_trips_through_file_format() {
        let original = SimConfig::builder()
            .array(ArrayShape::new(8, 256))
            .dataflow(Dataflow::InputStationary)
            .sram_kb(64, 32, 16)
            .word_bytes(2)
            .build();
        let parsed = parse_config(&original.to_config_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn bandwidth_round_trips_and_validates() {
        let original = SimConfig::builder().dram_bandwidth(16.5).build();
        let parsed = parse_config(&original.to_config_string()).unwrap();
        assert_eq!(parsed.dram_bandwidth, Some(16.5));
        assert!(matches!(
            parse_config("DramBandwidth: 0\n"),
            Err(ParseConfigError::ZeroParameter { .. })
        ));
        assert!(parse_config("DramBandwidth: fast\n").is_err());
    }

    #[test]
    fn parser_tolerates_sections_comments_and_separators() {
        let text = "\
            [general]\n\
            run_name = test\n\
            # a comment\n\
            ; another\n\
            // and another\n\
            [architecture_presets]\n\
            ArrayHeight : 16\n\
            arraywidth = 8\n\
            Dataflow: WS\n";
        let c = parse_config(text).unwrap();
        assert_eq!(c.array, ArrayShape::new(16, 8));
        assert_eq!(c.dataflow, Dataflow::WeightStationary);
        // Unspecified parameters keep their defaults.
        assert_eq!(c.ifmap_sram_kb, 512);
    }

    #[test]
    fn parser_rejects_bad_input() {
        assert!(matches!(
            parse_config("ArrayHeight 32\n"),
            Err(ParseConfigError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_config("ArrayHeight: many\n"),
            Err(ParseConfigError::InvalidNumber { .. })
        ));
        assert!(matches!(
            parse_config("Dataflow: rs\n"),
            Err(ParseConfigError::InvalidDataflow { .. })
        ));
        assert!(matches!(
            parse_config("Bogus: 3\n"),
            Err(ParseConfigError::UnknownKey { .. })
        ));
        assert!(matches!(
            parse_config("ArrayHeight: 0\n"),
            Err(ParseConfigError::ZeroParameter { key: "ArrayHeight" })
        ));
    }

    #[test]
    fn buffer_specs_divide_across_partitions() {
        let c = SimConfig::default();
        assert_eq!(c.ifmap_buffer(1).size_bytes, 512 * 1024);
        assert_eq!(c.ifmap_buffer(4).size_bytes, 128 * 1024);
        assert_eq!(c.ofmap_buffer(2).size_bytes, 128 * 1024);
        // Zero partitions clamps rather than dividing by zero.
        assert_eq!(c.filter_buffer(0).size_bytes, 512 * 1024);
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::builder()
            .array(ArrayShape::new(4, 4))
            .offsets(RegionOffsets {
                ifmap: 1,
                filter: 2,
                ofmap: 3,
            })
            .build();
        assert_eq!(c.offsets.filter, 2);
    }
}
