//! Simulation reports: per-layer and per-network aggregates.
//!
//! These correspond to the "reports with aggregated metrics" output of the
//! original tool (Section II-E): cycle counts, utilization, bandwidth
//! requirements and total data transfers, plus this implementation's energy
//! breakdown.

use std::fmt;

use serde::{Deserialize, Serialize};

use scalesim_analytical::PartitionGrid;
use scalesim_energy::EnergyBreakdown;
use scalesim_memory::{DramSummary, StallSummary};
use scalesim_systolic::{ArrayShape, SramCounts};

/// Results of simulating one layer on a (possibly partitioned) accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// The layer's tag.
    pub name: String,
    /// Partition grid the layer ran on (1×1 = monolithic).
    pub grid: PartitionGrid,
    /// Per-partition array shape.
    pub array: ArrayShape,
    /// End-to-end stall-free runtime: the slowest partition's cycles.
    pub total_cycles: u64,
    /// Each active partition's runtime, row-major over the grid.
    pub per_partition_cycles: Vec<u64>,
    /// Partitions that received work (≤ `grid.count()`).
    pub active_partitions: u64,
    /// Useful MAC operations across all partitions.
    pub mac_ops: u64,
    /// SRAM accesses summed over partitions.
    pub sram: SramCounts,
    /// DRAM interface summary (traffic summed, bandwidths added across
    /// concurrent partitions).
    pub dram: DramSummary,
    /// Mean occupied-PE fraction over the active partitions' folds.
    pub mapping_utilization: f64,
    /// `mac_ops / (provisioned PEs × total_cycles)` — counts idle
    /// partitions as provisioned, like the energy model does.
    pub compute_utilization: f64,
    /// Energy breakdown for the layer.
    pub energy: EnergyBreakdown,
    /// Finite-bandwidth stall analysis — present when the configuration
    /// sets a DRAM bandwidth, `None` under the stall-free model.
    pub stall: Option<StallSummary>,
}

impl LayerReport {
    /// Total provisioned MAC units (`grid partitions × array size`).
    pub fn provisioned_macs(&self) -> u64 {
        self.grid.count() * self.array.macs()
    }

    /// Stall-free DRAM bandwidth requirement in bytes/cycle
    /// (read-peak + write-peak, summed over concurrent partitions).
    pub fn required_bandwidth(&self) -> f64 {
        self.dram.required_bandwidth()
    }

    /// Average DRAM bandwidth in bytes/cycle.
    pub fn average_bandwidth(&self) -> f64 {
        self.dram.average_bandwidth()
    }

    /// Runtime including memory stalls when the stall model ran, else the
    /// stall-free runtime.
    pub fn effective_cycles(&self) -> u64 {
        self.stall
            .map(|s| s.stalled_cycles)
            .unwrap_or(self.total_cycles)
            .max(self.total_cycles)
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>12} cycles  util {:>5.1}%  SRAM {:>12}  DRAM {:>12} B  BW {:>8.2} B/c  E {:>12.0}",
            self.name,
            self.total_cycles,
            self.compute_utilization * 100.0,
            self.sram.total(),
            self.dram.total_bytes(),
            self.required_bandwidth(),
            self.energy.total(),
        )
    }
}

/// Results of simulating a whole topology, layer by layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    name: String,
    layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Assembles a report from per-layer results.
    pub fn new(name: impl Into<String>, layers: Vec<LayerReport>) -> Self {
        NetworkReport {
            name: name.into(),
            layers,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-layer reports, in execution order.
    pub fn layers(&self) -> &[LayerReport] {
        &self.layers
    }

    /// Finds a layer report by tag.
    pub fn layer(&self, name: &str) -> Option<&LayerReport> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Total runtime: layers execute serially, so cycles add.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Total useful MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.mac_ops).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram.total_bytes()).sum()
    }

    /// Total SRAM accesses.
    pub fn total_sram_accesses(&self) -> u64 {
        self.layers.iter().map(|l| l.sram.total()).sum()
    }

    /// Total runtime including memory stalls where the stall model ran
    /// (layers execute serially, so effective cycles add).
    pub fn total_effective_cycles(&self) -> u64 {
        self.layers.iter().map(LayerReport::effective_cycles).sum()
    }

    /// Worst per-layer stall-free bandwidth requirement (bytes/cycle).
    pub fn peak_required_bandwidth(&self) -> f64 {
        self.layers
            .iter()
            .map(LayerReport::required_bandwidth)
            .fold(0.0, f64::max)
    }

    /// Total energy across layers.
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for l in &self.layers {
            total.accumulate(&l.energy);
        }
        total
    }

    /// Network-wide compute utilization (MACs over provisioned PE-cycles).
    pub fn overall_utilization(&self) -> f64 {
        let pe_cycles: u64 = self
            .layers
            .iter()
            .map(|l| l.provisioned_macs() * l.total_cycles)
            .sum();
        if pe_cycles == 0 {
            0.0
        } else {
            self.total_macs() as f64 / pe_cycles as f64
        }
    }

    /// The header row of the CSV serialization, terminated by a newline.
    pub const CSV_HEADER: &'static str =
        "layer,cycles,macs,mapping_util,compute_util,sram_reads,sram_writes,\
         dram_reads,dram_writes,dram_bytes,req_bw_bytes_per_cycle,avg_bw_bytes_per_cycle,\
         energy,stalled_cycles\n";

    /// Serializes the per-layer metrics as CSV (one row per layer), in the
    /// spirit of the original tool's `REPORT.csv`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push_str(&self.csv_rows());
        out
    }

    /// The CSV data rows alone, without [`Self::CSV_HEADER`] — lets callers
    /// (e.g. the batch runner) concatenate rows from several reports into
    /// one file while staying byte-identical to per-report `to_csv` output.
    pub fn csv_rows(&self) -> String {
        let mut out = String::new();
        for l in &self.layers {
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4},{},{},{},{},{},{:.3},{:.3},{:.1},{}\n",
                l.name,
                l.total_cycles,
                l.mac_ops,
                l.mapping_utilization,
                l.compute_utilization,
                l.sram.a_reads + l.sram.b_reads + l.sram.o_reads,
                l.sram.o_writes,
                l.dram.reads_a + l.dram.reads_b + l.dram.reads_o,
                l.dram.writes_o,
                l.dram.total_bytes(),
                l.required_bandwidth(),
                l.average_bandwidth(),
                l.energy.total(),
                l.stall
                    .map(|s| s.stalled_cycles.to_string())
                    .unwrap_or_default(),
            ));
        }
        out
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network: {}", self.name)?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        write!(
            f,
            "  total: {} cycles, {} MACs, {} DRAM bytes, utilization {:.1}%, energy {:.0}",
            self.total_cycles(),
            self.total_macs(),
            self.total_dram_bytes(),
            self.overall_utilization() * 100.0,
            self.total_energy().total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_layer(name: &str, cycles: u64) -> LayerReport {
        LayerReport {
            name: name.into(),
            grid: PartitionGrid::monolithic(),
            array: ArrayShape::square(8),
            total_cycles: cycles,
            per_partition_cycles: vec![cycles],
            active_partitions: 1,
            mac_ops: cycles * 10,
            sram: SramCounts {
                a_reads: 5,
                b_reads: 5,
                o_reads: 0,
                o_writes: 2,
            },
            dram: DramSummary::default(),
            mapping_utilization: 0.5,
            compute_utilization: 0.25,
            energy: EnergyBreakdown {
                mac: 1.0,
                idle: 2.0,
                sram: 3.0,
                dram: 4.0,
            },
            stall: None,
        }
    }

    #[test]
    fn network_totals_sum_layers() {
        let report = NetworkReport::new("net", vec![dummy_layer("a", 100), dummy_layer("b", 50)]);
        assert_eq!(report.total_cycles(), 150);
        assert_eq!(report.total_macs(), 1500);
        assert_eq!(report.total_sram_accesses(), 24);
        assert_eq!(report.total_energy().total(), 20.0);
        assert!(report.layer("a").is_some());
        assert!(report.layer("z").is_none());
    }

    #[test]
    fn overall_utilization_weights_by_cycles() {
        let report = NetworkReport::new("net", vec![dummy_layer("a", 100)]);
        // 1000 MACs over 64 PEs * 100 cycles.
        assert!((report.overall_utilization() - 1000.0 / 6400.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_one_row_per_layer() {
        let report = NetworkReport::new("net", vec![dummy_layer("a", 1), dummy_layer("b", 2)]);
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("layer,cycles"));
    }

    #[test]
    fn display_is_nonempty() {
        let report = NetworkReport::new("net", vec![dummy_layer("a", 1)]);
        let text = report.to_string();
        assert!(text.contains("network: net"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn effective_cycles_prefers_stalled_runtime() {
        let mut layer = dummy_layer("a", 100);
        assert_eq!(layer.effective_cycles(), 100);
        layer.stall = Some(StallSummary {
            bandwidth: 1.0,
            compute_cycles: 100,
            stalled_cycles: 140,
            stall_cycles: 40,
            bus_utilization: 0.5,
        });
        assert_eq!(layer.effective_cycles(), 140);
        let report = NetworkReport::new("net", vec![layer, dummy_layer("b", 50)]);
        assert_eq!(report.total_effective_cycles(), 190);
        assert_eq!(report.total_cycles(), 150);
    }

    #[test]
    fn empty_network_utilization_is_zero() {
        let report = NetworkReport::new("empty", vec![]);
        assert_eq!(report.overall_utilization(), 0.0);
        assert_eq!(report.peak_required_bandwidth(), 0.0);
    }
}
