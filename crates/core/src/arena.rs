//! Per-worker simulation scratch (`SimArena`).
//!
//! The cold path of a sweep runs thousands of layer simulations, and each
//! one used to allocate its demand-stream vectors and operand buffers from
//! scratch — millions of short-lived heap allocations whose sizes repeat
//! almost exactly between neighbouring folds and design points. A
//! [`SimArena`] keeps that scratch alive per OS thread: the fold iterator
//! fills the same [`FoldDemandRuns`] in place via
//! `FoldDemandsRuns::next_into`, and retired [`scalesim_memory::RunBuffer`]s
//! go back into a [`BufferPool`] for the next `DramModel`. After the first
//! layer warms a worker, its fold loop performs no steady-state heap
//! allocation.
//!
//! The arena is deliberately thread-local rather than passed down the call
//! stack: `Simulator::run_layer` is a public, re-entrant API and partition
//! workers are plain scoped threads, so per-thread storage gives every
//! worker a private arena without threading `&mut` through the facade.

use std::cell::RefCell;

use scalesim_memory::{AddrRuns, BufferPool, IntervalSet};
use scalesim_systolic::FoldDemandRuns;

/// Reusable per-worker scratch for the layer fold loop.
///
/// One arena lives on each thread that runs simulations (sweep workers,
/// partition workers, the caller's own thread). All fields start empty and
/// grow to the largest working set the thread has seen.
#[derive(Debug, Default)]
pub struct SimArena {
    /// Retired operand [`scalesim_memory::RunBuffer`]s, reused by the next
    /// [`scalesim_memory::DramModel`] built on this thread.
    pub pool: BufferPool,
    /// Demand-stream scratch the fold iterator fills in place, one fold at
    /// a time.
    pub demand: FoldDemandRuns,
    /// First-use dedup set for the A stream, loaned to the demand iterator
    /// via `fold_demand_runs_in` and reclaimed after each layer.
    pub a_seen: IntervalSet,
    /// Raw `a_span` scratch, loaned alongside `a_seen`.
    pub a_scratch: AddrRuns,
}

thread_local! {
    static ARENA: RefCell<SimArena> = RefCell::new(SimArena::default());
}

/// Runs `f` with this thread's [`SimArena`].
///
/// # Panics
///
/// Panics if called re-entrantly from within `f` (the arena is a single
/// mutable resource per thread).
pub fn with_arena<R>(f: impl FnOnce(&mut SimArena) -> R) -> R {
    ARENA.with(|arena| f(&mut arena.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_persists_across_calls_on_one_thread() {
        with_arena(|arena| {
            let buf = arena.pool.take(16);
            arena.pool.put(buf);
        });
        with_arena(|arena| {
            assert_eq!(arena.pool.pooled(), 1);
            // Drain so other tests on this thread see a clean pool count.
            let _ = arena.pool.take(1);
        });
    }
}
