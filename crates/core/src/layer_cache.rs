//! Process-global layer-result memoization.
//!
//! A layer simulation is a pure function of the layer geometry, the
//! effective hardware configuration, the partition grid and the energy
//! constants — the layer *name* is a label, not an input. Real networks
//! repeat shapes heavily (every transformer block re-runs the same three
//! GEMMs; ResNet stages repeat their conv shape), and design-space sweeps
//! re-simulate the unchanged layers of every neighbouring design point.
//! Memoizing at layer granularity therefore removes whole simulations from
//! the cold path, beneath the sweep engine's per-point cache and the
//! server's job LRU (which both key entire jobs, not sub-problems).
//!
//! The key is a [`ContentKey`] (FNV-1a/128) over canonical text — the same
//! machinery the point and job caches use, so all three layers address one
//! stable, process-independent key space. The cached value is an
//! `Arc<LayerReport>`; a hit clones the report and patches the name back
//! in, so results are bit-identical to a fresh simulation.
//!
//! Telemetry: hit/miss counters are recorded by the simulator (see
//! [`crate::simulator::telemetry_names`]); this module wires the eviction
//! counter and resident-entries gauge straight into the LRU.

use std::sync::{Arc, OnceLock};

use scalesim_analytical::PartitionGrid;
use scalesim_energy::EnergyModel;
use scalesim_topology::Layer;

use crate::cache::{ContentKey, ShardedLru};
use crate::config::SimConfig;
use crate::report::LayerReport;
use crate::simulator::telemetry_names;

/// Cache capacity in entries. Sized for design-space exploration: a full
/// Fig. 9/10-style sweep touches a few hundred distinct (layer, config)
/// pairs, so thousands of slots hold several sweeps' working sets while a
/// `LayerReport` is small enough (a few hundred bytes) that the worst-case
/// footprint stays in the low megabytes.
const CAPACITY: usize = 4096;
const SHARDS: usize = 16;

fn cache() -> &'static ShardedLru<Arc<LayerReport>> {
    static CACHE: OnceLock<ShardedLru<Arc<LayerReport>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let registry = scalesim_telemetry::global();
        ShardedLru::new(CAPACITY, SHARDS).with_metrics(
            registry.counter(
                telemetry_names::LAYER_CACHE_EVICTIONS,
                "Layer-result cache LRU evictions.",
            ),
            registry.gauge(
                telemetry_names::LAYER_CACHE_RESIDENT,
                "Layer-result cache live entries.",
            ),
        )
    })
}

/// Computes the canonical sub-problem key for one layer simulation.
///
/// Everything [`crate::Simulator::run_layer`] depends on goes into the
/// text: the layer geometry (without its name), the *effective* config in
/// its canonical file serialization, the partition grid, and the energy
/// constants (`f64` Display round-trips exactly, so distinct models never
/// alias). `config` must be the effective config — dataflow already
/// resolved — or auto-dataflow runs would collide with fixed ones.
pub fn key(
    config: &SimConfig,
    grid: PartitionGrid,
    energy: &EnergyModel,
    layer: &Layer,
) -> ContentKey {
    let geometry = match layer {
        Layer::Conv(c) => format!(
            "conv:{},{},{},{},{},{},{},{}",
            c.ifmap_h(),
            c.ifmap_w(),
            c.filter_h(),
            c.filter_w(),
            c.channels(),
            c.num_filters(),
            c.stride_h(),
            c.stride_w(),
        ),
        Layer::Gemm { shape, .. } => format!("gemm:{},{},{}", shape.m, shape.k, shape.n),
    };
    let text = format!(
        "layer-v1\n{geometry}\ngrid:{}x{}\nenergy:{},{},{},{}\n{}",
        grid.rows(),
        grid.cols(),
        energy.mac,
        energy.idle_pe,
        energy.sram,
        energy.dram,
        config.to_config_string(),
    );
    ContentKey::from_content(text.as_bytes())
}

/// Looks up a previously simulated layer result.
pub fn lookup(key: ContentKey) -> Option<Arc<LayerReport>> {
    cache().get(key.0)
}

/// Publishes a freshly simulated layer result.
pub fn store(key: ContentKey, report: Arc<LayerReport>) {
    cache().insert(key.0, report);
}

/// Drops every memoized layer result. Benchmarks use this to measure the
/// true cold path; it is never required for correctness.
pub fn clear() {
    cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::ConvLayer;

    fn config() -> SimConfig {
        SimConfig::builder().build()
    }

    #[test]
    fn key_ignores_the_layer_name_only() {
        let grid = PartitionGrid::monolithic();
        let energy = EnergyModel::default();
        let a = key(&config(), grid, &energy, &Layer::gemm("a", 8, 4, 8));
        let b = key(&config(), grid, &energy, &Layer::gemm("b", 8, 4, 8));
        assert_eq!(a, b, "the name is a label, not a simulation input");
        let c = key(&config(), grid, &energy, &Layer::gemm("a", 8, 5, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn key_separates_every_simulation_input() {
        let grid = PartitionGrid::monolithic();
        let energy = EnergyModel::default();
        let layer = Layer::gemm("g", 16, 16, 16);
        let base = key(&config(), grid, &energy, &layer);

        let wide = SimConfig {
            array: scalesim_systolic::ArrayShape::new(8, 32),
            ..config()
        };
        assert_ne!(base, key(&wide, grid, &energy, &layer));

        assert_ne!(
            base,
            key(&config(), PartitionGrid::new(2, 2), &energy, &layer)
        );

        let hot = EnergyModel {
            dram: energy.dram * 2.0,
            ..energy
        };
        assert_ne!(base, key(&config(), grid, &hot, &layer));

        // A conv and the GEMM it lowers to are different address spaces.
        let conv = ConvLayer::new("c", 6, 6, 3, 3, 4, 16, 1).unwrap();
        assert_ne!(base, key(&config(), grid, &energy, &conv.into()));
    }

    #[test]
    fn conv_key_covers_the_full_geometry() {
        let grid = PartitionGrid::monolithic();
        let energy = EnergyModel::default();
        let base: Layer = ConvLayer::new("c", 8, 8, 3, 3, 2, 5, 1).unwrap().into();
        let strided: Layer = ConvLayer::new("c", 8, 8, 3, 3, 2, 5, 2).unwrap().into();
        assert_ne!(
            key(&config(), grid, &energy, &base),
            key(&config(), grid, &energy, &strided),
            "stride changes the address stream even when M,K,N shrink together"
        );
    }

    #[test]
    fn store_then_lookup_round_trips() {
        // A synthetic key no real simulation can produce: tests share the
        // process-global cache, so this test must neither clear it nor
        // collide with keys other tests simulate.
        let k = ContentKey::from_content(b"layer-cache-round-trip-test");
        assert!(lookup(k).is_none());
        let report = Arc::new(LayerReport {
            name: "round_trip_probe".into(),
            grid: PartitionGrid::monolithic(),
            array: scalesim_systolic::ArrayShape::square(4),
            total_cycles: 7,
            per_partition_cycles: vec![7],
            active_partitions: 1,
            mac_ops: 27,
            sram: Default::default(),
            dram: Default::default(),
            mapping_utilization: 0.5,
            compute_utilization: 0.25,
            energy: Default::default(),
            stall: None,
        });
        store(k, Arc::clone(&report));
        let back = lookup(k).expect("stored entry must be resident");
        assert_eq!(*back, *report);
    }
}
