//! Error types for the facade.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing a SCALE-Sim configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseConfigError {
    /// A line was not `key = value` / `key : value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A numeric parameter failed to parse.
    InvalidNumber {
        /// 1-based line number.
        line: usize,
        /// Parameter name.
        key: String,
        /// The rejected text.
        text: String,
    },
    /// The `Dataflow` parameter was not `os`, `ws` or `is`.
    InvalidDataflow {
        /// 1-based line number.
        line: usize,
        /// The rejected text.
        text: String,
    },
    /// An unrecognized parameter name.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown parameter name.
        key: String,
    },
    /// A parameter that must be nonzero was zero.
    ZeroParameter {
        /// Parameter name.
        key: &'static str,
    },
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseConfigError::Malformed { line, text } => {
                write!(f, "line {line}: expected `key = value`, got `{text}`")
            }
            ParseConfigError::InvalidNumber { line, key, text } => {
                write!(
                    f,
                    "line {line}: parameter `{key}` is not a number: `{text}`"
                )
            }
            ParseConfigError::InvalidDataflow { line, text } => {
                write!(
                    f,
                    "line {line}: dataflow must be `os`, `ws` or `is`, got `{text}`"
                )
            }
            ParseConfigError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown parameter `{key}`")
            }
            ParseConfigError::ZeroParameter { key } => {
                write!(f, "parameter `{key}` must be nonzero")
            }
        }
    }
}

impl Error for ParseConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<ParseConfigError> = vec![
            ParseConfigError::Malformed {
                line: 1,
                text: "x".into(),
            },
            ParseConfigError::InvalidNumber {
                line: 2,
                key: "ArrayHeight".into(),
                text: "abc".into(),
            },
            ParseConfigError::InvalidDataflow {
                line: 3,
                text: "rs".into(),
            },
            ParseConfigError::UnknownKey {
                line: 4,
                key: "Bogus".into(),
            },
            ParseConfigError::ZeroParameter { key: "ArrayWidth" },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseConfigError>();
    }
}
