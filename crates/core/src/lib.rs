#![warn(missing_docs)]

//! # scale-sim-rs
//!
//! A from-scratch Rust implementation of **SCALE-Sim** — the cycle-accurate,
//! configurable systolic-array DNN accelerator simulator of Samajdar et al.
//! (ISPASS 2020) — together with the paper's analytical runtime model and
//! its scale-up vs. scale-out methodology.
//!
//! This crate is the user-facing facade. It ties together:
//!
//! * [`scalesim_topology`] — workloads (conv/GEMM layers, topology CSV
//!   files, built-in networks like ResNet-50 and the Table IV language
//!   models);
//! * [`scalesim_systolic`] — the OS/WS/IS cycle-accurate trace engines and
//!   the register-level PE-grid golden model;
//! * [`scalesim_memory`] — operand address maps, double-buffered SRAMs and
//!   the DRAM interface/bandwidth model;
//! * [`scalesim_analytical`] — Eqs. 1–6, aspect-ratio and partition-grid
//!   search, multi-workload pareto optimization;
//! * [`scalesim_energy`] — the relative energy model of Fig. 12.
//!
//! # Quickstart
//!
//! ```
//! use scalesim::{SimConfig, Simulator};
//! use scalesim_topology::networks;
//!
//! // A 32x32 output-stationary accelerator with the paper's SRAM sizing.
//! let config = SimConfig::default();
//! let sim = Simulator::new(config);
//!
//! let alexnet = networks::alexnet();
//! let report = sim.run_topology(&alexnet);
//! println!("{report}");
//! assert_eq!(report.layers().len(), 8);
//! assert!(report.total_cycles() > 0);
//! ```
//!
//! # Scale-out
//!
//! The same simulator runs partitioned (scale-out) configurations: a
//! `P_R × P_C` grid of identical arrays, each owning a tile of every
//! layer's output space, with the SRAM budget divided evenly (Sec. III-C
//! of the paper):
//!
//! ```
//! use scalesim::{PartitionGrid, SimConfig, Simulator};
//! use scalesim_topology::networks;
//!
//! let sim = Simulator::new(SimConfig::default())
//!     .with_grid(PartitionGrid::new(2, 2));
//! let tf0 = networks::language_model("TF0").unwrap();
//! let report = sim.run_layer(&tf0);
//! assert_eq!(report.active_partitions, 4);
//! ```

pub mod arena;
pub mod cache;
mod config;
mod error;
pub mod exec;
pub mod explore;
pub mod layer_cache;
pub mod pipeline;
mod report;
mod simulator;
pub mod sweep;

pub use crate::arena::{with_arena, SimArena};
pub use crate::cache::{ContentKey, ShardedLru};
pub use crate::config::{parse_config, SimConfig, SimConfigBuilder};
pub use crate::error::ParseConfigError;
pub use crate::exec::{ExecSummary, FaultPlan, SimError};
pub use crate::explore::{
    predict_cycles, ExploreBudget, ExploreEngine, ExploreOptions, ExploreOutcome, MeasuredPoint,
    PruneOutcome, SurvivorPoint,
};
pub use crate::pipeline::{balance_stages, run_pipeline, PipelineReport, StageReport};
pub use crate::report::{LayerReport, NetworkReport};
pub use crate::simulator::{telemetry_names, Simulator};
pub use crate::sweep::{
    run_partition_sweep, sweet_spot, sweet_spot_index, DataflowChoice, PlanSpaceSummary, PointSpec,
    SweepEngine, SweepOutcome, SweepPlan, SweepPoint,
};

// The vocabulary types users need with the facade.
pub use scalesim_analytical::{PartitionGrid, ScaleOutConfig};
pub use scalesim_energy::{EnergyBreakdown, EnergyModel};
pub use scalesim_memory::{DramSummary, RegionOffsets};
pub use scalesim_systolic::{ArrayShape, ComputeReport, SramCounts};
pub use scalesim_topology::{ConvLayer, Dataflow, GemmShape, Layer, Topology};
