//! Programmatic scaling sweeps — the Fig. 11/12 experiment as an API.
//!
//! Given a layer and a MAC budget, [`run_partition_sweep`] simulates every
//! power-of-two partition count (square-ish grids of square-ish arrays,
//! the paper's arrangement) and returns the full reports, so callers can
//! plot runtime, bandwidth and energy against partition count — or just
//! ask [`sweet_spot`] for the paper's "intersection of runtime and
//! bandwidth curves".

use serde::{Deserialize, Serialize};

use scalesim_analytical::PartitionGrid;
use scalesim_systolic::ArrayShape;
use scalesim_topology::Layer;

use crate::config::SimConfig;
use crate::report::LayerReport;
use crate::simulator::Simulator;

/// Splits a power-of-two `n` into the most square `(rows, cols)` pair with
/// `rows ≥ cols`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn squareish(n: u64) -> (u64, u64) {
    assert!(n.is_power_of_two(), "need a power of two, got {n}");
    let rows = 1u64 << n.trailing_zeros().div_ceil(2);
    (rows, n / rows)
}

/// One point of a partition sweep: the configuration and its full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The partition grid.
    pub grid: PartitionGrid,
    /// The per-partition array.
    pub array: ArrayShape,
    /// The simulated layer report.
    pub report: LayerReport,
}

impl SweepPoint {
    /// Number of partitions at this point.
    pub fn partitions(&self) -> u64 {
        self.grid.count()
    }
}

/// Simulates `layer` at every power-of-two partition count of `mac_budget`
/// (down to `min_dim × min_dim` arrays), inheriting SRAM sizes, dataflow
/// and bandwidth settings from `base` (the array field is replaced per
/// point; the SRAM budget divides across partitions as usual).
///
/// Points are returned in ascending partition count, starting monolithic.
///
/// # Panics
///
/// Panics if `mac_budget`/`min_dim` are not powers of two or the budget
/// cannot fit one `min_dim × min_dim` array.
pub fn run_partition_sweep(
    layer: &Layer,
    base: &SimConfig,
    mac_budget: u64,
    min_dim: u64,
) -> Vec<SweepPoint> {
    assert!(
        mac_budget.is_power_of_two() && min_dim.is_power_of_two(),
        "budget and min_dim must be powers of two"
    );
    assert!(
        mac_budget >= min_dim * min_dim,
        "budget {mac_budget} cannot fit a {min_dim}x{min_dim} array"
    );
    let mut points = Vec::new();
    let mut partitions = 1u64;
    while mac_budget / partitions >= min_dim * min_dim {
        let (gr, gc) = squareish(partitions);
        let (ar, ac) = squareish(mac_budget / partitions);
        let grid = PartitionGrid::new(gr, gc);
        let array = ArrayShape::new(ar, ac);
        let config = SimConfig { array, ..*base };
        let report = Simulator::new(config).with_grid(grid).run_layer(layer);
        points.push(SweepPoint {
            grid,
            array,
            report,
        });
        partitions *= 2;
    }
    points
}

/// The paper's sweet spot: "the intersection of runtime and bandwidth
/// curves" (Sec. IV-A). Both series are normalized to their sweep maxima;
/// the sweet spot is the first point where the rising bandwidth curve
/// meets or crosses the falling runtime curve. Returns `None` only for an
/// empty sweep.
pub fn sweet_spot(points: &[SweepPoint]) -> Option<&SweepPoint> {
    if points.is_empty() {
        return None;
    }
    let max_cycles = points
        .iter()
        .map(|p| p.report.total_cycles)
        .max()
        .expect("nonempty") as f64;
    let max_bw = points
        .iter()
        .map(|p| p.report.required_bandwidth())
        .fold(0.0, f64::max);
    if max_bw == 0.0 || max_cycles == 0.0 {
        return points.first();
    }
    points
        .iter()
        .find(|p| {
            p.report.required_bandwidth() / max_bw >= p.report.total_cycles as f64 / max_cycles
        })
        .or_else(|| points.last())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::networks;

    #[test]
    fn squareish_splits() {
        assert_eq!(squareish(1), (1, 1));
        assert_eq!(squareish(8), (4, 2));
        assert_eq!(squareish(1 << 14), (128, 128));
    }

    #[test]
    fn sweep_covers_all_partition_counts() {
        let layer = networks::language_model("TF1").unwrap();
        let base = SimConfig::builder().sram_kb(64, 64, 32).build();
        let points = run_partition_sweep(&layer, &base, 1 << 10, 8);
        // 2^10 budget, 8x8 floor: P = 1..16 -> 5 points.
        assert_eq!(points.len(), 5);
        assert!(points
            .iter()
            .all(|p| p.grid.count() * p.array.macs() == 1 << 10));
        // The Fig. 11 shape: end-to-end, runtime falls and bandwidth rises.
        // (The paper calls the runtime trend "almost monotonic" — fixed
        // square-ish grids can mis-split a skewed layer at one point, so
        // only the endpoints are asserted strictly.)
        assert!(points.last().unwrap().report.total_cycles < points[0].report.total_cycles);
        assert!(
            points.last().unwrap().report.required_bandwidth()
                > points[0].report.required_bandwidth()
        );
    }

    #[test]
    fn sweet_spot_is_an_interior_crossing() {
        let layer = networks::language_model("TF1").unwrap();
        let base = SimConfig::builder().sram_kb(64, 64, 32).build();
        let points = run_partition_sweep(&layer, &base, 1 << 12, 8);
        let spot = sweet_spot(&points).expect("nonempty sweep");
        // The crossing cannot be the monolithic point (bandwidth starts
        // below runtime on this workload) and must exist.
        assert!(spot.partitions() >= 1);
        assert!(points.iter().any(|p| p.grid == spot.grid));
    }

    #[test]
    fn sweet_spot_of_empty_sweep_is_none() {
        assert!(sweet_spot(&[]).is_none());
    }
}
