//! The design-space sweep engine: parallel, cache-aware evaluation of
//! (workload × budget × partition grid × aspect ratio × dataflow) points.
//!
//! The paper's headline results (Sec. IV, Figs. 9–12) are design-space
//! studies: thousands of cycle-accurate simulations over the cartesian
//! product of array budgets, aspect ratios, partition grids and workloads.
//! [`SweepPlan`] names such a product, and [`SweepEngine`] evaluates it
//!
//! * **in parallel** — a crossbeam scoped worker pool (`--jobs N`) pulls
//!   points off a shared work list;
//! * **memoized** — every point is content-addressed by the same canonical
//!   job text the `scalesim-server` cache uses ([`canonical_job_text`]),
//!   deduplicated through a [`ShardedLru`], so duplicate points inside a
//!   plan and repeats across plans are never re-simulated;
//! * **deterministically streamed** — results are emitted to a
//!   [`SweepSink`] in plan order as they complete, regardless of worker
//!   completion order, so parallel output is byte-identical to a serial
//!   run.
//!
//! The classic [`run_partition_sweep`] (the Fig. 11/12 experiment as an
//! API) is now a thin wrapper over this engine, and [`sweet_spot`] still
//! answers the paper's "intersection of runtime and bandwidth curves".

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use scalesim_analytical::{aspect_ratio_shapes, PartitionGrid};
use scalesim_systolic::ArrayShape;
use scalesim_telemetry::{Counter, Histogram, Registry};
use scalesim_topology::{networks, topology_to_csv, Dataflow, Layer, Topology};

use crate::cache::{ContentKey, ShardedLru};
use crate::config::{parse_config, SimConfig};
use crate::exec::{ExecSummary, Executor, FaultPlan, SimError};
use crate::report::{LayerReport, NetworkReport};
use crate::simulator::Simulator;

/// Metric names the sweep engine records (into the registry it was created
/// with — [`scalesim_telemetry::global`] by default). Part of the public
/// API: servers and dashboards read these back by name.
pub mod telemetry_names {
    /// Counter: sweep points completed (any path).
    pub const POINTS: &str = "scalesim_sweep_points_total";
    /// Counter: points served without a fresh simulation (in-plan
    /// duplicates and LRU hits from earlier plans).
    pub const CACHE_HITS: &str = "scalesim_sweep_cache_hits_total";
    /// Counter: simulations the sweep pool actually executed.
    pub const SIMULATIONS: &str = "scalesim_sweep_simulations_total";
    /// Histogram: wall time per freshly simulated point, seconds.
    pub const POINT_SECONDS: &str = "scalesim_sweep_point_seconds";
    /// Counter: results evicted from the sweep result cache.
    pub const CACHE_EVICTIONS: &str = "scalesim_sweep_cache_evictions_total";
    /// Gauge: results currently held by the sweep result cache.
    pub const CACHE_RESIDENT: &str = "scalesim_sweep_cache_resident_entries";
    /// Counter: layer-granularity tasks executed by the sweep's
    /// work-stealing pool (re-exported from [`crate::exec`]).
    pub const EXEC_TASKS: &str = crate::exec::telemetry_names::TASKS;
    /// Counter: tasks obtained by stealing from another worker.
    pub const EXEC_STEALS: &str = crate::exec::telemetry_names::STEALS;
}

/// Splits a power-of-two `n` into the most square `(rows, cols)` pair with
/// `rows ≥ cols`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn squareish(n: u64) -> (u64, u64) {
    assert!(n.is_power_of_two(), "need a power of two, got {n}");
    let rows = 1u64 << n.trailing_zeros().div_ceil(2);
    (rows, n / rows)
}

/// The canonical text a simulation job's content key is derived from.
///
/// Every semantic field appears via the simulator's own round-tripping
/// serializers, so any two requests that simulate identically serialize
/// identically. This is the *shared* key space of the sweep engine and the
/// `scalesim-server` result cache — both hash exactly this text.
///
/// `auto_dataflow` appends a marker line only when set, keeping keys of
/// fixed-dataflow jobs stable across versions.
pub fn canonical_job_text(
    config: &SimConfig,
    workload: &str,
    grid: PartitionGrid,
    topology_csv: &str,
    auto_dataflow: bool,
) -> String {
    let mut text = format!(
        "config:\n{}\nworkload: {}\ngrid: {}x{}\ntopology:\n{}",
        config.to_config_string(),
        workload,
        grid.rows(),
        grid.cols(),
        topology_csv,
    );
    if auto_dataflow {
        text.push_str("auto_dataflow: true\n");
    }
    text
}

/// The dataflow axis of a sweep: a fixed mapping or per-layer auto
/// selection (the analytical model picks the fastest mapping per layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowChoice {
    /// Every layer runs the given dataflow.
    Fixed(Dataflow),
    /// The fastest dataflow is selected per layer (Sec. III-B model).
    Auto,
}

impl fmt::Display for DataflowChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowChoice::Fixed(df) => write!(f, "{df}"),
            DataflowChoice::Auto => write!(f, "auto"),
        }
    }
}

impl std::str::FromStr for DataflowChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<DataflowChoice, String> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(DataflowChoice::Auto);
        }
        s.parse::<Dataflow>()
            .map(DataflowChoice::Fixed)
            .map_err(|_| format!("bad dataflow `{s}` (want os/ws/is/auto)"))
    }
}

/// The partition-grid axis of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridAxis {
    /// Every power-of-two partition count that keeps the per-partition
    /// array at or above the `min_dim × min_dim` floor, arranged
    /// square-ish (the paper's arrangement).
    PowersOfTwo,
    /// An explicit list of grids.
    Explicit(Vec<PartitionGrid>),
}

/// The array aspect-ratio axis of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AspectAxis {
    /// One square-ish array per per-partition budget.
    Squareish,
    /// Every power-of-two aspect ratio from tall to wide (Fig. 9/10).
    All,
}

/// One workload of a sweep: a display label plus the resolved topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepWorkload {
    /// Label used in point rows and grouping (e.g. `"TF0"`).
    pub label: String,
    /// The topology simulated at every point of this workload.
    pub topology: Topology,
}

/// A design-space sweep: the cartesian product of workloads, MAC budgets,
/// partition grids, array aspect ratios and dataflows, over a base
/// hardware configuration.
///
/// Build one programmatically or parse the plan-file format with
/// [`SweepPlan::parse`]; expand it to points with [`SweepPlan::expand`];
/// run it with [`SweepEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Plan name (reports and telemetry only).
    pub name: String,
    /// Base hardware configuration; the array (and possibly dataflow) is
    /// replaced per point, SRAM sizes and bandwidth are inherited.
    pub base: SimConfig,
    /// Workloads to sweep.
    pub workloads: Vec<SweepWorkload>,
    /// Total MAC budgets (powers of two).
    pub budgets: Vec<u64>,
    /// Minimum array dimension (power of two), the paper's 8 by default.
    pub min_dim: u64,
    /// Partition-grid axis.
    pub grids: GridAxis,
    /// Array aspect-ratio axis.
    pub aspects: AspectAxis,
    /// Dataflow axis; empty means "the base configuration's dataflow".
    pub dataflows: Vec<DataflowChoice>,
}

impl SweepPlan {
    /// A plan with the paper's defaults: base [`SimConfig::default`],
    /// `min_dim = 8`, power-of-two square-ish grids, square-ish arrays,
    /// the base dataflow. Add workloads and budgets before running.
    pub fn new(name: impl Into<String>) -> SweepPlan {
        SweepPlan {
            name: name.into(),
            base: SimConfig::default(),
            workloads: Vec::new(),
            budgets: Vec::new(),
            min_dim: 8,
            grids: GridAxis::PowersOfTwo,
            aspects: AspectAxis::Squareish,
            dataflows: Vec::new(),
        }
    }

    /// Adds a workload resolved by name via [`networks::by_name`]
    /// (built-in networks or Table IV layer tags like `TF0`).
    pub fn workload(mut self, name: &str) -> Result<SweepPlan, SweepError> {
        let topology = networks::by_name(name)
            .ok_or_else(|| SweepError::plan(format!("unknown workload `{name}`")))?;
        self.workloads.push(SweepWorkload {
            label: topology.name().to_owned(),
            topology,
        });
        Ok(self)
    }

    /// Parses the plan-file format: `key = value` lines (`:` works too),
    /// `#` comments. Keys:
    ///
    /// | key | value |
    /// |---|---|
    /// | `name` | plan name |
    /// | `workload` | comma-separated workload names ([`networks::by_name`] vocabulary); repeatable |
    /// | `budget` | comma-separated total MAC budgets, plain (`16384`) or exponent (`2^14`); repeatable |
    /// | `min_dim` | minimum array dimension (default 8) |
    /// | `grid` | `all` (power-of-two counts, square-ish) or comma-separated `PRxPC` list |
    /// | `aspect` | `squareish` (default) or `all` (every power-of-two ratio) |
    /// | `dataflow` | comma-separated `os`/`ws`/`is`/`auto` |
    /// | `bandwidth` | DRAM bytes/cycle; enables the stall model |
    /// | `config.<Key>` | base-config override in Table I vocabulary (e.g. `config.IfmapSramSz`) |
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] on unknown keys, unknown workloads or
    /// malformed values.
    pub fn parse(text: &str) -> Result<SweepPlan, SweepError> {
        Self::parse_with_origin(text, None)
    }

    /// Like [`SweepPlan::parse`], but diagnostics carry `origin` (usually
    /// the plan's file name) ahead of the line number, `origin:line: msg`
    /// style, so errors from multi-file tooling point at the right file.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] on unknown keys, unknown workloads or
    /// malformed values.
    ///
    /// ```
    /// use scalesim::SweepPlan;
    ///
    /// let err = SweepPlan::parse_named("budget = nonsense", "fig9.plan").unwrap_err();
    /// assert!(err.to_string().starts_with("fig9.plan:1: "));
    /// ```
    pub fn parse_named(text: &str, origin: &str) -> Result<SweepPlan, SweepError> {
        Self::parse_with_origin(text, Some(origin))
    }

    fn parse_with_origin(text: &str, origin: Option<&str>) -> Result<SweepPlan, SweepError> {
        let mut plan = SweepPlan::new("sweep");
        let mut overrides = String::new();
        let mut bandwidth = None;
        // Diagnostic prefix: `origin:line:` when a file name is known,
        // bare `line N:` otherwise (the historical format).
        let at = |lineno: usize| match origin {
            Some(name) => format!("{name}:{}", lineno + 1),
            None => format!("line {}", lineno + 1),
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .or_else(|| line.split_once(':'))
                .ok_or_else(|| {
                    SweepError::plan(format!("{}: expected `key = value`", at(lineno)))
                })?;
            let (key, value) = (key.trim(), value.trim());
            let fail = |msg: String| SweepError::plan(format!("{}: {msg}", at(lineno)));
            match key {
                "name" => plan.name = value.to_owned(),
                "workload" => {
                    for name in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        plan = plan.workload(name).map_err(|e| fail(e.to_string()))?;
                    }
                }
                "budget" => {
                    for token in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        plan.budgets.push(
                            parse_budget(token)
                                .ok_or_else(|| fail(format!("bad budget `{token}`")))?,
                        );
                    }
                }
                "min_dim" => {
                    plan.min_dim = value
                        .parse()
                        .map_err(|_| fail(format!("bad min_dim `{value}`")))?;
                }
                "grid" => {
                    if value.eq_ignore_ascii_case("all") {
                        plan.grids = GridAxis::PowersOfTwo;
                    } else {
                        let mut grids = Vec::new();
                        for token in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                            let (r, c) = token
                                .split_once('x')
                                .ok_or_else(|| fail(format!("grid `{token}` is not PRxPC")))?;
                            let r: u64 = r
                                .trim()
                                .parse()
                                .map_err(|_| fail(format!("bad grid rows `{r}`")))?;
                            let c: u64 = c
                                .trim()
                                .parse()
                                .map_err(|_| fail(format!("bad grid cols `{c}`")))?;
                            if r == 0 || c == 0 {
                                return Err(fail("grid dimensions must be nonzero".into()));
                            }
                            grids.push(PartitionGrid::new(r, c));
                        }
                        plan.grids = GridAxis::Explicit(grids);
                    }
                }
                "aspect" => {
                    plan.aspects = match value.to_ascii_lowercase().as_str() {
                        "squareish" | "square" => AspectAxis::Squareish,
                        "all" => AspectAxis::All,
                        other => {
                            return Err(fail(format!(
                                "bad aspect `{other}` (want squareish or all)"
                            )))
                        }
                    };
                }
                "dataflow" => {
                    for token in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        plan.dataflows.push(token.parse().map_err(fail)?);
                    }
                }
                "bandwidth" => {
                    let bw: f64 = value
                        .parse()
                        .map_err(|_| fail(format!("bad bandwidth `{value}`")))?;
                    if !(bw.is_finite() && bw > 0.0) {
                        return Err(fail("bandwidth must be positive".into()));
                    }
                    bandwidth = Some(bw);
                }
                _ => match key.strip_prefix("config.") {
                    Some(cfg_key) => {
                        overrides.push_str(&format!("{cfg_key} : {value}\n"));
                    }
                    None => return Err(fail(format!("unknown plan key `{key}`"))),
                },
            }
        }
        if !overrides.is_empty() {
            plan.base = parse_config(&overrides).map_err(|e| match origin {
                Some(name) => SweepError::plan(format!("{name}: config override: {e}")),
                None => SweepError::plan(format!("config override: {e}")),
            })?;
        }
        if let Some(bw) = bandwidth {
            plan.base.dram_bandwidth = Some(bw);
        }
        Ok(plan)
    }

    /// The dataflow axis with the empty-means-base default applied.
    fn dataflow_axis(&self) -> Vec<DataflowChoice> {
        if self.dataflows.is_empty() {
            vec![DataflowChoice::Fixed(self.base.dataflow)]
        } else {
            self.dataflows.clone()
        }
    }

    /// Expands the plan into its ordered list of points: workloads ×
    /// budgets × grids × aspect ratios × dataflows, in that nesting order.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] if the plan is empty or any budget /
    /// grid combination is invalid (budgets and `min_dim` must be powers
    /// of two; every grid must split its budget into a power-of-two
    /// per-partition array of at least `min_dim × min_dim`).
    pub fn expand(&self) -> Result<Vec<PointSpec>, SweepError> {
        Ok(self.points()?.collect())
    }

    /// Validates the plan and returns a lazy iterator over its points, in
    /// exactly the order [`SweepPlan::expand`] would materialize them.
    ///
    /// Per-budget `(grid, array)` combinations are computed eagerly (they
    /// are small), but the workload × combination × dataflow product is
    /// generated on demand — a million-point space costs no allocation
    /// beyond the per-budget tables, which is what lets explore's stage 0
    /// walk spaces far too large to expand.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] under the same conditions as
    /// [`SweepPlan::expand`].
    pub fn points(&self) -> Result<PointIter<'_>, SweepError> {
        PointIter::new(self)
    }

    /// Per-budget validated `(grid, array)` combinations — the shared
    /// candidate generator behind [`SweepPlan::expand`], `sweep --dry-run`
    /// and explore stage 0.
    fn budget_combos(&self, budget: u64) -> Result<Vec<(PartitionGrid, ArrayShape)>, SweepError> {
        let floor = self.min_dim * self.min_dim;
        if !budget.is_power_of_two() || budget < floor {
            return Err(SweepError::plan(format!(
                "budget {budget} must be a power of two of at least {floor} MACs"
            )));
        }
        let grids: Vec<PartitionGrid> = match &self.grids {
            GridAxis::PowersOfTwo => {
                let mut grids = Vec::new();
                let mut p = 1u64;
                while budget / p >= floor {
                    let (gr, gc) = squareish(p);
                    grids.push(PartitionGrid::new(gr, gc));
                    p *= 2;
                }
                grids
            }
            GridAxis::Explicit(grids) => grids.clone(),
        };
        let mut combos = Vec::new();
        for grid in grids {
            let count = grid.count();
            if !budget.is_multiple_of(count) || !(budget / count).is_power_of_two() {
                return Err(SweepError::plan(format!(
                    "grid {grid} does not split budget {budget} into a power of two"
                )));
            }
            let per_array = budget / count;
            if per_array < floor {
                return Err(SweepError::plan(format!(
                    "grid {grid} leaves {per_array} MACs per array, below the \
                     {}x{} floor",
                    self.min_dim, self.min_dim
                )));
            }
            match self.aspects {
                AspectAxis::Squareish => {
                    let (ar, ac) = squareish(per_array);
                    combos.push((grid, ArrayShape::new(ar, ac)));
                }
                AspectAxis::All => {
                    combos.extend(
                        aspect_ratio_shapes(per_array, self.min_dim)
                            .into_iter()
                            .map(|array| (grid, array)),
                    );
                }
            }
        }
        Ok(combos)
    }

    /// Validates the plan and summarizes its candidate space without
    /// simulating anything — the engine behind `scale-sim sweep --dry-run`.
    ///
    /// The duplicate count is exact: it groups points by the same identity
    /// the [`SweepEngine`]'s content-addressed dedup uses (workload, grid,
    /// array, effective dataflow), so `points - distinct_jobs` is the
    /// number of simulations a run would save before the LRU cache even
    /// gets a say.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] under the same conditions as
    /// [`SweepPlan::expand`].
    pub fn space_summary(&self) -> Result<PlanSpaceSummary, SweepError> {
        let iter = self.points()?;
        let per_budget: Vec<BudgetBreakdown> = self
            .budgets
            .iter()
            .zip(&iter.combos)
            .map(|(&budget, combos)| {
                let mut grids: Vec<PartitionGrid> = combos.iter().map(|&(g, _)| g).collect();
                grids.dedup();
                BudgetBreakdown {
                    budget,
                    grids: grids.len(),
                    combos: combos.len(),
                }
            })
            .collect();
        let dataflows = iter.dataflows.len();
        let points = iter.len();
        let mut seen = HashSet::new();
        for spec in self.points()? {
            let effective = match spec.dataflow {
                DataflowChoice::Fixed(df) => (df, false),
                DataflowChoice::Auto => (self.base.dataflow, true),
            };
            seen.insert((spec.workload, spec.grid, spec.array, effective));
        }
        Ok(PlanSpaceSummary {
            points,
            distinct_jobs: seen.len(),
            workloads: self.workloads.len(),
            budgets: self.budgets.len(),
            dataflows,
            per_budget,
        })
    }
}

/// A lazy, validating iterator over a plan's design points in plan order.
///
/// Created by [`SweepPlan::points`]. The iterator is exact-size: the full
/// cartesian count is known up front from the per-budget tables.
pub struct PointIter<'a> {
    plan: &'a SweepPlan,
    dataflows: Vec<DataflowChoice>,
    /// Validated `(grid, array)` pairs, one table per plan budget.
    combos: Vec<Vec<(PartitionGrid, ArrayShape)>>,
    index: usize,
    total: usize,
    /// Cursor: (workload, budget, combo, dataflow).
    w: usize,
    b: usize,
    c: usize,
    d: usize,
}

impl<'a> PointIter<'a> {
    fn new(plan: &'a SweepPlan) -> Result<PointIter<'a>, SweepError> {
        if plan.workloads.is_empty() {
            return Err(SweepError::plan("plan has no workloads"));
        }
        if plan.budgets.is_empty() {
            return Err(SweepError::plan("plan has no budgets"));
        }
        if !plan.min_dim.is_power_of_two() {
            return Err(SweepError::plan(format!(
                "min_dim {} is not a power of two",
                plan.min_dim
            )));
        }
        let combos: Vec<Vec<(PartitionGrid, ArrayShape)>> = plan
            .budgets
            .iter()
            .map(|&budget| plan.budget_combos(budget))
            .collect::<Result<_, _>>()?;
        let dataflows = plan.dataflow_axis();
        let per_workload = combos.iter().map(Vec::len).sum::<usize>() * dataflows.len();
        let total = per_workload * plan.workloads.len();
        Ok(PointIter {
            plan,
            dataflows,
            combos,
            index: 0,
            total,
            w: 0,
            b: 0,
            c: 0,
            d: 0,
        })
    }
}

impl Iterator for PointIter<'_> {
    type Item = PointSpec;

    fn next(&mut self) -> Option<PointSpec> {
        // Skip budgets whose combo table is empty (possible with explicit
        // grids only; `budget_combos` rejects empty power-of-two tables).
        while self.b < self.combos.len() && self.combos[self.b].is_empty() {
            self.b += 1;
        }
        if self.w >= self.plan.workloads.len() || self.b >= self.combos.len() {
            return None;
        }
        let (grid, array) = self.combos[self.b][self.c];
        let spec = PointSpec {
            index: self.index,
            workload: self.plan.workloads[self.w].label.clone(),
            budget: self.plan.budgets[self.b],
            grid,
            array,
            dataflow: self.dataflows[self.d],
        };
        self.index += 1;
        self.d += 1;
        if self.d == self.dataflows.len() {
            self.d = 0;
            self.c += 1;
            if self.c == self.combos[self.b].len() {
                self.c = 0;
                self.b += 1;
                if self.b == self.combos.len() {
                    self.b = 0;
                    self.w += 1;
                }
            }
        }
        Some(spec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PointIter<'_> {}

/// Per-budget axis breakdown inside a [`PlanSpaceSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetBreakdown {
    /// The MAC budget.
    pub budget: u64,
    /// Distinct partition grids at this budget.
    pub grids: usize,
    /// `(grid, array)` combinations at this budget (grids × aspect
    /// ratios).
    pub combos: usize,
}

/// What `sweep --dry-run` reports: the size and shape of a plan's
/// candidate space, computed without simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSpaceSummary {
    /// Total cartesian points (workloads × budgets × grids × aspects ×
    /// dataflows).
    pub points: usize,
    /// Distinct simulation jobs after the engine's content-addressed
    /// dedup (exact, not an estimate).
    pub distinct_jobs: usize,
    /// Workloads on the workload axis.
    pub workloads: usize,
    /// Budgets on the budget axis.
    pub budgets: usize,
    /// Dataflows on the dataflow axis (after the empty-means-base
    /// default).
    pub dataflows: usize,
    /// Per-budget grid/combination counts.
    pub per_budget: Vec<BudgetBreakdown>,
}

fn parse_budget(token: &str) -> Option<u64> {
    if let Some((base, exp)) = token.split_once('^') {
        let base: u64 = base.trim().parse().ok()?;
        let exp: u32 = exp.trim().parse().ok()?;
        base.checked_pow(exp)
    } else {
        token.parse().ok()
    }
}

/// One expanded design point (before simulation).
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Position in plan order (stable across serial and parallel runs).
    pub index: usize,
    /// Workload label.
    pub workload: String,
    /// Total MAC budget across all partitions.
    pub budget: u64,
    /// Partition grid.
    pub grid: PartitionGrid,
    /// Per-partition array shape.
    pub array: ArrayShape,
    /// Dataflow at this point.
    pub dataflow: DataflowChoice,
}

impl PointSpec {
    /// Number of partitions at this point.
    pub fn partitions(&self) -> u64 {
        self.grid.count()
    }

    /// The effective hardware configuration of this point over `base`.
    /// Under [`DataflowChoice::Auto`] the base dataflow is kept as the
    /// fallback label; the simulator re-selects per layer.
    pub fn config(&self, base: &SimConfig) -> SimConfig {
        let mut config = SimConfig {
            array: self.array,
            ..*base
        };
        if let DataflowChoice::Fixed(df) = self.dataflow {
            config.dataflow = df;
        }
        config
    }
}

/// One simulated sweep result: the point and its full report.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The design point.
    pub spec: PointSpec,
    /// The simulation report (shared with the result cache).
    pub report: Arc<NetworkReport>,
}

/// The outcome of running a plan: results in plan order plus exact
/// dedup accounting for *this* run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The plan's name.
    pub plan_name: String,
    /// One result per point, in plan order.
    pub results: Vec<SweepResult>,
    /// Simulations actually executed by this run.
    pub simulations: u64,
    /// Points served without a fresh simulation (in-plan duplicates plus
    /// LRU hits from earlier plans on the same engine).
    pub cache_hits: u64,
    /// Wall latency of each freshly simulated point — first layer task
    /// start to assembly — in microseconds, in work-list order. One entry
    /// per entry of `simulations`; feeds the tail-latency bench tier.
    pub point_latencies_micros: Vec<u64>,
    /// Work-stealing scheduler counters for this run (tasks, steals,
    /// per-worker busy fractions).
    pub exec: ExecSummary,
}

/// A per-group sweep summary: the fastest point and the paper's runtime/
/// bandwidth sweet spot (Sec. IV-A) within one (workload, budget,
/// dataflow) series.
#[derive(Debug, Clone, Copy)]
pub struct GroupSummary<'a> {
    /// Workload label of the group.
    pub workload: &'a str,
    /// MAC budget of the group.
    pub budget: u64,
    /// Dataflow of the group.
    pub dataflow: DataflowChoice,
    /// The point with the lowest effective (stall-inclusive) runtime.
    pub best: &'a SweepResult,
    /// The runtime/bandwidth crossing over the group's partition series;
    /// `None` when the group holds a single partition count.
    pub sweet_spot: Option<&'a SweepResult>,
}

impl SweepOutcome {
    /// Groups results by (workload, budget, dataflow) and summarizes each:
    /// fastest point by effective cycles, plus the sweet spot across the
    /// group's partition counts (points ordered by partition count).
    pub fn summarize(&self) -> Vec<GroupSummary<'_>> {
        let mut order: Vec<(&str, u64, DataflowChoice)> = Vec::new();
        let mut groups: HashMap<(&str, u64, String), Vec<&SweepResult>> = HashMap::new();
        for result in &self.results {
            let key = (
                result.spec.workload.as_str(),
                result.spec.budget,
                result.spec.dataflow.to_string(),
            );
            let members = groups.entry(key).or_default();
            if members.is_empty() {
                order.push((
                    result.spec.workload.as_str(),
                    result.spec.budget,
                    result.spec.dataflow,
                ));
            }
            members.push(result);
        }
        order
            .into_iter()
            .map(|(workload, budget, dataflow)| {
                let mut members = groups
                    .remove(&(workload, budget, dataflow.to_string()))
                    .expect("group recorded in order");
                let best = members
                    .iter()
                    .copied()
                    .min_by_key(|r| (r.report.total_effective_cycles(), r.spec.index))
                    .expect("nonempty group");
                members.sort_by_key(|r| (r.spec.partitions(), r.spec.index));
                let distinct_counts = {
                    let mut counts: Vec<u64> =
                        members.iter().map(|r| r.spec.partitions()).collect();
                    counts.dedup();
                    counts.len()
                };
                let sweet_spot = if distinct_counts > 1 {
                    let cycles: Vec<u64> =
                        members.iter().map(|r| r.report.total_cycles()).collect();
                    let bw: Vec<f64> = members
                        .iter()
                        .map(|r| r.report.peak_required_bandwidth())
                        .collect();
                    sweet_spot_index(&cycles, &bw).map(|i| members[i])
                } else {
                    None
                };
                GroupSummary {
                    workload,
                    budget,
                    dataflow,
                    best,
                    sweet_spot,
                }
            })
            .collect()
    }
}

/// Where a sweep streams its rows. Called from the engine's emitter in
/// strict plan order — implementations never see out-of-order points.
pub trait SweepSink {
    /// Called once before any point, with the total point count.
    ///
    /// # Errors
    ///
    /// I/O errors abort the sweep.
    fn begin(&mut self, plan: &SweepPlan, points: usize) -> io::Result<()> {
        let _ = (plan, points);
        Ok(())
    }

    /// Called once per point, in plan order, as results become available.
    ///
    /// # Errors
    ///
    /// I/O errors abort the sweep.
    fn point(&mut self, spec: &PointSpec, report: &NetworkReport) -> io::Result<()>;

    /// Called once after the last point.
    ///
    /// # Errors
    ///
    /// I/O errors abort the sweep.
    fn end(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The CSV columns emitted by [`CsvSink`], terminated by a newline.
pub const SWEEP_CSV_HEADER: &str = "workload,budget,partitions,grid,array,dataflow,cycles,\
     effective_cycles,macs,overall_util,dram_bytes,peak_bw_bytes_per_cycle,energy\n";

pub(crate) fn sweep_row_fields(spec: &PointSpec, report: &NetworkReport) -> (String, String) {
    // (prefix identifying the point, suffix of measured values) — shared
    // between the CSV and JSONL sinks so the two stay in sync.
    let prefix = format!(
        "{},{},{},{},{},{}",
        spec.workload,
        spec.budget,
        spec.partitions(),
        spec.grid,
        spec.array,
        spec.dataflow,
    );
    let suffix = format!(
        "{},{},{},{:.4},{},{:.3},{:.1}",
        report.total_cycles(),
        report.total_effective_cycles(),
        report.total_macs(),
        report.overall_utilization(),
        report.total_dram_bytes(),
        report.peak_required_bandwidth(),
        report.total_energy().total(),
    );
    (prefix, suffix)
}

/// Streams sweep rows as CSV ([`SWEEP_CSV_HEADER`] + one row per point).
pub struct CsvSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> CsvSink<W> {
        CsvSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> SweepSink for CsvSink<W> {
    fn begin(&mut self, _plan: &SweepPlan, _points: usize) -> io::Result<()> {
        self.writer.write_all(SWEEP_CSV_HEADER.as_bytes())
    }

    fn point(&mut self, spec: &PointSpec, report: &NetworkReport) -> io::Result<()> {
        let (prefix, suffix) = sweep_row_fields(spec, report);
        writeln!(self.writer, "{prefix},{suffix}")
    }

    fn end(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams sweep rows as JSON Lines: one object per point, fixed key
/// order, deterministic for identical results.
pub struct JsonLinesSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: io::Write> SweepSink for JsonLinesSink<W> {
    fn point(&mut self, spec: &PointSpec, report: &NetworkReport) -> io::Result<()> {
        writeln!(
            self.writer,
            "{{\"workload\":\"{}\",\"budget\":{},\"partitions\":{},\"grid\":\"{}\",\
             \"array\":\"{}\",\"dataflow\":\"{}\",\"cycles\":{},\"effective_cycles\":{},\
             \"macs\":{},\"overall_util\":{:.4},\"dram_bytes\":{},\
             \"peak_bw_bytes_per_cycle\":{:.3},\"energy\":{:.1}}}",
            escape_json(&spec.workload),
            spec.budget,
            spec.partitions(),
            spec.grid,
            spec.array,
            spec.dataflow,
            report.total_cycles(),
            report.total_effective_cycles(),
            report.total_macs(),
            report.overall_utilization(),
            report.total_dram_bytes(),
            report.peak_required_bandwidth(),
            report.total_energy().total(),
        )
    }

    fn end(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A sink that discards rows (for callers that only want the outcome).
pub(crate) struct NullSink;

impl SweepSink for NullSink {
    fn point(&mut self, _spec: &PointSpec, _report: &NetworkReport) -> io::Result<()> {
        Ok(())
    }
}

/// Why a sweep failed.
#[derive(Debug)]
pub enum SweepError {
    /// The plan itself is invalid.
    Plan(String),
    /// The sink raised an I/O error.
    Io(io::Error),
    /// A simulation panicked; the panic was caught at the task boundary
    /// and the sweep aborted cleanly instead of hanging.
    Sim(SimError),
}

impl SweepError {
    fn plan(msg: impl Into<String>) -> SweepError {
        SweepError::Plan(msg.into())
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Plan(msg) => write!(f, "{msg}"),
            SweepError::Io(e) => write!(f, "sweep output failed: {e}"),
            SweepError::Sim(e) => write!(f, "sweep aborted: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> SweepError {
        SweepError::Io(e)
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> SweepError {
        SweepError::Sim(e)
    }
}

/// A prepared point: its spec plus everything a worker needs.
struct PreparedPoint {
    spec: PointSpec,
    distinct: usize,
}

/// One distinct simulation job (several points may share it).
struct DistinctJob {
    key: u128,
    config: SimConfig,
    grid: PartitionGrid,
    auto: bool,
    workload: usize,
}

/// Mutable per-pending-job state shared by that job's layer tasks: the
/// filled layer reports, the count of tasks still owed, the first-task
/// start instant (point latency runs from the first layer start to
/// assembly) and the finished latency.
struct JobState {
    layers: Mutex<Vec<Option<LayerReport>>>,
    remaining: AtomicUsize,
    started: Mutex<Option<Instant>>,
    latency_micros: AtomicU64,
}

/// Completion slots shared between workers and the in-order emitter.
///
/// A slot may complete with a report or — when a simulation panics — be
/// *poisoned* with the [`SimError`]. Poisoning fills every still-empty
/// slot, so an emitter blocked in [`Slots::wait`] always wakes up with a
/// definite answer: before it existed, a panicking worker left its slot
/// empty forever and the sweep hung instead of failing.
struct Slots {
    filled: Mutex<Vec<Option<SlotState>>>,
    ready: Condvar,
}

/// A completed slot: the simulated report, or the error that poisoned it.
type SlotState = Result<Arc<NetworkReport>, SimError>;

impl Slots {
    fn new(n: usize) -> Slots {
        Slots {
            filled: Mutex::new(vec![None; n]),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, i: usize, report: Arc<NetworkReport>) {
        *self
            .filled
            .lock()
            .unwrap()
            .get_mut(i)
            .expect("slot index in range") = Some(Ok(report));
        self.ready.notify_all();
    }

    /// Fills every still-empty slot with `err`, waking all waiters.
    fn poison(&self, err: &SimError) {
        let mut filled = self.filled.lock().unwrap();
        for slot in filled.iter_mut() {
            if slot.is_none() {
                *slot = Some(Err(err.clone()));
            }
        }
        self.ready.notify_all();
    }

    fn wait(&self, i: usize) -> Result<Arc<NetworkReport>, SimError> {
        let mut filled = self.filled.lock().unwrap();
        loop {
            if let Some(result) = &filled[i] {
                return result.clone();
            }
            filled = self.ready.wait(filled).unwrap();
        }
    }

    /// Like [`Slots::wait`], but gives up after `timeout` so the caller
    /// can do periodic work (the progress ticker's heartbeat) while a
    /// slow head-of-line point is still simulating.
    fn wait_for(
        &self,
        i: usize,
        timeout: Duration,
    ) -> Option<Result<Arc<NetworkReport>, SimError>> {
        let deadline = Instant::now() + timeout;
        let mut filled = self.filled.lock().unwrap();
        loop {
            if let Some(result) = &filled[i] {
                return Some(result.clone());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            filled = self.ready.wait_timeout(filled, left).unwrap().0;
        }
    }
}

/// The parallel, memoizing sweep executor: a content-addressed result
/// cache (shared across every plan run on the same engine) plus a scoped
/// worker pool per run.
///
/// Determinism: duplicate points are simulated once and results are
/// emitted in plan order, so the output stream is byte-identical to a
/// `jobs = 1` run — and each point's report is byte-identical to a fresh
/// single-shot [`Simulator`] run of the same configuration.
pub struct SweepEngine {
    cache: ShardedLru<Arc<NetworkReport>>,
    points_total: Arc<Counter>,
    cache_hits: Arc<Counter>,
    simulations: Arc<Counter>,
    point_seconds: Arc<Histogram>,
    exec_tasks: Arc<Counter>,
    exec_steals: Arc<Counter>,
    progress: bool,
    faults: Mutex<FaultPlan>,
}

/// The `--progress` stderr ticker, driven by the in-order emitter. One
/// line roughly every [`ProgressTicker::INTERVAL`] plus a final summary
/// line; progress never touches stdout, so piped sweep output is
/// unaffected. When progress is off the per-point cost is a single
/// `Option` branch — no allocation, no clock read.
struct ProgressTicker {
    label: String,
    total: usize,
    /// Fresh simulations this run must execute; rate and ETA are based on
    /// how many of these have completed, *not* on emitted points —
    /// instantly-emitted cache hits used to make warm sweeps report
    /// absurdly optimistic ETAs.
    sims_total: usize,
    cache_hits: u64,
    done: usize,
    started: Instant,
    last_tick: Instant,
}

impl ProgressTicker {
    const INTERVAL: Duration = Duration::from_millis(500);

    fn new(label: &str, total: usize, sims_total: usize, cache_hits: u64) -> ProgressTicker {
        let now = Instant::now();
        ProgressTicker {
            label: label.to_owned(),
            total,
            sims_total,
            cache_hits,
            done: 0,
            started: now,
            last_tick: now,
        }
    }

    /// Counts one emitted point and prints a line when the interval is up
    /// (and always for the final point). `sims_done` is the workers'
    /// completed-simulation count (the shared atomic), which drives rate
    /// and ETA.
    fn tick(&mut self, sims_done: usize) {
        self.done += 1;
        let finished = self.done >= self.total;
        if !finished && self.last_tick.elapsed() < ProgressTicker::INTERVAL {
            return;
        }
        self.print(sims_done);
    }

    /// Prints a line without counting a point: the emitter calls this
    /// while blocked on a slow head-of-line point, so the rate keeps
    /// moving with the workers instead of freezing at the emitted count.
    fn heartbeat(&mut self, sims_done: usize) {
        if self.last_tick.elapsed() < ProgressTicker::INTERVAL {
            return;
        }
        self.print(sims_done);
    }

    fn print(&mut self, sims_done: usize) {
        self.last_tick = Instant::now();
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = sims_done as f64 / elapsed;
        let remaining = self.sims_total.saturating_sub(sims_done);
        let eta = if remaining == 0 {
            "0s".to_owned()
        } else if rate <= 0.0 {
            "?".to_owned()
        } else {
            format!("{:.0}s", remaining as f64 / rate)
        };
        let pct = 100.0 * self.done as f64 / self.total.max(1) as f64;
        let hit_pct = 100.0 * self.cache_hits as f64 / self.total.max(1) as f64;
        eprintln!(
            "{}: {}/{} points ({pct:.1}%), {rate:.1} sims/s, {hit_pct:.0}% cache hits, ETA {eta}",
            self.label, self.done, self.total,
        );
    }
}

impl SweepEngine {
    /// An engine caching up to `cache_capacity` distinct results, with
    /// telemetry in the process-global registry.
    ///
    /// The capacity is approximate: it is spread over the [`ShardedLru`]'s
    /// 16 shards (per-shard LRU eviction), so an unlucky key distribution
    /// can evict before `cache_capacity` distinct results are resident.
    /// Size generously — at least 16x the working set — when exact
    /// retention matters.
    pub fn new(cache_capacity: usize) -> SweepEngine {
        SweepEngine::with_registry(cache_capacity, scalesim_telemetry::global())
    }

    /// An engine recording its metrics into `registry` (e.g. a server
    /// engine's scoped registry).
    pub fn with_registry(cache_capacity: usize, registry: &Registry) -> SweepEngine {
        let evictions = registry.counter(
            telemetry_names::CACHE_EVICTIONS,
            "Results evicted from the sweep result cache.",
        );
        let resident = registry.gauge(
            telemetry_names::CACHE_RESIDENT,
            "Results currently held by the sweep result cache.",
        );
        SweepEngine {
            cache: ShardedLru::new(cache_capacity, 16).with_metrics(evictions, resident),
            points_total: registry.counter(
                telemetry_names::POINTS,
                "Sweep points completed (any path).",
            ),
            cache_hits: registry.counter(
                telemetry_names::CACHE_HITS,
                "Sweep points served without a fresh simulation.",
            ),
            simulations: registry.counter(
                telemetry_names::SIMULATIONS,
                "Simulations executed by the sweep pool.",
            ),
            point_seconds: registry.histogram(
                telemetry_names::POINT_SECONDS,
                "Wall time per freshly simulated sweep point.",
                &Histogram::duration_buckets(),
            ),
            exec_tasks: registry.counter(
                telemetry_names::EXEC_TASKS,
                "Layer-granularity tasks executed by the work-stealing pool.",
            ),
            exec_steals: registry.counter(
                telemetry_names::EXEC_STEALS,
                "Tasks obtained by stealing from another worker's deque.",
            ),
            progress: false,
            faults: Mutex::new(FaultPlan::default()),
        }
    }

    /// Installs a [`FaultPlan`] (test hook): matching workloads are
    /// delayed or panicked inside the worker that simulates them, which
    /// is how the panic-abort path is exercised deterministically.
    /// Replaces any previous plan; pass `FaultPlan::new()` to clear.
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.faults.lock().unwrap() = plan;
    }

    /// Enables (or disables) the stderr progress ticker for subsequent
    /// runs: one line per ~500 ms from the in-order emitter (points
    /// done/total, rows/s, cache-hit share, ETA), never touching stdout.
    /// Off by default; when off the per-point cost is one branch.
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> SweepEngine {
        self.progress = on;
        self
    }

    /// Number of distinct results currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Runs `plan` on `jobs` parallel workers, collecting results only.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] for invalid plans.
    pub fn run(&self, plan: &SweepPlan, jobs: usize) -> Result<SweepOutcome, SweepError> {
        self.run_streaming(plan, jobs, &mut NullSink)
    }

    /// Runs `plan` on `jobs` parallel workers, streaming every point to
    /// `sink` in plan order as results complete.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] for invalid plans and
    /// [`SweepError::Io`] when the sink fails (the run aborts early).
    pub fn run_streaming(
        &self,
        plan: &SweepPlan,
        jobs: usize,
        sink: &mut dyn SweepSink,
    ) -> Result<SweepOutcome, SweepError> {
        let points = plan.expand()?;
        self.run_points(plan, points, jobs, sink)
    }

    /// Runs an explicit list of points against `plan`'s base configuration
    /// and workloads, streaming each to `sink` in the order given.
    ///
    /// This is the entry the explore pipeline uses to simulate the
    /// survivors of analytical pruning: the points need not be the plan's
    /// full expansion, but every spec's workload label must name one of
    /// the plan's workloads. Dedup, caching and the determinism contract
    /// are identical to [`SweepEngine::run_streaming`].
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Plan`] when a point references a workload the
    /// plan does not define, and [`SweepError::Io`] when the sink fails.
    pub fn run_points(
        &self,
        plan: &SweepPlan,
        points: Vec<PointSpec>,
        jobs: usize,
        sink: &mut dyn SweepSink,
    ) -> Result<SweepOutcome, SweepError> {
        // Canonical topology text per workload, for content keys.
        let csvs: Vec<String> = plan
            .workloads
            .iter()
            .map(|w| topology_to_csv(&w.topology))
            .collect();
        let workload_index: HashMap<&str, usize> = plan
            .workloads
            .iter()
            .enumerate()
            .map(|(i, w)| (w.label.as_str(), i))
            .collect();

        // Deduplicate points into distinct jobs by content key.
        let mut distinct_of_key: HashMap<u128, usize> = HashMap::new();
        let mut distinct: Vec<DistinctJob> = Vec::new();
        let mut prepared: Vec<PreparedPoint> = Vec::with_capacity(points.len());
        for spec in points {
            let workload = *workload_index.get(spec.workload.as_str()).ok_or_else(|| {
                SweepError::plan(format!(
                    "point references unknown workload `{}`",
                    spec.workload
                ))
            })?;
            let config = spec.config(&plan.base);
            let auto = spec.dataflow == DataflowChoice::Auto;
            let key = ContentKey::from_content(
                canonical_job_text(&config, &spec.workload, spec.grid, &csvs[workload], auto)
                    .as_bytes(),
            )
            .0;
            let slot = *distinct_of_key.entry(key).or_insert_with(|| {
                distinct.push(DistinctJob {
                    key,
                    config,
                    grid: spec.grid,
                    auto,
                    workload,
                });
                distinct.len() - 1
            });
            prepared.push(PreparedPoint {
                spec,
                distinct: slot,
            });
        }

        // Probe the cross-plan cache; whatever is left needs simulating.
        let slots = Slots::new(distinct.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, job) in distinct.iter().enumerate() {
            match self.cache.get(job.key) {
                Some(report) => slots.fill(i, report),
                None => pending.push(i),
            }
        }
        let simulations = pending.len() as u64;
        let cache_hits = prepared.len() as u64 - simulations;
        self.cache_hits.add(cache_hits);

        sink.begin(plan, prepared.len())?;
        let faults = self.faults.lock().unwrap().clone();

        // One task per (pending job, layer): layer costs vary by orders
        // of magnitude with fold count, so layer-granularity tasks plus
        // work stealing keep the pool balanced where whole-point
        // scheduling lets one unlucky worker set the tail latency.
        let layer_lists: Vec<Vec<&Layer>> = plan
            .workloads
            .iter()
            .map(|w| w.topology.iter().collect())
            .collect();
        let mut tasks: Vec<(usize, usize)> = Vec::new(); // (pending index, layer)
        let mut states: Vec<JobState> = Vec::with_capacity(pending.len());
        for (p, &job_index) in pending.iter().enumerate() {
            let layers = layer_lists[distinct[job_index].workload].len();
            // An empty topology still gets one task, so its slot is
            // filled by the same assembly path as everything else.
            let job_tasks = layers.max(1);
            for layer in 0..job_tasks {
                tasks.push((p, layer));
            }
            states.push(JobState {
                layers: Mutex::new(vec![None; layers]),
                remaining: AtomicUsize::new(job_tasks),
                started: Mutex::new(None),
                latency_micros: AtomicU64::new(0),
            });
        }
        let sims_done = AtomicUsize::new(0);
        let exec = Executor::new(tasks.len(), jobs.max(1));

        let mut results: Vec<SweepResult> = Vec::with_capacity(prepared.len());
        let mut ticker = self.progress.then(|| {
            ProgressTicker::new(
                &format!("sweep {}", plan.name),
                prepared.len(),
                pending.len(),
                cache_hits,
            )
        });

        let run_task = |t: usize| {
            let (p, layer_index) = tasks[t];
            let job_index = pending[p];
            let job = &distinct[job_index];
            let workload = &plan.workloads[job.workload];
            let state = &states[p];
            {
                let mut started = state.started.lock().unwrap();
                if started.is_none() {
                    *started = Some(Instant::now());
                }
            }
            faults.apply(workload.topology.name());
            if let Some(layer) = layer_lists[job.workload].get(layer_index) {
                let mut sim = Simulator::new(job.config).with_grid(job.grid);
                if job.auto {
                    sim = sim.with_auto_dataflow();
                }
                let report = sim.run_layer(layer);
                state.layers.lock().unwrap()[layer_index] = Some(report);
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task of the job: assemble the layer reports in
                // layer order — exactly what `run_topology` produces, so
                // the result is byte-identical to a serial run no matter
                // which workers simulated which layers.
                let layers = std::mem::take(&mut *state.layers.lock().unwrap())
                    .into_iter()
                    .map(|r| r.expect("every layer task stored its report"))
                    .collect();
                scalesim_telemetry::global()
                    .counter(
                        crate::simulator::telemetry_names::NETWORK_RUNS,
                        "Topologies simulated end to end.",
                    )
                    .inc();
                let report = Arc::new(NetworkReport::new(workload.topology.name(), layers));
                let elapsed = state
                    .started
                    .lock()
                    .unwrap()
                    .expect("assembly follows the first task")
                    .elapsed();
                state
                    .latency_micros
                    .store(elapsed.as_micros() as u64, Ordering::Relaxed);
                self.point_seconds.observe_duration(elapsed);
                self.simulations.inc();
                sims_done.fetch_add(1, Ordering::Relaxed);
                self.cache.insert(job.key, Arc::clone(&report));
                slots.fill(job_index, report);
            }
        };
        let task_label = |t: usize| {
            let (p, _) = tasks[t];
            plan.workloads[distinct[pending[p]].workload]
                .topology
                .name()
                .to_owned()
        };

        let emit = crossbeam::thread::scope(|scope| -> Result<(), SweepError> {
            if !tasks.is_empty() {
                for worker in 0..exec.workers() {
                    let exec = &exec;
                    let run_task = &run_task;
                    let task_label = &task_label;
                    let slots = &slots;
                    scope.spawn(move |_| {
                        let _worker_span =
                            scalesim_telemetry::trace::span_with("sweep.worker", || {
                                vec![("worker", worker.to_string())]
                            });
                        if let Some(err) = exec.run_worker(worker, run_task, task_label) {
                            // A panic must fail the sweep, not hang it:
                            // poison every unfilled slot so the emitter
                            // wakes with the typed error.
                            slots.poison(&err);
                        }
                    });
                }
            }
            // The calling thread is the emitter: strict plan order.
            for point in &prepared {
                let state = if ticker.is_some() {
                    // Bounded waits so the ticker keeps printing worker
                    // progress while a slow head-of-line point runs.
                    loop {
                        match slots.wait_for(point.distinct, ProgressTicker::INTERVAL) {
                            Some(state) => break state,
                            None => {
                                if let Some(ticker) = ticker.as_mut() {
                                    ticker.heartbeat(sims_done.load(Ordering::Relaxed));
                                }
                            }
                        }
                    }
                } else {
                    slots.wait(point.distinct)
                };
                let report = match state {
                    Ok(report) => report,
                    Err(err) => {
                        exec.abort();
                        return Err(SweepError::Sim(err));
                    }
                };
                if let Err(e) = sink.point(&point.spec, &report) {
                    exec.abort();
                    return Err(SweepError::Io(e));
                }
                self.points_total.inc();
                if let Some(ticker) = ticker.as_mut() {
                    ticker.tick(sims_done.load(Ordering::Relaxed));
                }
                results.push(SweepResult {
                    spec: point.spec.clone(),
                    report,
                });
            }
            Ok(())
        })
        .expect("sweep workers never unwind");
        emit?;
        sink.end()?;

        let exec_summary = if tasks.is_empty() {
            ExecSummary::default()
        } else {
            exec.summary()
        };
        self.exec_tasks.add(exec_summary.tasks);
        self.exec_steals.add(exec_summary.steals);

        Ok(SweepOutcome {
            plan_name: plan.name.clone(),
            results,
            simulations,
            cache_hits,
            point_latencies_micros: states
                .iter()
                .map(|s| s.latency_micros.load(Ordering::Relaxed))
                .collect(),
            exec: exec_summary,
        })
    }
}

/// One point of a partition sweep: the configuration and its full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The partition grid.
    pub grid: PartitionGrid,
    /// The per-partition array.
    pub array: ArrayShape,
    /// The simulated layer report.
    pub report: LayerReport,
}

impl SweepPoint {
    /// Number of partitions at this point.
    pub fn partitions(&self) -> u64 {
        self.grid.count()
    }
}

/// Simulates `layer` at every power-of-two partition count of `mac_budget`
/// (down to `min_dim × min_dim` arrays), inheriting SRAM sizes, dataflow
/// and bandwidth settings from `base` (the array field is replaced per
/// point; the SRAM budget divides across partitions as usual).
///
/// Points are returned in ascending partition count, starting monolithic.
/// Evaluation runs through the parallel [`SweepEngine`]; each report is
/// byte-identical to a direct [`Simulator::run_layer`] of the same point.
///
/// # Panics
///
/// Panics if `mac_budget`/`min_dim` are not powers of two or the budget
/// cannot fit one `min_dim × min_dim` array.
pub fn run_partition_sweep(
    layer: &Layer,
    base: &SimConfig,
    mac_budget: u64,
    min_dim: u64,
) -> Vec<SweepPoint> {
    assert!(
        mac_budget.is_power_of_two() && min_dim.is_power_of_two(),
        "budget and min_dim must be powers of two"
    );
    assert!(
        mac_budget >= min_dim * min_dim,
        "budget {mac_budget} cannot fit a {min_dim}x{min_dim} array"
    );
    let plan = SweepPlan {
        name: format!("partition_sweep:{}", layer.name()),
        base: *base,
        workloads: vec![SweepWorkload {
            label: layer.name().to_owned(),
            topology: Topology::from_layers(layer.name(), vec![layer.clone()]),
        }],
        budgets: vec![mac_budget],
        min_dim,
        grids: GridAxis::PowersOfTwo,
        aspects: AspectAxis::Squareish,
        dataflows: vec![DataflowChoice::Fixed(base.dataflow)],
    };
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let outcome = SweepEngine::new(64)
        .run(&plan, jobs)
        .expect("partition sweep plan is valid by construction");
    outcome
        .results
        .into_iter()
        .map(|r| SweepPoint {
            grid: r.spec.grid,
            array: r.spec.array,
            report: r.report.layers()[0].clone(),
        })
        .collect()
}

/// The paper's sweet spot over raw series: both curves are normalized to
/// their maxima; returns the first index where the rising bandwidth curve
/// meets or crosses the falling runtime curve. `None` only for empty
/// input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sweet_spot_index(cycles: &[u64], bandwidth: &[f64]) -> Option<usize> {
    assert_eq!(cycles.len(), bandwidth.len(), "series must align");
    if cycles.is_empty() {
        return None;
    }
    let max_cycles = *cycles.iter().max().expect("nonempty") as f64;
    let max_bw = bandwidth.iter().fold(0.0, |a: f64, &b| a.max(b));
    if max_bw == 0.0 || max_cycles == 0.0 {
        return Some(0);
    }
    (0..cycles.len())
        .find(|&i| bandwidth[i] / max_bw >= cycles[i] as f64 / max_cycles)
        .or(Some(cycles.len() - 1))
}

/// The paper's sweet spot: "the intersection of runtime and bandwidth
/// curves" (Sec. IV-A). Both series are normalized to their sweep maxima;
/// the sweet spot is the first point where the rising bandwidth curve
/// meets or crosses the falling runtime curve. Returns `None` only for an
/// empty sweep.
pub fn sweet_spot(points: &[SweepPoint]) -> Option<&SweepPoint> {
    let cycles: Vec<u64> = points.iter().map(|p| p.report.total_cycles).collect();
    let bw: Vec<f64> = points
        .iter()
        .map(|p| p.report.required_bandwidth())
        .collect();
    sweet_spot_index(&cycles, &bw).map(|i| &points[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::networks;

    #[test]
    fn squareish_splits() {
        assert_eq!(squareish(1), (1, 1));
        assert_eq!(squareish(8), (4, 2));
        assert_eq!(squareish(1 << 14), (128, 128));
    }

    #[test]
    fn sweep_covers_all_partition_counts() {
        let layer = networks::language_model("TF1").unwrap();
        let base = SimConfig::builder().sram_kb(64, 64, 32).build();
        let points = run_partition_sweep(&layer, &base, 1 << 10, 8);
        // 2^10 budget, 8x8 floor: P = 1..16 -> 5 points.
        assert_eq!(points.len(), 5);
        assert!(points
            .iter()
            .all(|p| p.grid.count() * p.array.macs() == 1 << 10));
        // The Fig. 11 shape: end-to-end, runtime falls and bandwidth rises.
        // (The paper calls the runtime trend "almost monotonic" — fixed
        // square-ish grids can mis-split a skewed layer at one point, so
        // only the endpoints are asserted strictly.)
        assert!(points.last().unwrap().report.total_cycles < points[0].report.total_cycles);
        assert!(
            points.last().unwrap().report.required_bandwidth()
                > points[0].report.required_bandwidth()
        );
    }

    #[test]
    fn partition_sweep_matches_single_shot_runs() {
        // The parallel engine path must be indistinguishable from a direct
        // serial Simulator loop — same reports, byte for byte.
        let layer = networks::language_model("TF1").unwrap();
        let base = SimConfig::builder().sram_kb(64, 64, 32).build();
        let points = run_partition_sweep(&layer, &base, 1 << 10, 8);
        for p in &points {
            let config = SimConfig {
                array: p.array,
                ..base
            };
            let fresh = Simulator::new(config).with_grid(p.grid).run_layer(&layer);
            assert_eq!(p.report, fresh);
            let via_network = NetworkReport::new(layer.name(), vec![p.report.clone()]);
            let fresh_network = NetworkReport::new(layer.name(), vec![fresh]);
            assert_eq!(via_network.to_csv(), fresh_network.to_csv());
        }
    }

    #[test]
    fn sweet_spot_is_an_interior_crossing() {
        let layer = networks::language_model("TF1").unwrap();
        let base = SimConfig::builder().sram_kb(64, 64, 32).build();
        let points = run_partition_sweep(&layer, &base, 1 << 12, 8);
        let spot = sweet_spot(&points).expect("nonempty sweep");
        // The crossing cannot be the monolithic point (bandwidth starts
        // below runtime on this workload) and must exist.
        assert!(spot.partitions() >= 1);
        assert!(points.iter().any(|p| p.grid == spot.grid));
    }

    #[test]
    fn sweet_spot_of_empty_sweep_is_none() {
        assert!(sweet_spot(&[]).is_none());
        assert!(sweet_spot_index(&[], &[]).is_none());
    }

    fn small_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("test").workload("TF1").unwrap();
        plan.base = SimConfig::builder().sram_kb(64, 64, 32).build();
        plan.budgets = vec![1 << 10];
        plan
    }

    #[test]
    fn expansion_orders_the_cartesian_product() {
        let mut plan = small_plan();
        plan.dataflows = vec![
            DataflowChoice::Fixed(Dataflow::OutputStationary),
            DataflowChoice::Auto,
        ];
        let points = plan.expand().unwrap();
        // 5 partition counts x 1 aspect x 2 dataflows.
        assert_eq!(points.len(), 10);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Dataflow is the innermost axis.
        assert_eq!(points[0].dataflow.to_string(), "os");
        assert_eq!(points[1].dataflow.to_string(), "auto");
        assert_eq!(points[0].grid, points[1].grid);
    }

    #[test]
    fn expansion_rejects_bad_plans() {
        assert!(SweepPlan::new("empty").expand().is_err());
        let mut plan = small_plan();
        plan.budgets = vec![1000]; // not a power of two
        assert!(plan.expand().is_err());
        let mut plan = small_plan();
        plan.grids = GridAxis::Explicit(vec![PartitionGrid::new(3, 1)]);
        assert!(plan.expand().is_err()); // 1024 / 3 is not integral
        let mut plan = small_plan();
        plan.grids = GridAxis::Explicit(vec![PartitionGrid::new(32, 1)]);
        assert!(plan.expand().is_err()); // 32 MACs per array < 8x8 floor
    }

    #[test]
    fn engine_deduplicates_and_counts_hits_exactly() {
        let plan = small_plan();
        let engine = SweepEngine::with_registry(64, &Registry::new());
        let first = engine.run(&plan, 4).unwrap();
        assert_eq!(first.results.len(), 5);
        assert_eq!(first.simulations, 5);
        assert_eq!(first.cache_hits, 0);

        // The same plan again: every point is an LRU hit.
        let second = engine.run(&plan, 4).unwrap();
        assert_eq!(second.simulations, 0);
        assert_eq!(second.cache_hits, 5);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.report, b.report);
        }

        // A plan with in-plan duplicates: one budget listed twice.
        let mut doubled = small_plan();
        doubled.budgets = vec![1 << 10, 1 << 10];
        let fresh_engine = SweepEngine::with_registry(64, &Registry::new());
        let outcome = fresh_engine.run(&doubled, 4).unwrap();
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(outcome.simulations, 5);
        assert_eq!(outcome.cache_hits, 5);
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let mut plan = small_plan();
        plan.budgets = vec![1 << 10, 1 << 12];
        let serial_engine = SweepEngine::with_registry(64, &Registry::new());
        let mut serial = CsvSink::new(Vec::new());
        serial_engine.run_streaming(&plan, 1, &mut serial).unwrap();
        let parallel_engine = SweepEngine::with_registry(64, &Registry::new());
        let mut parallel = CsvSink::new(Vec::new());
        parallel_engine
            .run_streaming(&plan, 8, &mut parallel)
            .unwrap();
        let serial = String::from_utf8(serial.into_inner()).unwrap();
        let parallel = String::from_utf8(parallel.into_inner()).unwrap();
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel);
        assert!(serial.starts_with(SWEEP_CSV_HEADER));
    }

    #[test]
    fn engine_records_sweep_telemetry() {
        let registry = Registry::new();
        let engine = SweepEngine::with_registry(64, &registry);
        let plan = small_plan();
        engine.run(&plan, 2).unwrap();
        engine.run(&plan, 2).unwrap();
        assert_eq!(
            registry.counter_value(telemetry_names::POINTS, &[]),
            Some(10)
        );
        assert_eq!(
            registry.counter_value(telemetry_names::SIMULATIONS, &[]),
            Some(5)
        );
        assert_eq!(
            registry.counter_value(telemetry_names::CACHE_HITS, &[]),
            Some(5)
        );
        let text = registry.render();
        assert!(text.contains("scalesim_sweep_point_seconds_count 5"));
        assert!(text.contains("scalesim_sweep_cache_resident_entries 5"));
    }

    #[test]
    fn plan_file_round_trips_the_fig9_study() {
        let text = "\
            # Fig. 9 search space, TF0\n\
            name = fig9_tf0\n\
            workload = TF0\n\
            budget = 2^10, 2^12\n\
            min_dim = 8\n\
            grid = all\n\
            aspect = all\n\
            dataflow = os\n\
            config.IfmapSramSz = 64\n\
            config.FilterSramSz = 64\n\
            config.OfmapSramSz = 32\n";
        let plan = SweepPlan::parse(text).unwrap();
        assert_eq!(plan.name, "fig9_tf0");
        assert_eq!(plan.workloads.len(), 1);
        assert_eq!(plan.workloads[0].label, "TF0");
        assert_eq!(plan.budgets, vec![1 << 10, 1 << 12]);
        assert_eq!(plan.aspects, AspectAxis::All);
        assert_eq!(
            plan.dataflows,
            vec![DataflowChoice::Fixed(Dataflow::OutputStationary)]
        );
        let points = plan.expand().unwrap();
        // Budget 2^b with an 8x8 floor has P = 1..2^(b-6) partition counts,
        // and a per-partition budget of 2^k admits k-5 aspect ratios:
        // 2^10 -> 5+4+3+2+1 = 15 points, 2^12 -> 7+..+1 = 28 points.
        assert_eq!(points.len(), 43);
    }

    #[test]
    fn plan_file_rejects_unknown_keys_and_workloads() {
        assert!(SweepPlan::parse("frobnicate = 1").is_err());
        assert!(SweepPlan::parse("workload = not_a_network").is_err());
        assert!(SweepPlan::parse("budget = banana").is_err());
        assert!(SweepPlan::parse("dataflow = rs").is_err());
        assert!(SweepPlan::parse("grid = 0x2").is_err());
        assert!(SweepPlan::parse("no_equals_sign").is_err());
    }

    #[test]
    fn explicit_grids_and_bandwidth_parse() {
        let text = "workload = TF1\nbudget = 2^10\ngrid = 1x1, 2x2\nbandwidth = 32\n";
        let plan = SweepPlan::parse(text).unwrap();
        assert_eq!(plan.base.dram_bandwidth, Some(32.0));
        let points = plan.expand().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].partitions(), 1);
        assert_eq!(points[1].partitions(), 4);
        // Stall analysis runs at every point.
        let outcome = SweepEngine::with_registry(8, &Registry::new())
            .run(&plan, 2)
            .unwrap();
        assert!(outcome.results[0].report.layers()[0].stall.is_some());
    }

    #[test]
    fn summarize_finds_best_and_sweet_spot_per_group() {
        let mut plan = small_plan();
        plan.budgets = vec![1 << 10, 1 << 12];
        let outcome = SweepEngine::with_registry(64, &Registry::new())
            .run(&plan, 4)
            .unwrap();
        let summary = outcome.summarize();
        assert_eq!(summary.len(), 2);
        for group in &summary {
            assert_eq!(group.workload, "TF1");
            let spot = group.sweet_spot.expect("multi-point group");
            assert!(plan.budgets.contains(&group.budget));
            // The best point has the minimum effective cycles of its group.
            let min = outcome
                .results
                .iter()
                .filter(|r| r.spec.budget == group.budget)
                .map(|r| r.report.total_effective_cycles())
                .min()
                .unwrap();
            assert_eq!(group.best.report.total_effective_cycles(), min);
            assert_eq!(spot.spec.budget, group.budget);
        }
    }

    #[test]
    fn auto_dataflow_points_key_separately_from_fixed() {
        // `auto` and the dataflow it happens to select must not collide in
        // the cache: the canonical text carries an auto marker.
        let config = SimConfig::default();
        let fixed = canonical_job_text(&config, "w", PartitionGrid::new(1, 1), "csv", false);
        let auto = canonical_job_text(&config, "w", PartitionGrid::new(1, 1), "csv", true);
        assert_ne!(fixed, auto);
        assert!(auto.ends_with("auto_dataflow: true\n"));
        assert!(fixed.starts_with("config:\n"));
    }

    #[test]
    fn jsonl_sink_emits_one_valid_object_per_point() {
        let plan = small_plan();
        let mut sink = JsonLinesSink::new(Vec::new());
        SweepEngine::with_registry(8, &Registry::new())
            .run_streaming(&plan, 2, &mut sink)
            .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 5);
        for line in text.lines() {
            assert!(line.starts_with("{\"workload\":\"TF1\""));
            assert!(line.ends_with('}'));
        }
    }
}
