//! Panic-safe execution primitives shared by the sweep engine, the
//! explore pipeline and the server worker pool.
//!
//! A simulator bug that panics must never take the host down with it —
//! and, worse, must never *hang* it: before this module existed, a
//! panicking sweep worker simply never filled its completion slot and the
//! in-order emitter waited forever. Every simulation task now runs inside
//! [`run_caught`], which converts a panic into a typed [`SimError`] that
//! the caller can poison completion slots with, surface over HTTP, or
//! print — while every other worker keeps running or exits cleanly.
//!
//! [`FaultPlan`] is the deterministic fault-injection hook used by tests
//! at every level (core sweep, explore, server engine): it matches jobs
//! by workload name and delays or panics their simulation, exercising the
//! recovery paths without real overload or real bugs.

use std::fmt;
use std::time::Duration;

/// A simulation task that panicked, caught at the execution boundary and
/// converted into a value. `task` names what was being simulated (the
/// workload label); `message` carries the panic payload when it was a
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// What was being simulated (workload or layer label).
    pub task: String,
    /// The panic payload, when it was a string (a fixed fallback text
    /// otherwise).
    pub message: String,
}

impl SimError {
    /// An error for task `task` with panic payload `message`.
    pub fn new(task: impl Into<String>, message: impl Into<String>) -> SimError {
        SimError {
            task: task.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation of `{}` panicked: {}",
            self.task, self.message
        )
    }
}

impl std::error::Error for SimError {}

/// Runs `f` with panics caught at the boundary: a panic becomes
/// `Err(`[`SimError`]`)` tagged with `task`, instead of unwinding into
/// scope joins or thread pools. The default panic hook still prints the
/// panic to stderr first, so post-mortems keep their backtrace.
///
/// # Errors
///
/// Returns [`SimError`] if and only if `f` panicked.
pub fn run_caught<T>(task: &str, f: impl FnOnce() -> T) -> Result<T, SimError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|panic| SimError::new(task, panic_message(panic.as_ref())))
}

/// Extracts a human-readable message from a panic payload (`&str` and
/// `String` payloads; a fixed fallback otherwise).
pub fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_owned()
    }
}

/// Deterministic fault injection for tests: match jobs by workload name
/// and delay or panic their simulation inside the worker that runs it.
/// This is how the panic-recovery, shedding, deadline and drain paths are
/// exercised without real overload; it is a test hook, not a production
/// feature (an empty plan — the default — injects nothing).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<(String, FaultAction)>,
}

#[derive(Debug, Clone)]
enum FaultAction {
    Delay(Duration),
    Panic(String),
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sleep `delay` inside the worker before simulating any job whose
    /// workload name is `workload` — a deterministic stand-in for a slow
    /// simulation. The delay applies at every task boundary the job
    /// crosses, so a job split into several tasks sleeps once per task.
    pub fn delay(mut self, workload: &str, delay: Duration) -> FaultPlan {
        self.rules
            .push((workload.into(), FaultAction::Delay(delay)));
        self
    }

    /// Panic with `message` instead of simulating any job whose workload
    /// name is `workload` — exercises the executor's panic recovery.
    pub fn panic(mut self, workload: &str, message: &str) -> FaultPlan {
        self.rules
            .push((workload.into(), FaultAction::Panic(message.into())));
        self
    }

    /// True when the plan has no rules (the common production case, kept
    /// cheap to test on hot paths).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies every matching rule for `workload`: sleeps on delay rules,
    /// panics on panic rules. Executors call this at each task boundary,
    /// inside their `catch_unwind`.
    pub fn apply(&self, workload: &str) {
        for (name, action) in &self.rules {
            if name == workload {
                match action {
                    FaultAction::Delay(d) => std::thread::sleep(*d),
                    FaultAction::Panic(msg) => panic!("{msg}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_caught_passes_values_through() {
        assert_eq!(run_caught("t", || 41 + 1), Ok(42));
    }

    #[test]
    fn run_caught_converts_panics_to_typed_errors() {
        let err = run_caught("TF0", || panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err.task, "TF0");
        assert_eq!(err.message, "boom 7");
        assert_eq!(err.to_string(), "simulation of `TF0` panicked: boom 7");
    }

    #[test]
    fn run_caught_handles_non_string_payloads() {
        let err = run_caught("t", || std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(err.message, "simulation panicked");
    }

    #[test]
    fn fault_plan_matches_by_workload() {
        let plan = FaultPlan::new().panic("bad", "injected");
        assert!(!plan.is_empty());
        plan.apply("good"); // no rule -> no effect
        let err = run_caught("bad", || plan.apply("bad")).unwrap_err();
        assert_eq!(err.message, "injected");
    }
}
