//! Panic-safe execution primitives shared by the sweep engine, the
//! explore pipeline and the server worker pool.
//!
//! A simulator bug that panics must never take the host down with it —
//! and, worse, must never *hang* it: before this module existed, a
//! panicking sweep worker simply never filled its completion slot and the
//! in-order emitter waited forever. Every simulation task now runs inside
//! [`run_caught`], which converts a panic into a typed [`SimError`] that
//! the caller can poison completion slots with, surface over HTTP, or
//! print — while every other worker keeps running or exits cleanly.
//!
//! [`FaultPlan`] is the deterministic fault-injection hook used by tests
//! at every level (core sweep, explore, server engine): it matches jobs
//! by workload name and delays or panics their simulation, exercising the
//! recovery paths without real overload or real bugs.
//!
//! # The work-stealing executor
//!
//! [`Executor`] schedules a fixed set of tasks over per-worker Chase–Lev
//! deques with random stealing. Tasks are split at *layer* granularity —
//! layer costs vary by orders of magnitude with fold count, so whole-point
//! scheduling lets one unlucky worker set the tail latency of the whole
//! sweep; layer tasks let idle workers steal the remainder of an expensive
//! point. The task set is known up front, so the deques are fixed-capacity
//! rings of plain task indices: no growth, no ownership hand-off, and the
//! only unsafe-free synchronization is the classic top-CAS steal protocol.
//! Every task runs under [`run_caught`]; the first panic aborts the run
//! and is returned as the typed [`SimError`].
//!
//! Determinism is unaffected by stealing: tasks only *compute* (each
//! writes its own result slot), and result consumers assemble or emit in
//! a fixed order — which worker ran a task, and when, is invisible in the
//! output.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use scalesim_topology::Topology;

use crate::report::NetworkReport;
use crate::simulator::{telemetry_names as sim_telemetry, Simulator};

/// Metric names the executor records into the process-global registry.
pub mod telemetry_names {
    /// Counter: tasks executed by work-stealing executors (any outcome).
    pub const TASKS: &str = "scalesim_exec_tasks_total";
    /// Counter: tasks obtained by stealing from another worker's deque.
    pub const STEALS: &str = "scalesim_exec_steals_total";
}

/// A simulation task that panicked, caught at the execution boundary and
/// converted into a value. `task` names what was being simulated (the
/// workload label); `message` carries the panic payload when it was a
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// What was being simulated (workload or layer label).
    pub task: String,
    /// The panic payload, when it was a string (a fixed fallback text
    /// otherwise).
    pub message: String,
}

impl SimError {
    /// An error for task `task` with panic payload `message`.
    pub fn new(task: impl Into<String>, message: impl Into<String>) -> SimError {
        SimError {
            task: task.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation of `{}` panicked: {}",
            self.task, self.message
        )
    }
}

impl std::error::Error for SimError {}

/// Runs `f` with panics caught at the boundary: a panic becomes
/// `Err(`[`SimError`]`)` tagged with `task`, instead of unwinding into
/// scope joins or thread pools. The default panic hook still prints the
/// panic to stderr first, so post-mortems keep their backtrace.
///
/// # Errors
///
/// Returns [`SimError`] if and only if `f` panicked.
pub fn run_caught<T>(task: &str, f: impl FnOnce() -> T) -> Result<T, SimError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|panic| SimError::new(task, panic_message(panic.as_ref())))
}

/// Extracts a human-readable message from a panic payload (`&str` and
/// `String` payloads; a fixed fallback otherwise).
pub fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_owned()
    }
}

/// Deterministic fault injection for tests: match jobs by workload name
/// and delay or panic their simulation inside the worker that runs it.
/// This is how the panic-recovery, shedding, deadline and drain paths are
/// exercised without real overload; it is a test hook, not a production
/// feature (an empty plan — the default — injects nothing).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<(String, FaultAction)>,
}

#[derive(Debug, Clone)]
enum FaultAction {
    Delay(Duration),
    Panic(String),
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sleep `delay` inside the worker before simulating any job whose
    /// workload name is `workload` — a deterministic stand-in for a slow
    /// simulation. The delay applies at every task boundary the job
    /// crosses, so a job split into several tasks sleeps once per task.
    pub fn delay(mut self, workload: &str, delay: Duration) -> FaultPlan {
        self.rules
            .push((workload.into(), FaultAction::Delay(delay)));
        self
    }

    /// Panic with `message` instead of simulating any job whose workload
    /// name is `workload` — exercises the executor's panic recovery.
    pub fn panic(mut self, workload: &str, message: &str) -> FaultPlan {
        self.rules
            .push((workload.into(), FaultAction::Panic(message.into())));
        self
    }

    /// True when the plan has no rules (the common production case, kept
    /// cheap to test on hot paths).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies every matching rule for `workload`: sleeps on delay rules,
    /// panics on panic rules. Executors call this at each task boundary,
    /// inside their `catch_unwind`.
    pub fn apply(&self, workload: &str) {
        for (name, action) in &self.rules {
            if name == workload {
                match action {
                    FaultAction::Delay(d) => std::thread::sleep(*d),
                    FaultAction::Panic(msg) => panic!("{msg}"),
                }
            }
        }
    }
}

/// A fixed-capacity Chase–Lev deque of task indices.
///
/// The owner pushes and pops at the bottom; thieves race for the top
/// element with a CAS. Because the full task set is pushed before any
/// worker starts (the spawn provides the happens-before edge) and the
/// elements are plain `usize`s in atomic cells, the structure needs no
/// unsafe code and never grows: capacity is the next power of two at or
/// above the task count.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

enum Steal {
    Task(usize),
    Empty,
    /// Lost the top CAS to another thief (or the owner's last-element
    /// pop); the deque may still have work — try again.
    Retry,
}

impl Deque {
    fn with_capacity(tasks: usize) -> Deque {
        let cap = tasks.next_power_of_two().max(2);
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Owner-side push. Only called while distributing the task set,
    /// before any worker thread exists, so capacity is never exceeded.
    fn push(&self, task: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        self.buf[(b as usize) & self.mask].store(task, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-side pop from the bottom (LIFO for locality).
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let task = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
            if t == b {
                // Single element left: race thieves for it via `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(task)
            } else {
                Some(task)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal from the top (FIFO: steals take the oldest task,
    /// which under block distribution is the start of another job).
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let task = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Task(task)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

/// Per-worker scheduling counters (shared, so the summary can be read
/// after the scope joins).
struct WorkerStats {
    executed: AtomicU64,
    stolen: AtomicU64,
    busy_nanos: AtomicU64,
    wall_nanos: AtomicU64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
        }
    }
}

/// Scheduling counters of one executor run: how much work ran, how much
/// of it moved between workers, and how busy each worker was.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecSummary {
    /// Tasks executed (including a panicking one, if any).
    pub tasks: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Per-worker busy fraction in `[0, 1]`: time spent inside task
    /// bodies over the worker's wall time in the pool.
    pub worker_busy: Vec<f64>,
}

/// A panic-safe work-stealing executor over a fixed task set.
///
/// Construction distributes task indices `0..tasks` over per-worker
/// Chase–Lev deques in contiguous blocks (so a worker's own queue holds
/// consecutive layers of the same jobs, and steals grab whole tails of
/// other jobs). Workers call [`Executor::run_worker`] — typically from a
/// scoped thread each — which loops: pop own deque, else steal from a
/// random victim, else yield until every task has retired. Each task body
/// runs under `catch_unwind`; the first panic records a typed
/// [`SimError`], aborts every worker, and is returned from the panicking
/// worker's `run_worker` so the caller can poison downstream consumers.
pub struct Executor {
    deques: Vec<Deque>,
    stats: Vec<WorkerStats>,
    /// Tasks that finished executing (successfully or by panic). Workers
    /// may only exit when this reaches `total` (or on abort): an empty
    /// deque sweep is *not* proof of completion while peers still run.
    retired: AtomicUsize,
    total: usize,
    abort: AtomicBool,
    error: Mutex<Option<SimError>>,
}

impl Executor {
    /// An executor over tasks `0..tasks` for `workers` workers, the task
    /// indices block-distributed over the workers' deques.
    pub fn new(tasks: usize, workers: usize) -> Executor {
        let workers = workers.max(1).min(tasks.max(1));
        let per = tasks.div_ceil(workers);
        let deques: Vec<Deque> = (0..workers).map(|_| Deque::with_capacity(per)).collect();
        for task in 0..tasks {
            deques[task / per].push(task);
        }
        Executor {
            deques,
            stats: (0..workers).map(|_| WorkerStats::new()).collect(),
            retired: AtomicUsize::new(0),
            total: tasks,
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Actual worker count (clamped to the task count, minimum one).
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Requests an orderly stop: workers finish their current task and
    /// exit. Used by consumers that fail (e.g. a sink I/O error).
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// True once a stop was requested (by [`Executor::abort`] or a panic).
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// The first panic's typed error, if any task panicked.
    pub fn error(&self) -> Option<SimError> {
        self.error.lock().unwrap().clone()
    }

    /// Runs worker `worker`'s schedule loop until the task set is
    /// exhausted or the run aborts. `task` executes one task index (it
    /// runs under `catch_unwind`); `label` names a task for the
    /// [`SimError`] if that task panics, and is only called on panic.
    ///
    /// Returns the error if a task panicked *on this worker* — the caller
    /// owns propagation (poisoning completion slots, failing the job) so
    /// exactly one worker reports each panic.
    pub fn run_worker<F, L>(&self, worker: usize, task: F, label: L) -> Option<SimError>
    where
        F: Fn(usize),
        L: Fn(usize) -> String,
    {
        let started = Instant::now();
        let mut rng = (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let stats = &self.stats[worker];
        let mut result = None;
        while let Some(t) = self.find_task(worker, &mut rng) {
            let _span = scalesim_telemetry::trace::span_with("exec.task", || {
                vec![("task", t.to_string()), ("worker", worker.to_string())]
            });
            let task_started = Instant::now();
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(t)));
            stats
                .busy_nanos
                .fetch_add(task_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            stats.executed.fetch_add(1, Ordering::Relaxed);
            self.retired.fetch_add(1, Ordering::Release);
            if let Err(panic) = run {
                let err = SimError::new(label(t), panic_message(panic.as_ref()));
                {
                    // First panic wins; later ones are casualties of the
                    // abort and would only obscure the root cause.
                    let mut first = self.error.lock().unwrap();
                    if first.is_none() {
                        *first = Some(err.clone());
                    }
                }
                self.abort.store(true, Ordering::Relaxed);
                result = Some(err);
                break;
            }
        }
        stats
            .wall_nanos
            .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Next task for `worker`: own deque first, then a randomized sweep
    /// of the other deques, yielding between sweeps until all tasks have
    /// retired or the run aborts.
    fn find_task(&self, worker: usize, rng: &mut u64) -> Option<usize> {
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(t) = self.deques[worker].pop() {
                return Some(t);
            }
            if self.retired.load(Ordering::Acquire) >= self.total {
                return None;
            }
            let n = self.deques.len();
            let start = (xorshift(rng) as usize) % n;
            let mut stolen = None;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == worker {
                    continue;
                }
                match self.deques[victim].steal() {
                    Steal::Task(t) => {
                        stolen = Some(t);
                        break;
                    }
                    // Retry means contention, not emptiness; the next
                    // sweep (after the completion re-check) covers it.
                    Steal::Retry | Steal::Empty => {}
                }
            }
            match stolen {
                Some(t) => {
                    self.stats[worker].stolen.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                None => std::thread::yield_now(),
            }
        }
    }

    /// Scheduling counters of the run so far (stable once every
    /// `run_worker` has returned).
    pub fn summary(&self) -> ExecSummary {
        ExecSummary {
            tasks: self
                .stats
                .iter()
                .map(|s| s.executed.load(Ordering::Relaxed))
                .sum(),
            steals: self
                .stats
                .iter()
                .map(|s| s.stolen.load(Ordering::Relaxed))
                .sum(),
            worker_busy: self
                .stats
                .iter()
                .map(|s| {
                    let wall = s.wall_nanos.load(Ordering::Relaxed);
                    if wall == 0 {
                        0.0
                    } else {
                        s.busy_nanos.load(Ordering::Relaxed) as f64 / wall as f64
                    }
                })
                .collect(),
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Simulates every layer of `topology` as independent panic-guarded tasks
/// on `workers` threads (inline on the caller when one worker suffices)
/// and assembles the per-layer reports in layer order — byte-identical to
/// [`Simulator::run_topology`], including the network-runs counter, but a
/// panicking layer (or injected fault) returns a typed [`SimError`]
/// instead of unwinding. `faults` is applied once per task, keyed by the
/// topology name; pass an empty plan outside tests.
///
/// # Errors
///
/// The first panic among the layer tasks, as a [`SimError`].
pub fn run_topology_guarded(
    sim: &Simulator,
    topology: &Topology,
    workers: usize,
    faults: &FaultPlan,
) -> Result<NetworkReport, SimError> {
    let layers: Vec<_> = topology.iter().collect();
    let name = topology.name();
    let done: Vec<Mutex<Option<crate::report::LayerReport>>> =
        (0..layers.len()).map(|_| Mutex::new(None)).collect();
    let exec = Executor::new(layers.len(), workers);
    let task = |t: usize| {
        faults.apply(name);
        let report = sim.run_layer(layers[t]);
        *done[t].lock().unwrap() = Some(report);
    };
    let label = |_: usize| name.to_owned();
    if exec.workers() == 1 {
        if let Some(err) = exec.run_worker(0, task, label) {
            return Err(err);
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for worker in 0..exec.workers() {
                let exec = &exec;
                let task = &task;
                let label = &label;
                scope.spawn(move |_| exec.run_worker(worker, task, label));
            }
        })
        .expect("executor workers never unwind");
        if let Some(err) = exec.error() {
            return Err(err);
        }
    }
    let reports = done
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every layer task completed")
        })
        .collect();
    scalesim_telemetry::global()
        .counter(
            sim_telemetry::NETWORK_RUNS,
            "Topologies simulated end to end.",
        )
        .inc();
    Ok(NetworkReport::new(name, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_caught_passes_values_through() {
        assert_eq!(run_caught("t", || 41 + 1), Ok(42));
    }

    #[test]
    fn run_caught_converts_panics_to_typed_errors() {
        let err = run_caught("TF0", || panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err.task, "TF0");
        assert_eq!(err.message, "boom 7");
        assert_eq!(err.to_string(), "simulation of `TF0` panicked: boom 7");
    }

    #[test]
    fn run_caught_handles_non_string_payloads() {
        let err = run_caught("t", || std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(err.message, "simulation panicked");
    }

    #[test]
    fn fault_plan_matches_by_workload() {
        let plan = FaultPlan::new().panic("bad", "injected");
        assert!(!plan.is_empty());
        plan.apply("good"); // no rule -> no effect
        let err = run_caught("bad", || plan.apply("bad")).unwrap_err();
        assert_eq!(err.message, "injected");
    }

    /// Drives `exec` with `workers` scoped threads running `task`.
    fn drive(exec: &Executor, task: impl Fn(usize) + Sync) {
        crossbeam::thread::scope(|scope| {
            for w in 0..exec.workers() {
                let exec = &exec;
                let task = &task;
                scope.spawn(move |_| exec.run_worker(w, task, |t| t.to_string()));
            }
        })
        .unwrap();
    }

    #[test]
    fn every_task_executes_exactly_once() {
        // Uneven task costs force stealing; the per-task counters prove
        // exactly-once execution under it.
        for workers in [1, 2, 3, 8] {
            let total = 257;
            let counts: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
            let exec = Executor::new(total, workers);
            drive(&exec, |t| {
                if t % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                counts[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, count) in counts.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    1,
                    "task {t} ran a wrong number of times with {workers} workers"
                );
            }
            let summary = exec.summary();
            assert_eq!(summary.tasks, total as u64);
            assert_eq!(summary.worker_busy.len(), exec.workers());
            assert!(exec.error().is_none());
        }
    }

    #[test]
    fn uneven_blocks_get_rebalanced_by_stealing() {
        // All the slow tasks start on worker 0's deque; with more workers
        // than one, some of them must be stolen.
        let total = 64;
        let exec = Executor::new(total, 4);
        drive(&exec, |t| {
            if t < total / 4 {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let summary = exec.summary();
        assert_eq!(summary.tasks, total as u64);
        assert!(
            summary.steals > 0,
            "a skewed block distribution must trigger steals"
        );
    }

    #[test]
    fn a_panicking_task_aborts_the_run_with_its_error() {
        let total = 100;
        let executed = AtomicU64::new(0);
        let exec = Executor::new(total, 4);
        drive(&exec, |t| {
            executed.fetch_add(1, Ordering::Relaxed);
            if t == 17 {
                panic!("task 17 exploded");
            }
        });
        let err = exec.error().expect("panic must be recorded");
        assert_eq!(err.task, "17");
        assert_eq!(err.message, "task 17 exploded");
        assert!(exec.aborted());
        // The abort is prompt: at least the panicking task ran, but the
        // run did not insist on finishing everything.
        assert!(executed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn external_abort_stops_workers() {
        let exec = Executor::new(1000, 2);
        exec.abort();
        drive(&exec, |_| {});
        assert_eq!(exec.summary().tasks, 0);
        assert!(exec.error().is_none());
    }

    #[test]
    fn guarded_topology_run_matches_run_topology() {
        use scalesim_topology::networks;
        let sim = Simulator::new(crate::config::SimConfig::default());
        let topology = networks::alexnet();
        let direct = sim.run_topology(&topology);
        for workers in [1, 4] {
            let guarded =
                run_topology_guarded(&sim, &topology, workers, &FaultPlan::new()).unwrap();
            assert_eq!(direct.to_csv(), guarded.to_csv());
        }
    }

    #[test]
    fn guarded_topology_run_surfaces_injected_panics() {
        use scalesim_topology::networks;
        let sim = Simulator::new(crate::config::SimConfig::default());
        let topology = networks::alexnet();
        let faults = FaultPlan::new().panic("alexnet", "guarded fault");
        for workers in [1, 3] {
            let err = run_topology_guarded(&sim, &topology, workers, &faults).unwrap_err();
            assert_eq!(err.task, "alexnet");
            assert_eq!(err.message, "guarded fault");
        }
    }
}
