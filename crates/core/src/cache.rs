//! Content-addressed memoization primitives: a stable 128-bit content
//! hash and a sharded LRU map keyed by it.
//!
//! These back both the in-process [`sweep`](crate::sweep) engine and the
//! `scalesim-server` crate's result cache — the server's job keys and the
//! sweep engine's point keys hash the same canonical job text with the
//! same function, so the two layers address one key space.
//!
//! Sharding bounds lock contention under a worker pool: each shard owns an
//! independent mutex and an independent LRU list, so concurrent lookups
//! for different keys rarely serialize. Capacity is divided evenly across
//! shards; eviction is per-shard LRU, which approximates global LRU well
//! when the hash distributes keys uniformly (FNV on canonical job text
//! does).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use scalesim_telemetry::{Counter, Gauge};

/// A 128-bit content hash (FNV-1a/128) naming a blob of canonical text.
///
/// Collision odds at design-space-exploration scale (even millions of
/// cached entries) are negligible, and the hash is stable across processes
/// and platforms — a prerequisite for a cache that could later be shared
/// between server shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub u128);

impl ContentKey {
    const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

    /// Hashes arbitrary content into a key.
    pub fn from_content(bytes: &[u8]) -> ContentKey {
        let mut state = Self::FNV_OFFSET;
        for &b in bytes {
            state ^= u128::from(b);
            state = state.wrapping_mul(Self::FNV_PRIME);
        }
        ContentKey(state)
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Slab sentinel: "no node".
const NIL: usize = usize::MAX;

/// A fixed-capacity sharded LRU map from `u128` content hashes to values.
///
/// Optionally instrumented via [`ShardedLru::with_metrics`]: an eviction
/// counter and a resident-entries gauge, updated as entries come and go.
pub struct ShardedLru<V> {
    shards: Box<[Mutex<Shard<V>>]>,
    evictions: Option<Arc<Counter>>,
    resident: Option<Arc<Gauge>>,
}

struct Shard<V> {
    /// key -> slab slot
    index: HashMap<u128, usize>,
    slab: Vec<Node<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

struct Node<V> {
    key: u128,
    value: V,
    prev: usize,
    next: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a cache holding at most `capacity` entries spread over
    /// `shards` shards (both forced to at least 1; per-shard capacity is
    /// rounded up so total capacity is never below the request).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    index: HashMap::new(),
                    slab: Vec::new(),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    capacity: per_shard,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedLru {
            shards,
            evictions: None,
            resident: None,
        }
    }

    /// Attaches telemetry: `evictions` increments on every LRU eviction,
    /// `resident` tracks the live entry count.
    pub fn with_metrics(mut self, evictions: Arc<Counter>, resident: Arc<Gauge>) -> ShardedLru<V> {
        self.evictions = Some(evictions);
        self.resident = Some(resident);
        self
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        // The low 64 bits of an FNV-128 hash are well mixed.
        &self.shards[(key as u64 % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: u128) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap();
        let slot = *shard.index.get(&key)?;
        shard.promote(slot);
        Some(shard.slab[slot].value.clone())
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry of the
    /// target shard if it is full. Replaces (and promotes) on re-insert.
    pub fn insert(&self, key: u128, value: V) {
        let mut shard = self.shard(key).lock().unwrap();
        if let Some(&slot) = shard.index.get(&key) {
            shard.slab[slot].value = value;
            shard.promote(slot);
            return;
        }
        let evicted = shard.index.len() >= shard.capacity && shard.evict_tail();
        if evicted {
            if let Some(evictions) = &self.evictions {
                evictions.inc();
            }
        } else if let Some(resident) = &self.resident {
            // A new entry without an eviction grows the cache by one;
            // evict-then-insert nets zero residents.
            resident.add(1);
        }
        let slot = match shard.free.pop() {
            Some(slot) => {
                shard.slab[slot] = Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                shard.slab.push(Node {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                shard.slab.len() - 1
            }
        };
        shard.index.insert(key, slot);
        shard.push_front(slot);
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().index.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (all shards), releasing the slabs. The resident
    /// gauge is decremented by the number of removed entries; dropped
    /// entries do not count as evictions (this is a reset, not pressure).
    pub fn clear(&self) {
        let mut removed = 0i64;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap();
            removed += shard.index.len() as i64;
            shard.index.clear();
            shard.slab.clear();
            shard.free.clear();
            shard.head = NIL;
            shard.tail = NIL;
        }
        if let Some(resident) = &self.resident {
            resident.sub(removed);
        }
    }
}

impl<V> Shard<V> {
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].prev = slot,
        }
        self.head = slot;
    }

    fn promote(&mut self, slot: usize) {
        if self.head != slot {
            self.detach(slot);
            self.push_front(slot);
        }
    }

    /// Evicts the least-recently-used entry; false if the shard was empty.
    fn evict_tail(&mut self) -> bool {
        let tail = self.tail;
        if tail == NIL {
            return false;
        }
        self.detach(tail);
        let key = self.slab[tail].key;
        self.index.remove(&key);
        self.free.push(tail);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_key_is_stable_and_discriminating() {
        let a = ContentKey::from_content(b"hello");
        assert_eq!(a, ContentKey::from_content(b"hello"));
        assert_ne!(a, ContentKey::from_content(b"hello!"));
        // 128-bit FNV-1a of the empty string is the offset basis.
        assert_eq!(
            ContentKey::from_content(b"").to_string(),
            "6c62272e07bb014262b821756295c58d"
        );
    }

    #[test]
    fn hit_and_miss() {
        let lru = ShardedLru::new(8, 2);
        assert!(lru.is_empty());
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(1), Some("a"));
        assert_eq!(lru.get(3), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_replaces() {
        let lru = ShardedLru::new(4, 1);
        lru.insert(1, "a");
        lru.insert(1, "a2");
        assert_eq!(lru.get(1), Some("a2"));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let lru = ShardedLru::new(2, 1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        assert_eq!(lru.get(1), Some(1)); // promote 1; LRU is now 2
        lru.insert(3, 3);
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some(1));
        assert_eq!(lru.get(3), Some(3));
    }

    #[test]
    fn eviction_recycles_slots() {
        let lru = ShardedLru::new(2, 1);
        for k in 0..100u128 {
            lru.insert(k, k);
        }
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(99), Some(99));
        assert_eq!(lru.get(98), Some(98));
        assert_eq!(lru.get(0), None);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let lru = ShardedLru::new(64, 8);
        for k in 0..64u128 {
            lru.insert(k, k);
        }
        assert_eq!(lru.len(), 64);
        for k in 0..64u128 {
            assert_eq!(lru.get(k), Some(k));
        }
    }

    #[test]
    fn metrics_track_residency_and_evictions() {
        let evictions = Arc::new(Counter::new());
        let resident = Arc::new(Gauge::new());
        let lru = ShardedLru::new(2, 1).with_metrics(Arc::clone(&evictions), Arc::clone(&resident));
        lru.insert(1, 1);
        lru.insert(2, 2);
        assert_eq!(resident.get(), 2);
        assert_eq!(evictions.get(), 0);
        lru.insert(2, 20); // replace: no residency change, no eviction
        assert_eq!(resident.get(), 2);
        lru.insert(3, 3); // full: evicts key 1
        assert_eq!(resident.get(), 2);
        assert_eq!(evictions.get(), 1);
        assert_eq!(lru.get(1), None);
        assert_eq!(resident.get() as usize, lru.len());
    }

    #[test]
    fn clear_empties_all_shards_and_fixes_the_gauge() {
        let evictions = Arc::new(Counter::new());
        let resident = Arc::new(Gauge::new());
        let lru =
            ShardedLru::new(16, 4).with_metrics(Arc::clone(&evictions), Arc::clone(&resident));
        for k in 0..10u128 {
            lru.insert(k, k);
        }
        assert_eq!(resident.get(), 10);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(resident.get(), 0);
        assert_eq!(evictions.get(), 0, "clear is not an eviction");
        // Reusable after clear.
        lru.insert(3, 33);
        assert_eq!(lru.get(3), Some(33));
        assert_eq!(resident.get(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let lru = Arc::new(ShardedLru::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let lru = Arc::clone(&lru);
                s.spawn(move || {
                    for i in 0..256u128 {
                        let k = t * 1000 + i;
                        lru.insert(k, k);
                        assert!(lru.get(k).is_some() || lru.len() <= 128);
                    }
                });
            }
        });
        assert!(lru.len() <= 128);
    }
}
