//! Inter-layer pipelining across partitioned accelerators.
//!
//! SCALE-Sim serializes layers (Section II-E); the paper's related work
//! (Tangram) shows tiled accelerators can instead *pipeline* consecutive
//! layers across tiles. This module models that: the topology is cut into
//! contiguous stages, each stage runs on its own accelerator (an equal
//! slice of the hardware), inputs stream through, and steady-state
//! throughput is set by the slowest stage.
//!
//! Stage assignment uses the classic linear-partitioning dynamic program
//! (minimize the maximum stage cost over contiguous splits), with each
//! layer's simulated cycles as its cost.

use serde::{Deserialize, Serialize};

use scalesim_analytical::PartitionGrid;
use scalesim_topology::Topology;

use crate::config::SimConfig;
use crate::report::LayerReport;
use crate::simulator::Simulator;

/// One pipeline stage: a contiguous run of layers on one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Names of the layers mapped to this stage, in order.
    pub layers: Vec<String>,
    /// The stage's per-input latency (sum of its layers' cycles).
    pub cycles: u64,
}

/// Result of pipelining a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The stages, in topology order.
    pub stages: Vec<StageReport>,
    /// Per-input latency of the slowest stage — the pipeline's beat.
    pub bottleneck_cycles: u64,
    /// Latency to fill the pipeline (sum of all stage latencies — also the
    /// single-input end-to-end latency).
    pub fill_cycles: u64,
}

impl PipelineReport {
    /// Total cycles to process `inputs` inputs: fill + (inputs−1) beats.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero.
    pub fn total_cycles(&self, inputs: u64) -> u64 {
        assert!(inputs > 0, "a pipeline processes at least one input");
        self.fill_cycles + (inputs - 1) * self.bottleneck_cycles
    }

    /// Steady-state throughput in inputs per kilocycle.
    pub fn throughput_per_kcycle(&self) -> f64 {
        1000.0 / self.bottleneck_cycles as f64
    }

    /// Pipeline balance: bottleneck over mean stage latency (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.stages.is_empty() {
            return 1.0;
        }
        let mean = self.fill_cycles as f64 / self.stages.len() as f64;
        self.bottleneck_cycles as f64 / mean
    }
}

/// Cuts `costs` into at most `stages` contiguous groups minimizing the
/// maximum group sum (the linear partition problem). Returns the group
/// boundaries as end-exclusive indices (the last is `costs.len()`).
///
/// # Panics
///
/// Panics if `stages` is zero or `costs` is empty.
pub fn balance_stages(costs: &[u64], stages: usize) -> Vec<usize> {
    assert!(stages > 0, "need at least one stage");
    assert!(!costs.is_empty(), "need at least one layer");
    let n = costs.len();
    let k = stages.min(n);
    // prefix[i] = sum of costs[..i]
    let mut prefix = vec![0u64; n + 1];
    for (i, &c) in costs.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // costs[a..b]

    // dp[j][i] = minimal max-stage-cost splitting costs[..i] into j groups.
    let mut dp = vec![vec![u64::MAX; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    for (i, slot) in dp[1].iter_mut().enumerate().skip(1) {
        *slot = seg(0, i);
    }
    for j in 2..=k {
        for i in j..=n {
            // Last group is costs[m..i]; m ranges over [j-1, i).
            for m in (j - 1)..i {
                let candidate = dp[j - 1][m].max(seg(m, i));
                if candidate < dp[j][i] {
                    dp[j][i] = candidate;
                    cut[j][i] = m;
                }
            }
        }
    }

    // Reconstruct boundaries.
    let mut bounds = vec![0usize; k + 1];
    bounds[k] = n;
    let mut i = n;
    for j in (2..=k).rev() {
        i = cut[j][i];
        bounds[j - 1] = i;
    }
    bounds.remove(0);
    bounds
}

/// Pipelines `topology` over `stages` accelerators, each a copy of `base`
/// running on `grid_per_stage` partitions. Stage boundaries balance the
/// simulated per-layer cycles.
///
/// # Panics
///
/// Panics if `stages` is zero or the topology is empty.
pub fn run_pipeline(
    topology: &Topology,
    base: &SimConfig,
    grid_per_stage: PartitionGrid,
    stages: usize,
) -> PipelineReport {
    assert!(!topology.is_empty(), "cannot pipeline an empty topology");
    let sim = Simulator::new(*base).with_grid(grid_per_stage);
    let reports: Vec<LayerReport> = topology.iter().map(|l| sim.run_layer(l)).collect();
    let costs: Vec<u64> = reports.iter().map(|r| r.total_cycles).collect();
    let bounds = balance_stages(&costs, stages);

    let mut stage_reports = Vec::with_capacity(bounds.len());
    let mut start = 0usize;
    for &end in &bounds {
        let cycles = costs[start..end].iter().sum();
        stage_reports.push(StageReport {
            layers: topology.layers()[start..end]
                .iter()
                .map(|l| l.name().to_owned())
                .collect(),
            cycles,
        });
        start = end;
    }
    let bottleneck_cycles = stage_reports.iter().map(|s| s.cycles).max().unwrap_or(0);
    let fill_cycles = stage_reports.iter().map(|s| s.cycles).sum();
    PipelineReport {
        stages: stage_reports,
        bottleneck_cycles,
        fill_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_systolic::ArrayShape;
    use scalesim_topology::networks;

    #[test]
    fn balance_matches_brute_force_on_small_inputs() {
        fn brute(costs: &[u64], stages: usize) -> u64 {
            // Enumerate all contiguous splits recursively.
            fn go(costs: &[u64], stages: usize) -> u64 {
                if stages == 1 || costs.len() == 1 {
                    return if stages >= costs.len() && stages > 1 {
                        *costs.iter().max().unwrap()
                    } else if stages == 1 {
                        costs.iter().sum()
                    } else {
                        *costs.iter().max().unwrap()
                    };
                }
                (1..costs.len())
                    .map(|cut| {
                        let left: u64 = costs[..cut].iter().sum();
                        left.max(go(&costs[cut..], stages - 1))
                    })
                    .min()
                    .unwrap()
            }
            go(costs, stages.min(costs.len()))
        }
        let cases: [&[u64]; 4] = [
            &[1, 2, 3, 4, 5],
            &[9, 1, 1, 1, 9],
            &[5, 5, 5, 5],
            &[100, 1, 1, 1, 1, 1],
        ];
        for costs in cases {
            for stages in 1..=4 {
                let bounds = balance_stages(costs, stages);
                let mut start = 0;
                let mut worst = 0u64;
                for &end in &bounds {
                    worst = worst.max(costs[start..end].iter().sum());
                    start = end;
                }
                assert_eq!(worst, brute(costs, stages), "{costs:?} @ {stages}");
            }
        }
    }

    #[test]
    fn boundaries_cover_exactly_once() {
        let bounds = balance_stages(&[3, 1, 4, 1, 5, 9, 2, 6], 3);
        assert_eq!(*bounds.last().unwrap(), 8);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn more_stages_than_layers_degenerates_gracefully() {
        let bounds = balance_stages(&[7, 7], 5);
        assert_eq!(bounds, vec![1, 2]);
    }

    #[test]
    fn pipelined_alexnet_beats_serial_on_throughput() {
        let base = SimConfig::builder()
            .array(ArrayShape::square(16))
            .sram_kb(64, 64, 32)
            .build();
        let net = networks::alexnet();
        let pipe = run_pipeline(&net, &base, PartitionGrid::monolithic(), 4);
        assert_eq!(pipe.stages.len(), 4);
        // Single input: pipeline fill == serial latency on the same hw.
        let serial: u64 = Simulator::new(base)
            .run_topology(&net)
            .layers()
            .iter()
            .map(|l| l.total_cycles)
            .sum();
        assert_eq!(pipe.fill_cycles, serial);
        // 100 inputs: the pipeline amortizes to its bottleneck beat, far
        // below 100 serial passes (each stage is its own accelerator).
        let pipelined = pipe.total_cycles(100);
        assert!(pipelined < serial * 100 / 2);
        // Bottleneck bounds: at least fill/stages, at most fill.
        assert!(pipe.bottleneck_cycles >= pipe.fill_cycles / 4);
        assert!(pipe.bottleneck_cycles <= pipe.fill_cycles);
        assert!(pipe.imbalance() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_panics() {
        let report = PipelineReport {
            stages: vec![],
            bottleneck_cycles: 1,
            fill_cycles: 1,
        };
        let _ = report.total_cycles(0);
    }
}
