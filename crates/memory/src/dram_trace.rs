//! DRAM trace export — the "DRAM R/W" CSV output of Fig. 2.
//!
//! The original tool emits, besides the SRAM traces, a prefetch trace for
//! each operand: which addresses cross the interface and when. In the
//! double-buffered model a fold's misses are prefetched during the previous
//! fold's compute window, spread evenly across it; writes stream out during
//! the fold itself. This module reconstructs those schedules from the same
//! per-fold information [`crate::DramModel`] consumes, and writes them in
//! the original `cycle, addr, addr, …` CSV format.

use std::io::{self, Write};

/// Records the interface schedule and writes DRAM trace CSVs.
///
/// Feed it the same folds (plus the miss addresses) the [`crate::DramModel`]
/// sees; it spreads fold *f*'s prefetch across fold *f−1*'s window at a
/// uniform rate and the writes across fold *f* itself.
///
/// ```
/// use scalesim_memory::dram_trace::DramTraceWriter;
///
/// let mut reads = Vec::new();
/// let mut writes = Vec::new();
/// let mut tracer = DramTraceWriter::new(&mut reads, &mut writes);
/// // Fold 0 lasts 4 cycles, misses addresses 10..14, writes 20..22.
/// tracer.fold(4, &[10, 11, 12, 13], &[20, 21]).unwrap();
/// tracer.finish().unwrap();
/// assert!(!reads.is_empty());
/// ```
#[derive(Debug)]
pub struct DramTraceWriter<W: Write> {
    reads: W,
    writes: W,
    /// Start cycle of the current fold.
    fold_start: u64,
    /// Duration of the previous fold (the prefetch window).
    prev_duration: Option<u64>,
    folds: u64,
}

impl<W: Write> DramTraceWriter<W> {
    /// Creates a writer emitting read traffic to `reads` and write traffic
    /// to `writes`.
    pub fn new(reads: W, writes: W) -> Self {
        DramTraceWriter {
            reads,
            writes,
            fold_start: 0,
            prev_duration: None,
            folds: 0,
        }
    }

    /// Records one fold: its compute `duration`, the addresses it must
    /// fetch (`read_misses`, in fetch order) and the addresses it streams
    /// out (`write_addrs`).
    ///
    /// Fold 0's prefetch is scheduled in a lead-in window *before* cycle 0
    /// (negative time in the original tool; clamped to start at the fold's
    /// own length before its start here, i.e. cycle 0).
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn fold(
        &mut self,
        duration: u64,
        read_misses: &[u64],
        write_addrs: &[u64],
    ) -> io::Result<()> {
        // Prefetch window: the previous fold's span (or a cold-start window
        // of this fold's own length, clamped at cycle 0).
        let window = self.prev_duration.unwrap_or(duration).max(1);
        let window_start = self.fold_start.saturating_sub(window);
        emit_spread(&mut self.reads, read_misses, window_start, window)?;
        emit_spread(
            &mut self.writes,
            write_addrs,
            self.fold_start,
            duration.max(1),
        )?;
        self.fold_start += duration;
        self.prev_duration = Some(duration);
        self.folds += 1;
        Ok(())
    }

    /// Flushes and returns the writers.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn finish(mut self) -> io::Result<(W, W)> {
        self.reads.flush()?;
        self.writes.flush()?;
        Ok((self.reads, self.writes))
    }
}

/// Spreads `addrs` uniformly over `[start, start + window)`, one CSV row
/// per cycle that moves data: `cycle, addr, addr, …`.
fn emit_spread<W: Write>(out: &mut W, addrs: &[u64], start: u64, window: u64) -> io::Result<()> {
    if addrs.is_empty() {
        return Ok(());
    }
    let per_cycle = (addrs.len() as u64).div_ceil(window) as usize;
    for (i, chunk) in addrs.chunks(per_cycle).enumerate() {
        let mut row = format!("{}", start + i as u64);
        for addr in chunk {
            row.push_str(&format!(",{addr}"));
        }
        row.push('\n');
        out.write_all(row.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(buf: &[u8]) -> Vec<(u64, Vec<u64>)> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .map(|l| {
                let mut parts = l.split(',');
                let cycle = parts.next().unwrap().parse().unwrap();
                (cycle, parts.map(|a| a.parse().unwrap()).collect())
            })
            .collect()
    }

    #[test]
    fn cold_start_prefetch_begins_at_zero() {
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        tracer.fold(4, &[1, 2, 3, 4], &[]).unwrap();
        let (reads, _) = tracer.finish().unwrap();
        let rows = rows(&reads);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows.len(), 4); // one address per cycle over a 4-cycle window
    }

    #[test]
    fn second_fold_prefetches_during_first() {
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        tracer.fold(10, &[], &[]).unwrap();
        tracer.fold(5, &[100, 101], &[]).unwrap();
        let (reads, _) = tracer.finish().unwrap();
        let rows = rows(&reads);
        // Two addresses spread over fold 0's window [0, 10).
        assert!(rows.iter().all(|(c, _)| *c < 10));
        let total: usize = rows.iter().map(|(_, a)| a.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn writes_stream_during_their_own_fold() {
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        tracer.fold(3, &[], &[7, 8, 9]).unwrap();
        tracer.fold(3, &[], &[10]).unwrap();
        let (_, writes) = tracer.finish().unwrap();
        let rows = rows(&writes);
        // Fold 0 writes land in [0, 3); fold 1's single write at cycle 3.
        assert!(rows.iter().take(3).all(|(c, _)| *c < 3));
        assert_eq!(rows.last().unwrap().0, 3);
    }

    #[test]
    fn more_addresses_than_cycles_batches_per_row() {
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        let addrs: Vec<u64> = (0..10).collect();
        tracer.fold(3, &addrs, &[]).unwrap();
        let (reads, _) = tracer.finish().unwrap();
        let rows = rows(&reads);
        assert!(rows.len() <= 3);
        let total: usize = rows.iter().map(|(_, a)| a.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_folds_emit_nothing() {
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        tracer.fold(5, &[], &[]).unwrap();
        let (reads, writes) = tracer.finish().unwrap();
        assert!(reads.is_empty());
        assert!(writes.is_empty());
    }
}
