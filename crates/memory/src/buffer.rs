//! Double-buffered SRAM working-set model.
//!
//! SCALE-Sim provisions a dedicated, double-buffered SRAM per operand
//! (Section II-C, Fig. 2). At this model's granularity a buffer is a set of
//! resident element addresses with FIFO replacement: demand that hits costs
//! nothing at the interface, demand that misses must be prefetched from DRAM
//! before the fold that uses it starts. FIFO (rather than LRU) matches the
//! streaming prefetch behaviour of the original tool — data is loaded in
//! use-order and the oldest loads are the first overwritten.

use std::collections::VecDeque;

use crate::fast_hash::AddrSet;

/// Per-epoch classification of a demand stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Demanded addresses already resident.
    pub hits: u64,
    /// Demanded addresses that had to be fetched.
    pub misses: u64,
    /// Addresses evicted to make room.
    pub evictions: u64,
}

/// A double-buffered operand SRAM: a FIFO working set of element addresses.
///
/// ```
/// use scalesim_memory::DoubleBuffer;
///
/// let mut buf = DoubleBuffer::new(2);
/// let first = buf.epoch([1, 2].iter().copied());
/// assert_eq!(first.misses, 2);
/// let second = buf.epoch([2, 3].iter().copied()); // 2 hits, 3 misses, 1 evicted
/// assert_eq!((second.hits, second.misses, second.evictions), (1, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DoubleBuffer {
    capacity: usize,
    resident: AddrSet,
    order: VecDeque<u64>,
}

impl DoubleBuffer {
    /// Creates a buffer holding at most `capacity_elems` elements.
    ///
    /// A capacity of zero models "no buffer": every demand misses.
    pub fn new(capacity_elems: usize) -> Self {
        DoubleBuffer {
            capacity: capacity_elems,
            resident: AddrSet::default(),
            order: VecDeque::new(),
        }
    }

    /// An effectively infinite buffer (everything fetched exactly once).
    pub fn unbounded() -> Self {
        DoubleBuffer::new(usize::MAX)
    }

    /// The configured capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains(&addr)
    }

    /// Runs one epoch (one fold's worth) of demand through the buffer.
    ///
    /// Demands should be the epoch's unique addresses in first-use order;
    /// intra-epoch reuse is served by the SRAM itself and is not interface
    /// traffic. Misses are inserted in demand order, evicting the oldest
    /// resident addresses when the buffer is full (so an epoch whose working
    /// set exceeds the capacity thrashes, as the real hardware would).
    pub fn epoch(&mut self, demand: impl IntoIterator<Item = u64>) -> EpochStats {
        self.run_epoch(demand, None)
    }

    /// Like [`DoubleBuffer::epoch`], but also returns the missed addresses
    /// in fetch order — the input to DRAM trace reconstruction
    /// ([`crate::DramTraceWriter`]).
    pub fn epoch_with_misses(
        &mut self,
        demand: impl IntoIterator<Item = u64>,
    ) -> (EpochStats, Vec<u64>) {
        let mut misses = Vec::new();
        let stats = self.run_epoch(demand, Some(&mut misses));
        (stats, misses)
    }

    fn run_epoch(
        &mut self,
        demand: impl IntoIterator<Item = u64>,
        mut misses: Option<&mut Vec<u64>>,
    ) -> EpochStats {
        let mut stats = EpochStats::default();
        for addr in demand {
            if self.resident.contains(&addr) {
                stats.hits += 1;
                continue;
            }
            stats.misses += 1;
            if let Some(misses) = misses.as_deref_mut() {
                misses.push(addr);
            }
            if self.capacity == 0 {
                continue;
            }
            while self.resident.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.resident.remove(&old);
                    stats.evictions += 1;
                } else {
                    break;
                }
            }
            self.resident.insert(addr);
            self.order.push_back(addr);
        }
        stats
    }

    /// Installs `addr` into the working set *without* counting a miss —
    /// models write-allocation (an output produced on-chip is resident
    /// without ever being fetched). Evicts FIFO-oldest entries as needed;
    /// returns the number of evictions.
    pub fn install(&mut self, addr: u64) -> u64 {
        if self.capacity == 0 || self.resident.contains(&addr) {
            return 0;
        }
        let mut evictions = 0;
        while self.resident.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.resident.remove(&old);
                evictions += 1;
            } else {
                break;
            }
        }
        self.resident.insert(addr);
        self.order.push_back(addr);
        evictions
    }

    /// Drops all resident data (e.g. between layers).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_buffer_misses_everything_once() {
        let mut buf = DoubleBuffer::new(100);
        let stats = buf.epoch(0..10);
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(buf.resident_count(), 10);
    }

    #[test]
    fn warm_buffer_hits_repeats() {
        let mut buf = DoubleBuffer::new(100);
        buf.epoch(0..10);
        let stats = buf.epoch(0..10);
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut buf = DoubleBuffer::new(3);
        buf.epoch([1, 2, 3]);
        let stats = buf.epoch([4]); // evicts 1
        assert_eq!(stats.evictions, 1);
        assert!(!buf.contains(1));
        assert!(buf.contains(2));
        assert!(buf.contains(4));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut buf = DoubleBuffer::new(0);
        assert_eq!(buf.epoch([1, 1, 1]).misses, 3);
        assert_eq!(buf.resident_count(), 0);
    }

    #[test]
    fn epoch_larger_than_capacity_thrashes() {
        let mut buf = DoubleBuffer::new(4);
        // 8 unique addresses through a 4-entry buffer: all miss.
        let first = buf.epoch(0..8);
        assert_eq!(first.misses, 8);
        // Repeat: the first half was evicted, so it misses again.
        let second = buf.epoch(0..8);
        assert_eq!(second.misses, 8);
    }

    #[test]
    fn intra_epoch_repeat_hits_after_insert() {
        let mut buf = DoubleBuffer::new(10);
        let stats = buf.epoch([5, 5, 6, 5]);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn clear_empties_the_working_set() {
        let mut buf = DoubleBuffer::new(10);
        buf.epoch(0..5);
        buf.clear();
        assert_eq!(buf.resident_count(), 0);
        assert_eq!(buf.epoch(0..5).misses, 5);
    }

    #[test]
    fn install_write_allocates_without_miss_accounting() {
        let mut buf = DoubleBuffer::new(2);
        assert_eq!(buf.install(1), 0);
        assert_eq!(buf.install(2), 0);
        assert_eq!(buf.install(3), 1); // evicts 1
        assert!(buf.contains(3));
        assert!(!buf.contains(1));
        // Re-installing a resident address is a no-op.
        assert_eq!(buf.install(3), 0);
        // Installed data hits on demand.
        assert_eq!(buf.epoch([2, 3]).hits, 2);
    }

    #[test]
    fn install_into_zero_capacity_is_noop() {
        let mut buf = DoubleBuffer::new(0);
        assert_eq!(buf.install(7), 0);
        assert!(!buf.contains(7));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut buf = DoubleBuffer::unbounded();
        let stats = buf.epoch(0..10_000);
        assert_eq!(stats.evictions, 0);
        assert_eq!(buf.resident_count(), 10_000);
    }
}
