//! Double-buffered SRAM working-set model.
//!
//! SCALE-Sim provisions a dedicated, double-buffered SRAM per operand
//! (Section II-C, Fig. 2). At this model's granularity a buffer is a set of
//! resident element addresses with FIFO replacement: demand that hits costs
//! nothing at the interface, demand that misses must be prefetched from DRAM
//! before the fold that uses it starts. FIFO (rather than LRU) matches the
//! streaming prefetch behaviour of the original tool — data is loaded in
//! use-order and the oldest loads are the first overwritten.

use std::collections::VecDeque;

use crate::fast_hash::AddrSet;
use crate::runs::{AddrRun, AddrRuns, IntervalSet};

/// Per-epoch classification of a demand stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Demanded addresses already resident.
    pub hits: u64,
    /// Demanded addresses that had to be fetched.
    pub misses: u64,
    /// Addresses evicted to make room.
    pub evictions: u64,
}

/// A double-buffered operand SRAM: a FIFO working set of element addresses.
///
/// ```
/// use scalesim_memory::DoubleBuffer;
///
/// let mut buf = DoubleBuffer::new(2);
/// let first = buf.epoch([1, 2].iter().copied());
/// assert_eq!(first.misses, 2);
/// let second = buf.epoch([2, 3].iter().copied()); // 2 hits, 3 misses, 1 evicted
/// assert_eq!((second.hits, second.misses, second.evictions), (1, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DoubleBuffer {
    capacity: usize,
    resident: AddrSet,
    order: VecDeque<u64>,
}

impl DoubleBuffer {
    /// Creates a buffer holding at most `capacity_elems` elements.
    ///
    /// A capacity of zero models "no buffer": every demand misses.
    pub fn new(capacity_elems: usize) -> Self {
        DoubleBuffer {
            capacity: capacity_elems,
            resident: AddrSet::default(),
            order: VecDeque::new(),
        }
    }

    /// An effectively infinite buffer (everything fetched exactly once).
    pub fn unbounded() -> Self {
        DoubleBuffer::new(usize::MAX)
    }

    /// The configured capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains(&addr)
    }

    /// Runs one epoch (one fold's worth) of demand through the buffer.
    ///
    /// Demands should be the epoch's unique addresses in first-use order;
    /// intra-epoch reuse is served by the SRAM itself and is not interface
    /// traffic. Misses are inserted in demand order, evicting the oldest
    /// resident addresses when the buffer is full (so an epoch whose working
    /// set exceeds the capacity thrashes, as the real hardware would).
    pub fn epoch(&mut self, demand: impl IntoIterator<Item = u64>) -> EpochStats {
        self.run_epoch(demand, None)
    }

    /// Like [`DoubleBuffer::epoch`], but also returns the missed addresses
    /// in fetch order — the input to DRAM trace reconstruction
    /// ([`crate::DramTraceWriter`]).
    pub fn epoch_with_misses(
        &mut self,
        demand: impl IntoIterator<Item = u64>,
    ) -> (EpochStats, Vec<u64>) {
        let mut misses = Vec::new();
        let stats = self.run_epoch(demand, Some(&mut misses));
        (stats, misses)
    }

    fn run_epoch(
        &mut self,
        demand: impl IntoIterator<Item = u64>,
        mut misses: Option<&mut Vec<u64>>,
    ) -> EpochStats {
        let mut stats = EpochStats::default();
        for addr in demand {
            if self.resident.contains(&addr) {
                stats.hits += 1;
                continue;
            }
            stats.misses += 1;
            if let Some(misses) = misses.as_deref_mut() {
                misses.push(addr);
            }
            if self.capacity == 0 {
                continue;
            }
            while self.resident.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.resident.remove(&old);
                    stats.evictions += 1;
                } else {
                    break;
                }
            }
            self.resident.insert(addr);
            self.order.push_back(addr);
        }
        stats
    }

    /// Installs `addr` into the working set *without* counting a miss —
    /// models write-allocation (an output produced on-chip is resident
    /// without ever being fetched). Evicts FIFO-oldest entries as needed;
    /// returns the number of evictions.
    pub fn install(&mut self, addr: u64) -> u64 {
        if self.capacity == 0 || self.resident.contains(&addr) {
            return 0;
        }
        let mut evictions = 0;
        while self.resident.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.resident.remove(&old);
                evictions += 1;
            } else {
                break;
            }
        }
        self.resident.insert(addr);
        self.order.push_back(addr);
        evictions
    }

    /// Drops all resident data (e.g. between layers).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
    }
}

/// The run-granular equivalent of [`DoubleBuffer`]: a FIFO working set of
/// address *intervals*.
///
/// Produces exactly the same hit/miss/eviction counts and the same final
/// resident set as feeding the uncompressed element stream through a
/// [`DoubleBuffer`] — FIFO hits cause no state change, so a maximal
/// resident span batches into one hit count, and a maximal missing span
/// batches into one insert + one tail eviction sweep. Work is O(runs ×
/// log spans) instead of O(elements).
///
/// ```
/// use scalesim_memory::{AddrRuns, RunBuffer};
///
/// let mut buf = RunBuffer::new(2);
/// let first = buf.epoch(&[1u64, 2].into_iter().collect::<AddrRuns>());
/// assert_eq!(first.misses, 2);
/// let second = buf.epoch(&[2u64, 3].into_iter().collect::<AddrRuns>());
/// assert_eq!((second.hits, second.misses, second.evictions), (1, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct RunBuffer {
    capacity: u64,
    resident: IntervalSet,
    /// FIFO of inserted segments. Invariant: segments are disjoint and
    /// their union is exactly the resident set (evictions consume from the
    /// front as residency shrinks).
    queue: VecDeque<AddrRun>,
}

impl RunBuffer {
    /// Creates a buffer holding at most `capacity_elems` elements.
    ///
    /// A capacity of zero models "no buffer": every demand misses.
    pub fn new(capacity_elems: u64) -> Self {
        RunBuffer {
            capacity: capacity_elems,
            resident: IntervalSet::new(),
            queue: VecDeque::new(),
        }
    }

    /// An effectively infinite buffer (everything fetched exactly once).
    pub fn unbounded() -> Self {
        RunBuffer::new(u64::MAX)
    }

    /// The configured capacity in elements.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Elements currently resident.
    pub fn resident_count(&self) -> u64 {
        self.resident.len()
    }

    /// Whether `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains(addr)
    }

    /// Runs one epoch (one fold's worth) of run-compressed demand through
    /// the buffer. Semantics match [`DoubleBuffer::epoch`] on the
    /// equivalent element stream.
    pub fn epoch(&mut self, demand: &AddrRuns) -> EpochStats {
        let mut stats = EpochStats::default();
        for run in demand.iter_runs() {
            self.epoch_run(run, &mut stats, None);
        }
        stats
    }

    /// Like [`RunBuffer::epoch`], but appends the missed address runs (in
    /// fetch order) to `misses`.
    pub fn epoch_with_misses(&mut self, demand: &AddrRuns, misses: &mut AddrRuns) -> EpochStats {
        let mut stats = EpochStats::default();
        for run in demand.iter_runs() {
            self.epoch_run(run, &mut stats, Some(misses));
        }
        stats
    }

    fn epoch_run(
        &mut self,
        run: AddrRun,
        stats: &mut EpochStats,
        mut misses: Option<&mut AddrRuns>,
    ) {
        let end = run.end();
        // Fast path: the whole run fits without eviction, so the alternating
        // hit/miss spans never change under insertion — classify and insert
        // in one fused probe instead of re-querying per span.
        if self.capacity > 0 && self.resident.len().saturating_add(run.len) <= self.capacity {
            let mut missed = 0;
            let queue = &mut self.queue;
            self.resident.insert_with_gaps(run.start, end, |s, e| {
                missed += e - s;
                if let Some(misses) = misses.as_deref_mut() {
                    misses.push(s, e - s);
                }
                queue.push_back(AddrRun {
                    start: s,
                    len: e - s,
                });
            });
            stats.misses += missed;
            stats.hits += run.len - missed;
            return;
        }
        let mut pos = run.start;
        // Walk the run in alternating resident/missing spans. Residency is
        // re-queried per span because an insert can evict addresses later
        // in this same run.
        while pos < end {
            if let Some((_, span_end)) = self.resident.span_at(pos) {
                let hit_end = span_end.min(end);
                stats.hits += hit_end - pos;
                pos = hit_end;
            } else {
                let miss_end = self
                    .resident
                    .first_start_at_or_after(pos)
                    .map_or(end, |s| s.min(end));
                stats.misses += miss_end - pos;
                if let Some(misses) = misses.as_deref_mut() {
                    misses.push(pos, miss_end - pos);
                }
                if self.capacity > 0 {
                    stats.evictions += self.insert_segment(pos, miss_end - pos);
                }
                pos = miss_end;
            }
        }
    }

    /// Installs the runs into the working set *without* miss accounting —
    /// the run-granular [`DoubleBuffer::install`] (write-allocation).
    /// Returns the number of evictions.
    pub fn install(&mut self, runs: &AddrRuns) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut evictions = 0;
        for run in runs.iter_runs() {
            let end = run.end();
            // Same no-eviction fast path as `epoch_run`.
            if self.resident.len().saturating_add(run.len) <= self.capacity {
                let queue = &mut self.queue;
                self.resident.insert_with_gaps(run.start, end, |s, e| {
                    queue.push_back(AddrRun {
                        start: s,
                        len: e - s,
                    });
                });
                continue;
            }
            let mut pos = run.start;
            while pos < end {
                if let Some((_, span_end)) = self.resident.span_at(pos) {
                    pos = span_end.min(end);
                } else {
                    let miss_end = self
                        .resident
                        .first_start_at_or_after(pos)
                        .map_or(end, |s| s.min(end));
                    evictions += self.insert_segment(pos, miss_end - pos);
                    pos = miss_end;
                }
            }
        }
        evictions
    }

    /// Inserts a segment known to be non-resident, then evicts FIFO-oldest
    /// data down to capacity. Returns evictions. Batch semantics equal the
    /// element loop: inserting L elements into a buffer holding R evicts
    /// `max(0, R + L - capacity)` oldest elements either way.
    fn insert_segment(&mut self, start: u64, len: u64) -> u64 {
        self.resident.insert(start, start + len);
        self.queue.push_back(AddrRun { start, len });
        let mut evicted = 0;
        while self.resident.len() > self.capacity {
            let excess = self.resident.len() - self.capacity;
            let front = self.queue.front_mut().expect("queue tracks residency");
            let take = front.len.min(excess);
            self.resident
                .remove_covered(front.start, front.start + take);
            evicted += take;
            if take == front.len {
                self.queue.pop_front();
            } else {
                front.start += take;
                front.len -= take;
            }
        }
        evicted
    }

    /// Drops all resident data (e.g. between layers).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.queue.clear();
    }

    /// Re-purposes this buffer for a new simulation: empties the working
    /// set (keeping allocations) and adopts a new capacity. The pooling
    /// hook used by [`crate::BufferPool`].
    pub fn reset(&mut self, capacity_elems: u64) {
        self.capacity = capacity_elems;
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_buffer_misses_everything_once() {
        let mut buf = DoubleBuffer::new(100);
        let stats = buf.epoch(0..10);
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(buf.resident_count(), 10);
    }

    #[test]
    fn warm_buffer_hits_repeats() {
        let mut buf = DoubleBuffer::new(100);
        buf.epoch(0..10);
        let stats = buf.epoch(0..10);
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut buf = DoubleBuffer::new(3);
        buf.epoch([1, 2, 3]);
        let stats = buf.epoch([4]); // evicts 1
        assert_eq!(stats.evictions, 1);
        assert!(!buf.contains(1));
        assert!(buf.contains(2));
        assert!(buf.contains(4));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut buf = DoubleBuffer::new(0);
        assert_eq!(buf.epoch([1, 1, 1]).misses, 3);
        assert_eq!(buf.resident_count(), 0);
    }

    #[test]
    fn epoch_larger_than_capacity_thrashes() {
        let mut buf = DoubleBuffer::new(4);
        // 8 unique addresses through a 4-entry buffer: all miss.
        let first = buf.epoch(0..8);
        assert_eq!(first.misses, 8);
        // Repeat: the first half was evicted, so it misses again.
        let second = buf.epoch(0..8);
        assert_eq!(second.misses, 8);
    }

    #[test]
    fn intra_epoch_repeat_hits_after_insert() {
        let mut buf = DoubleBuffer::new(10);
        let stats = buf.epoch([5, 5, 6, 5]);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn clear_empties_the_working_set() {
        let mut buf = DoubleBuffer::new(10);
        buf.epoch(0..5);
        buf.clear();
        assert_eq!(buf.resident_count(), 0);
        assert_eq!(buf.epoch(0..5).misses, 5);
    }

    #[test]
    fn install_write_allocates_without_miss_accounting() {
        let mut buf = DoubleBuffer::new(2);
        assert_eq!(buf.install(1), 0);
        assert_eq!(buf.install(2), 0);
        assert_eq!(buf.install(3), 1); // evicts 1
        assert!(buf.contains(3));
        assert!(!buf.contains(1));
        // Re-installing a resident address is a no-op.
        assert_eq!(buf.install(3), 0);
        // Installed data hits on demand.
        assert_eq!(buf.epoch([2, 3]).hits, 2);
    }

    #[test]
    fn install_into_zero_capacity_is_noop() {
        let mut buf = DoubleBuffer::new(0);
        assert_eq!(buf.install(7), 0);
        assert!(!buf.contains(7));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut buf = DoubleBuffer::unbounded();
        let stats = buf.epoch(0..10_000);
        assert_eq!(stats.evictions, 0);
        assert_eq!(buf.resident_count(), 10_000);
    }

    fn runs_of(elems: &[u64]) -> AddrRuns {
        elems.iter().copied().collect()
    }

    #[test]
    fn run_buffer_matches_double_buffer_basics() {
        let mut db = DoubleBuffer::new(3);
        let mut rb = RunBuffer::new(3);
        for epoch in [&[1u64, 2, 3][..], &[4], &[2, 3, 4], &[10, 11, 12, 13]] {
            let ds = db.epoch(epoch.iter().copied());
            let rs = rb.epoch(&runs_of(epoch));
            assert_eq!(ds, rs, "epoch {epoch:?}");
            assert_eq!(db.resident_count() as u64, rb.resident_count());
            for addr in 0..20 {
                assert_eq!(db.contains(addr), rb.contains(addr), "addr {addr}");
            }
        }
    }

    #[test]
    fn run_buffer_zero_capacity_always_misses() {
        let mut buf = RunBuffer::new(0);
        let stats = buf.epoch(&runs_of(&[1, 2, 3]));
        assert_eq!(stats.misses, 3);
        assert_eq!(buf.resident_count(), 0);
        assert_eq!(buf.install(&runs_of(&[7])), 0);
        assert!(!buf.contains(7));
    }

    #[test]
    fn run_buffer_self_evicts_oversized_segment() {
        // A single 8-element run through a 4-entry buffer keeps its tail,
        // exactly as the element-wise FIFO does.
        let mut db = DoubleBuffer::new(4);
        let mut rb = RunBuffer::new(4);
        let elems: Vec<u64> = (0..8).collect();
        assert_eq!(db.epoch(elems.iter().copied()), rb.epoch(&runs_of(&elems)));
        for addr in 0..8 {
            assert_eq!(db.contains(addr), rb.contains(addr));
        }
        assert!(rb.contains(7) && !rb.contains(3));
    }

    #[test]
    fn run_buffer_install_matches_element_install() {
        let mut db = DoubleBuffer::new(2);
        let mut rb = RunBuffer::new(2);
        let installs = [1u64, 2, 3, 3];
        let mut db_ev = 0;
        for &addr in &installs {
            db_ev += db.install(addr);
        }
        let mut rb_ev = 0;
        for &addr in &installs {
            rb_ev += rb.install(&runs_of(&[addr]));
        }
        assert_eq!(db_ev, rb_ev);
        for addr in 0..5 {
            assert_eq!(db.contains(addr), rb.contains(addr));
        }
        assert_eq!(rb.epoch(&runs_of(&[2, 3])).hits, 2);
    }

    #[test]
    fn run_buffer_epoch_with_misses_orders_like_element_path() {
        let mut db = DoubleBuffer::new(4);
        let mut rb = RunBuffer::new(4);
        db.epoch([10u64, 11].iter().copied());
        rb.epoch(&runs_of(&[10, 11]));
        // 10, 11 hit; 12, 13 then 5 miss (two separate runs).
        let (ds, dm) = db.epoch_with_misses([10u64, 11, 12, 13, 5].iter().copied());
        let mut rm = AddrRuns::new();
        let rs = rb.epoch_with_misses(&runs_of(&[10, 11, 12, 13, 5]), &mut rm);
        assert_eq!(ds, rs);
        assert_eq!(dm, rm.iter_elements().collect::<Vec<u64>>());
    }

    #[test]
    fn run_buffer_thrash_matches_double_buffer() {
        // Alternating working sets through a small buffer: a stress of the
        // eviction bookkeeping across many epochs.
        let mut db = DoubleBuffer::new(16);
        let mut rb = RunBuffer::new(16);
        for round in 0..20u64 {
            let base = (round % 3) * 10;
            let elems: Vec<u64> = (base..base + 12).chain(100..104).collect();
            let ds = db.epoch(elems.iter().copied());
            let rs = rb.epoch(&runs_of(&elems));
            assert_eq!(ds, rs, "round {round}");
            assert_eq!(db.resident_count() as u64, rb.resident_count());
            for addr in 0..110 {
                assert_eq!(db.contains(addr), rb.contains(addr));
            }
        }
    }

    #[test]
    fn run_buffer_clear_empties_the_working_set() {
        let mut buf = RunBuffer::new(10);
        buf.epoch(&runs_of(&[0, 1, 2]));
        buf.clear();
        assert_eq!(buf.resident_count(), 0);
        assert_eq!(buf.epoch(&runs_of(&[0, 1, 2])).misses, 3);
    }
}
