//! Operand address maps.
//!
//! The trace engines work in GEMM coordinates: operand *A* is the `M × K`
//! matrix (the rearranged IFMAP for a convolution), operand *B* the `K × N`
//! matrix (the unrolled filters), and *O* the `M × N` output. An
//! [`AddressMap`] translates these coordinates into the flat element
//! addresses that appear in the SRAM/DRAM traces (the simulator's address
//! space is in *elements*; a word-size multiplier is applied at the DRAM
//! reporting layer).
//!
//! Two concrete maps exist:
//!
//! * [`GemmAddressMap`] — row-major dense matrices; every `A` element has a
//!   unique address (no reuse between rows).
//! * [`ConvAddressMap`] — convolution addressing where adjacent convolution
//!   windows *share* IFMAP addresses when the stride is smaller than the
//!   filter (the reuse pattern Section II-A of the paper describes). This is
//!   what makes the DRAM model see convolution reuse.

use serde::{Deserialize, Serialize};

use scalesim_topology::ConvLayer;

use crate::runs::AddrRuns;

/// Base offsets for the three operand regions, mirroring the
/// `IfmapOffset` / `FilterOffset` / `OfmapOffset` parameters of Table I.
///
/// The defaults match the original tool's defaults: disjoint 16 M-element
/// regions so traces from different operands never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionOffsets {
    /// Base address for IFMAP / operand-A elements.
    pub ifmap: u64,
    /// Base address for filter / operand-B elements.
    pub filter: u64,
    /// Base address for OFMAP / output elements.
    pub ofmap: u64,
}

impl Default for RegionOffsets {
    fn default() -> Self {
        RegionOffsets {
            ifmap: 0,
            filter: 10_000_000,
            ofmap: 20_000_000,
        }
    }
}

/// Translates GEMM coordinates into flat element addresses.
///
/// Implementations must be pure: the same coordinate always yields the same
/// address, and distinct coordinates of `B` and `O` yield distinct addresses.
/// `A` addresses *may* collide across coordinates — that is exactly how
/// convolution window overlap (data reuse) is expressed.
pub trait AddressMap {
    /// Address of `A[m][k]` — the IFMAP element feeding row `m`'s `k`-th
    /// partial product.
    fn a(&self, m: u64, k: u64) -> u64;

    /// Address of `B[k][n]` — element `k` of filter `n`.
    fn b(&self, k: u64, n: u64) -> u64;

    /// Address of `O[m][n]` — output pixel `m` of filter `n`.
    fn o(&self, m: u64, n: u64) -> u64;

    /// Number of *distinct* addresses behind operand A (total IFMAP
    /// elements). Used for reuse accounting.
    fn a_unique(&self) -> u64;

    /// Number of distinct addresses behind operand B.
    fn b_unique(&self) -> u64;

    /// Number of distinct output addresses.
    fn o_unique(&self) -> u64;

    /// Appends the addresses of `A[m][k0..k0+len]` to `out` as maximal
    /// contiguous runs, in `k` order — the run-compressed equivalent of
    /// calling [`AddressMap::a`] for each `k`.
    ///
    /// The default implementation is element-wise (correct for any map);
    /// the concrete maps override it with closed-form runs: a GEMM row is
    /// one run, a convolution window row is one run per filter row.
    fn a_span(&self, m: u64, k0: u64, len: u64, out: &mut AddrRuns) {
        for k in k0..k0 + len {
            out.push(self.a(m, k), 1);
        }
    }
}

/// Row-major addressing for a dense GEMM (language-model layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmAddressMap {
    m: u64,
    k: u64,
    n: u64,
    offsets: RegionOffsets,
}

impl GemmAddressMap {
    /// Creates a map for an `m × k` by `k × n` product with the given region
    /// offsets.
    pub fn new(m: u64, k: u64, n: u64, offsets: RegionOffsets) -> Self {
        GemmAddressMap { m, k, n, offsets }
    }

    /// Creates a map from a [`scalesim_topology::GemmShape`].
    pub fn from_shape(shape: scalesim_topology::GemmShape, offsets: RegionOffsets) -> Self {
        GemmAddressMap::new(shape.m, shape.k, shape.n, offsets)
    }
}

impl AddressMap for GemmAddressMap {
    fn a(&self, m: u64, k: u64) -> u64 {
        debug_assert!(m < self.m && k < self.k);
        self.offsets.ifmap + m * self.k + k
    }

    fn b(&self, k: u64, n: u64) -> u64 {
        debug_assert!(k < self.k && n < self.n);
        self.offsets.filter + k * self.n + n
    }

    fn o(&self, m: u64, n: u64) -> u64 {
        debug_assert!(m < self.m && n < self.n);
        self.offsets.ofmap + m * self.n + n
    }

    fn a_unique(&self) -> u64 {
        self.m * self.k
    }

    fn b_unique(&self) -> u64 {
        self.k * self.n
    }

    fn o_unique(&self) -> u64 {
        self.m * self.n
    }

    fn a_span(&self, m: u64, k0: u64, len: u64, out: &mut AddrRuns) {
        debug_assert!(m < self.m && k0 + len <= self.k);
        out.push(self.offsets.ifmap + m * self.k + k0, len);
    }
}

/// Convolution addressing with overlapping-window IFMAP reuse.
///
/// IFMAP elements are stored channel-minor (`(h · W + w) · C + c`), filters
/// filter-major, outputs pixel-major — matching the original tool's layouts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvAddressMap {
    ifmap_w: u64,
    filter_w: u64,
    channels: u64,
    stride_h: u64,
    stride_w: u64,
    ofmap_w: u64,
    window: u64,
    num_filters: u64,
    ifmap_elems: u64,
    ofmap_pixels: u64,
    offsets: RegionOffsets,
}

impl ConvAddressMap {
    /// Creates a map for `layer` with the given region offsets.
    pub fn new(layer: &ConvLayer, offsets: RegionOffsets) -> Self {
        ConvAddressMap {
            ifmap_w: layer.ifmap_w(),
            filter_w: layer.filter_w(),
            channels: layer.channels(),
            stride_h: layer.stride_h(),
            stride_w: layer.stride_w(),
            ofmap_w: layer.ofmap_w(),
            window: layer.window_size(),
            num_filters: layer.num_filters(),
            ifmap_elems: layer.ifmap_elems(),
            ofmap_pixels: layer.ofmap_pixels(),
            offsets,
        }
    }
}

impl AddressMap for ConvAddressMap {
    fn a(&self, m: u64, k: u64) -> u64 {
        // Output pixel m at (oh, ow); window element k at (kh, kw, c).
        let oh = m / self.ofmap_w;
        let ow = m % self.ofmap_w;
        let row_elems = self.filter_w * self.channels;
        let kh = k / row_elems;
        let rem = k % row_elems;
        let kw = rem / self.channels;
        let c = rem % self.channels;
        let ih = oh * self.stride_h + kh;
        let iw = ow * self.stride_w + kw;
        self.offsets.ifmap + (ih * self.ifmap_w + iw) * self.channels + c
    }

    fn b(&self, k: u64, n: u64) -> u64 {
        debug_assert!(k < self.window && n < self.num_filters);
        self.offsets.filter + n * self.window + k
    }

    fn o(&self, m: u64, n: u64) -> u64 {
        debug_assert!(m < self.ofmap_pixels && n < self.num_filters);
        self.offsets.ofmap + m * self.num_filters + n
    }

    fn a_unique(&self) -> u64 {
        self.ifmap_elems
    }

    fn b_unique(&self) -> u64 {
        self.window * self.num_filters
    }

    fn o_unique(&self) -> u64 {
        self.ofmap_pixels * self.num_filters
    }

    fn a_span(&self, m: u64, k0: u64, len: u64, out: &mut AddrRuns) {
        // Within one filter row (fixed kh) the address is linear in k:
        // a = ifmap + (ih·W + ow·s)·C + (k − kh·row_elems), so a span only
        // breaks at filter-row boundaries.
        let oh = m / self.ofmap_w;
        let ow = m % self.ofmap_w;
        let row_elems = self.filter_w * self.channels;
        let end = k0 + len;
        let mut k = k0;
        while k < end {
            let kh = k / row_elems;
            let row_end = (kh + 1) * row_elems;
            let take = row_end.min(end) - k;
            let ih = oh * self.stride_h + kh;
            let row_base = (ih * self.ifmap_w + ow * self.stride_w) * self.channels;
            out.push(self.offsets.ifmap + row_base + (k - kh * row_elems), take);
            k += take;
        }
    }
}

/// A window into another map: shifts GEMM coordinates by an output-space
/// offset `(m_off, n_off)`.
///
/// Scale-out partitions each own a tile of the output space but address the
/// *same* underlying tensors; wrapping the layer's map in a `SubGemmMap`
/// gives a partition its view without duplicating address logic. The
/// contraction dimension is never partitioned (each partition computes
/// complete outputs), so `k` passes through unchanged.
///
/// The `*_unique` methods report the underlying map's totals (an upper
/// bound for the partition) — they describe the tensors, not the tile.
#[derive(Debug, Clone, Copy)]
pub struct SubGemmMap<'a, M: ?Sized> {
    inner: &'a M,
    m_off: u64,
    n_off: u64,
}

impl<'a, M: AddressMap + ?Sized> SubGemmMap<'a, M> {
    /// Wraps `inner`, offsetting output rows by `m_off` and output columns
    /// by `n_off`.
    pub fn new(inner: &'a M, m_off: u64, n_off: u64) -> Self {
        SubGemmMap {
            inner,
            m_off,
            n_off,
        }
    }
}

impl<M: AddressMap + ?Sized> AddressMap for SubGemmMap<'_, M> {
    fn a(&self, m: u64, k: u64) -> u64 {
        self.inner.a(m + self.m_off, k)
    }

    fn b(&self, k: u64, n: u64) -> u64 {
        self.inner.b(k, n + self.n_off)
    }

    fn o(&self, m: u64, n: u64) -> u64 {
        self.inner.o(m + self.m_off, n + self.n_off)
    }

    fn a_unique(&self) -> u64 {
        self.inner.a_unique()
    }

    fn b_unique(&self) -> u64 {
        self.inner.b_unique()
    }

    fn o_unique(&self) -> u64 {
        self.inner.o_unique()
    }

    fn a_span(&self, m: u64, k0: u64, len: u64, out: &mut AddrRuns) {
        self.inner.a_span(m + self.m_off, k0, len, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::ConvLayer;
    use std::collections::HashSet;

    #[test]
    fn sub_gemm_map_offsets_output_space() {
        let base = GemmAddressMap::new(8, 4, 8, RegionOffsets::default());
        let sub = SubGemmMap::new(&base, 4, 2);
        assert_eq!(sub.a(0, 1), base.a(4, 1));
        assert_eq!(sub.b(3, 0), base.b(3, 2));
        assert_eq!(sub.o(1, 1), base.o(5, 3));
        assert_eq!(sub.a_unique(), base.a_unique());
    }

    #[test]
    fn adjacent_partitions_tile_the_output_disjointly() {
        let base = GemmAddressMap::new(8, 4, 8, RegionOffsets::default());
        let left = SubGemmMap::new(&base, 0, 0);
        let right = SubGemmMap::new(&base, 0, 4);
        let mut outputs = HashSet::new();
        for m in 0..8 {
            for n in 0..4 {
                outputs.insert(left.o(m, n));
                outputs.insert(right.o(m, n));
            }
        }
        assert_eq!(outputs.len(), 64); // full output, no overlap
    }

    #[test]
    fn gemm_addresses_are_dense_and_disjoint() {
        let map = GemmAddressMap::new(3, 4, 5, RegionOffsets::default());
        let mut a_addrs = HashSet::new();
        for m in 0..3 {
            for k in 0..4 {
                a_addrs.insert(map.a(m, k));
            }
        }
        assert_eq!(a_addrs.len() as u64, map.a_unique());

        let mut b_addrs = HashSet::new();
        for k in 0..4 {
            for n in 0..5 {
                b_addrs.insert(map.b(k, n));
            }
        }
        assert_eq!(b_addrs.len() as u64, map.b_unique());
        assert!(a_addrs.is_disjoint(&b_addrs));
    }

    fn conv_map(stride: u64) -> (ConvLayer, ConvAddressMap) {
        let layer = ConvLayer::new("t", 8, 8, 3, 3, 2, 4, stride).unwrap();
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        (layer, map)
    }

    #[test]
    fn conv_window_overlap_reuses_addresses() {
        let (layer, map) = conv_map(1);
        // Enumerate every (output pixel, window element) IFMAP address.
        let mut distinct = HashSet::new();
        let mut touches = 0u64;
        for m in 0..layer.ofmap_pixels() {
            for k in 0..layer.window_size() {
                distinct.insert(map.a(m, k));
                touches += 1;
            }
        }
        // Stride 1 with a 3x3 filter has heavy overlap: far fewer distinct
        // addresses than coordinate touches, and every touched address is a
        // real ifmap element.
        assert!(distinct.len() as u64 <= layer.ifmap_elems());
        assert!((distinct.len() as u64) < touches / 4);
        assert!(distinct.iter().all(|&addr| addr < layer.ifmap_elems()));
    }

    #[test]
    fn conv_touches_every_interior_element_with_stride_one() {
        let (layer, map) = conv_map(1);
        let mut distinct = HashSet::new();
        for m in 0..layer.ofmap_pixels() {
            for k in 0..layer.window_size() {
                distinct.insert(map.a(m, k));
            }
        }
        // Stride-1 windows cover the full (padded) ifmap exactly.
        assert_eq!(distinct.len() as u64, layer.ifmap_elems());
    }

    #[test]
    fn conv_stride_two_skips_elements() {
        let (layer, map) = conv_map(2);
        let mut distinct = HashSet::new();
        for m in 0..layer.ofmap_pixels() {
            for k in 0..layer.window_size() {
                distinct.insert(map.a(m, k));
            }
        }
        // A 3x3 window at stride 2 still covers most but the geometry is
        // checked: never more than the ifmap, and strictly fewer touches of
        // border columns the stride skips.
        assert!(distinct.len() as u64 <= layer.ifmap_elems());
    }

    #[test]
    fn conv_filter_and_output_addresses_unique() {
        let (layer, map) = conv_map(1);
        let mut b = HashSet::new();
        for k in 0..layer.window_size() {
            for n in 0..layer.num_filters() {
                b.insert(map.b(k, n));
            }
        }
        assert_eq!(b.len() as u64, map.b_unique());
        let mut o = HashSet::new();
        for m in 0..layer.ofmap_pixels() {
            for n in 0..layer.num_filters() {
                o.insert(map.o(m, n));
            }
        }
        assert_eq!(o.len() as u64, map.o_unique());
    }

    #[test]
    fn regions_do_not_alias_with_default_offsets() {
        let (layer, map) = conv_map(1);
        let a_max = map.a(layer.ofmap_pixels() - 1, layer.window_size() - 1);
        assert!(a_max < RegionOffsets::default().filter);
        let b_min = map.b(0, 0);
        let b_max = map.b(layer.window_size() - 1, layer.num_filters() - 1);
        assert!(b_min >= RegionOffsets::default().filter);
        assert!(b_max < RegionOffsets::default().ofmap);
        assert!(map.o(0, 0) >= RegionOffsets::default().ofmap);
    }

    #[test]
    fn a_span_matches_elementwise_enumeration() {
        // GEMM: any (m, k0, len) slice is one run equal to the element walk.
        let gemm = GemmAddressMap::new(6, 9, 4, RegionOffsets::default());
        for m in 0..6 {
            for k0 in 0..9 {
                for len in 0..=(9 - k0) {
                    let mut runs = AddrRuns::new();
                    gemm.a_span(m, k0, len, &mut runs);
                    let expect: Vec<u64> = (k0..k0 + len).map(|k| gemm.a(m, k)).collect();
                    assert_eq!(runs.iter_elements().collect::<Vec<u64>>(), expect);
                }
            }
        }
        // Conv (both strides): spans split at filter-row boundaries but the
        // element sequence is identical.
        for stride in [1, 2] {
            let (layer, map) = conv_map(stride);
            let window = layer.window_size();
            for m in 0..layer.ofmap_pixels() {
                for k0 in [0, 1, window / 2, window - 1] {
                    let len = window - k0;
                    let mut runs = AddrRuns::new();
                    map.a_span(m, k0, len, &mut runs);
                    let expect: Vec<u64> = (k0..k0 + len).map(|k| map.a(m, k)).collect();
                    assert_eq!(runs.iter_elements().collect::<Vec<u64>>(), expect);
                }
            }
        }
        // SubGemmMap delegates with the row offset applied.
        let sub = SubGemmMap::new(&gemm, 2, 1);
        let mut runs = AddrRuns::new();
        sub.a_span(1, 2, 5, &mut runs);
        let expect: Vec<u64> = (2..7).map(|k| gemm.a(3, k)).collect();
        assert_eq!(runs.iter_elements().collect::<Vec<u64>>(), expect);
    }

    #[test]
    fn fc_layer_degenerates_to_gemm_addressing() {
        // An FC layer (1x1 ifmap == filter) has exactly one output pixel and
        // its A row walks the channel dimension linearly.
        let layer = ConvLayer::new("fc", 1, 1, 1, 1, 16, 8, 1).unwrap();
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        for k in 0..16 {
            assert_eq!(map.a(0, k), k);
        }
    }
}
