//! A minimal multiplicative hasher for `u64` address keys.
//!
//! The simulator's hottest loops insert tens of millions of element
//! addresses into hash sets (fold demand dedup, buffer residency). The
//! standard library's default SipHash is DoS-resistant but several times
//! slower than needed for trusted, internally generated integer keys. This
//! is the classic Fibonacci-multiplicative hash (as used by rustc's FxHash
//! family), implemented locally to keep the dependency set minimal.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher specialized for integer keys.
///
/// Not DoS-resistant — use only for internally generated keys (addresses),
/// never attacker-controlled input.
#[derive(Debug, Default, Clone, Copy)]
pub struct AddrHasher {
    state: u64,
}

/// 2^64 / φ, the canonical Fibonacci hashing multiplier.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rarely taken for our key types): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.state = (self.state ^ value).wrapping_mul(GOLDEN);
        // Multiplicative hashing concentrates entropy in the high bits;
        // rotate them down where HashMap's mask looks.
        self.state = self.state.rotate_left(26);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `BuildHasher` for [`AddrHasher`].
pub type AddrBuildHasher = BuildHasherDefault<AddrHasher>;

/// A `HashSet` keyed with the fast address hasher.
pub type AddrSet = HashSet<u64, AddrBuildHasher>;

/// A `HashMap` keyed with the fast address hasher.
pub type AddrMap<V> = HashMap<u64, V, AddrBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basic_operations() {
        let mut set = AddrSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.contains(&42));
        assert!(!set.contains(&43));
    }

    #[test]
    fn distinct_keys_hash_distinctly_in_practice() {
        // Sanity: sequential addresses spread across buckets (no mass
        // collision into identical hashes).
        use std::hash::BuildHasher;
        let build = AddrBuildHasher::default();
        let mut hashes = HashSet::new();
        for addr in 0u64..10_000 {
            hashes.insert(build.hash_one(addr));
        }
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn generic_write_path_works() {
        let mut h = AddrHasher::default();
        h.write(b"hello world");
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn map_alias_compiles_and_works() {
        let mut map: AddrMap<u32> = AddrMap::default();
        map.insert(7, 1);
        assert_eq!(map.get(&7), Some(&1));
    }
}
