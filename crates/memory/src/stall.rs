//! Finite-bandwidth stall model.
//!
//! SCALE-Sim proper reports the bandwidth *requirement* for stall-free
//! operation (Fig. 11); the natural follow-on question — asked by the
//! paper's abstract ("performance improvements … within the available DRAM
//! bandwidth") — is what actually happens when the interface provides
//! *less*. This module answers it with a fold-granular pipeline model:
//!
//! * The interface is a single shared bus of `bandwidth` bytes/cycle,
//!   serving transfers in order.
//! * A fold's operand misses must be on chip before it starts (double
//!   buffering lets the transfer overlap the previous fold's compute, but
//!   never its own).
//! * A fold's output writes occupy the bus from the fold's start (outputs
//!   stream out as produced) and delay later prefetches behind them.
//!
//! The result interpolates between the compute-bound and bandwidth-bound
//! rooflines exactly, per fold.

use serde::{Deserialize, Serialize};

/// Aggregate result of a stall analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallSummary {
    /// The interface bandwidth assumed, in bytes/cycle.
    pub bandwidth: f64,
    /// Stall-free (infinite-bandwidth) runtime in cycles.
    pub compute_cycles: u64,
    /// Runtime including memory stalls, in cycles.
    pub stalled_cycles: u64,
    /// Cycles lost to the interface (`stalled − compute`).
    pub stall_cycles: u64,
    /// Fraction of the stalled runtime during which the bus moved data.
    pub bus_utilization: f64,
}

impl StallSummary {
    /// Slowdown factor versus stall-free execution (≥ 1).
    pub fn slowdown(&self) -> f64 {
        if self.compute_cycles == 0 {
            1.0
        } else {
            self.stalled_cycles as f64 / self.compute_cycles as f64
        }
    }
}

/// Fold-granular pipeline simulation of a finite-bandwidth interface.
///
/// Feed folds in execution order, then call [`StallModel::finish`].
///
/// ```
/// use scalesim_memory::stall::StallModel;
///
/// let mut model = StallModel::new(1.0); // 1 byte/cycle
/// // A 100-cycle fold needing 300 bytes in: badly bandwidth-bound.
/// model.fold(100, 300, 0);
/// let summary = model.finish();
/// assert!(summary.stalled_cycles >= 300);
/// assert!(summary.slowdown() > 2.9);
/// ```
#[derive(Debug, Clone)]
pub struct StallModel {
    bandwidth: f64,
    /// Time at which the bus finishes its currently queued transfers.
    bus_free: f64,
    /// Time at which the previous fold's compute completes.
    compute_end: f64,
    /// Total bus-busy time.
    bus_busy: f64,
    compute_cycles: u64,
}

impl StallModel {
    /// Creates a model for an interface moving `bandwidth` bytes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not finite and positive.
    pub fn new(bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive, got {bandwidth}"
        );
        StallModel {
            bandwidth,
            bus_free: 0.0,
            compute_end: 0.0,
            bus_busy: 0.0,
            compute_cycles: 0,
        }
    }

    /// Processes one fold: `duration` stall-free compute cycles,
    /// `read_bytes` of operand misses that must land before it starts, and
    /// `write_bytes` streamed out while it runs.
    pub fn fold(&mut self, duration: u64, read_bytes: u64, write_bytes: u64) {
        let read_time = read_bytes as f64 / self.bandwidth;
        let write_time = write_bytes as f64 / self.bandwidth;
        self.bus_busy += read_time + write_time;

        // Reads queue behind whatever the bus is doing.
        let read_done = self.bus_free + read_time;
        // Compute waits for the previous fold and for its own data.
        let start = self.compute_end.max(read_done);
        self.compute_end = start + duration as f64;
        // Writes stream out from the fold's start; they hold the bus after
        // the reads and cannot begin before the data exists.
        self.bus_free = read_done.max(start) + write_time;
        self.compute_cycles += duration;
    }

    /// Finalizes the analysis.
    pub fn finish(self) -> StallSummary {
        // The run ends when both the array and the bus are done (the last
        // outputs must drain). The epsilon guards integer-valued ends
        // against float round-up (e.g. 200.0000001 from a near-infinite
        // bandwidth divide).
        let end = self.compute_end.max(self.bus_free);
        let stalled_cycles = (end - 1e-6).ceil().max(0.0) as u64;
        StallSummary {
            bandwidth: self.bandwidth,
            compute_cycles: self.compute_cycles,
            stalled_cycles,
            stall_cycles: stalled_cycles.saturating_sub(self.compute_cycles),
            bus_utilization: if end > 0.0 { self.bus_busy / end } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ample_bandwidth_means_no_stalls_after_cold_start() {
        let mut m = StallModel::new(1e9);
        m.fold(100, 50, 10);
        m.fold(100, 50, 10);
        let s = m.finish();
        // Transfers are effectively instant: runtime == compute.
        assert_eq!(s.stalled_cycles, 200);
        assert_eq!(s.stall_cycles, 0);
        assert_eq!(s.slowdown(), 1.0);
    }

    #[test]
    fn bandwidth_bound_run_tracks_traffic() {
        let mut m = StallModel::new(1.0);
        for _ in 0..4 {
            m.fold(10, 100, 0); // each fold needs 100 cycles of transfers
        }
        let s = m.finish();
        // Bus is the bottleneck: ~400 cycles of transfers dominate 40 of
        // compute.
        assert!(s.stalled_cycles >= 400);
        assert!(s.stalled_cycles < 430);
        assert!(s.bus_utilization > 0.9);
    }

    #[test]
    fn double_buffering_overlaps_prefetch_with_compute() {
        let mut m = StallModel::new(10.0);
        // Each fold: 100 compute cycles, 500 bytes -> 50 cycles of bus.
        // After the cold start the transfers hide under compute.
        m.fold(100, 500, 0);
        m.fold(100, 500, 0);
        m.fold(100, 500, 0);
        let s = m.finish();
        assert_eq!(s.stalled_cycles, 350); // 50 cold start + 3 * 100
        assert_eq!(s.stall_cycles, 50);
    }

    #[test]
    fn writes_delay_subsequent_prefetches() {
        let mut m_no_writes = StallModel::new(1.0);
        m_no_writes.fold(10, 10, 0);
        m_no_writes.fold(10, 10, 0);
        let base = m_no_writes.finish().stalled_cycles;

        let mut m_writes = StallModel::new(1.0);
        m_writes.fold(10, 10, 50);
        m_writes.fold(10, 10, 0);
        let with_writes = m_writes.finish().stalled_cycles;
        assert!(with_writes > base);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = StallModel::new(0.0);
    }

    #[test]
    fn slowdown_of_empty_run_is_one() {
        let s = StallModel::new(1.0).finish();
        assert_eq!(s.slowdown(), 1.0);
        assert_eq!(s.bus_utilization, 0.0);
    }
}
