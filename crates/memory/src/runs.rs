//! Run-length-compressed address streams.
//!
//! The conv/GEMM address maps emit overwhelmingly *contiguous* addresses:
//! a GEMM row `A[m][k0..k0+len]` is one run, a conv window row is one run
//! per filter row. Materializing every element as a `Vec<u64>` (the
//! original [`fold_demands`](../../scalesim_systolic/fn.fold_demands.html)
//! representation) makes every downstream model O(elements); representing
//! the same stream as ordered `(start, len)` intervals makes them O(runs).
//!
//! Two types live here:
//!
//! * [`AddrRuns`] — an *ordered* sequence of ascending contiguous runs.
//!   Order is semantic: the SRAM models use FIFO replacement, so the
//!   element sequence (first-use order) must be preserved exactly. The
//!   only compression applied is coalescing a pushed run with the previous
//!   one when they are exactly adjacent — which never changes the
//!   concatenated element sequence.
//! * [`IntervalSet`] — a disjoint, coalesced set of address intervals,
//!   used for run-granular residency tracking ([`crate::RunBuffer`]) and
//!   first-use deduplication in the demand generators.

use std::collections::BTreeMap;

/// One maximal contiguous address run: `start, start+1, …, start+len-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRun {
    /// First address of the run.
    pub start: u64,
    /// Number of consecutive addresses.
    pub len: u64,
}

impl AddrRun {
    /// One past the last address of the run.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// An ordered sequence of address runs — the run-length-compressed form of
/// a demand stream.
///
/// Equivalent to the `Vec<u64>` it compresses: iterating
/// [`AddrRuns::iter_elements`] yields exactly the original element
/// sequence. Duplicate or descending addresses are representable (as
/// separate runs); only exactly-adjacent ascending pushes coalesce.
///
/// ```
/// use scalesim_memory::AddrRuns;
///
/// let runs: AddrRuns = [5u64, 6, 7, 20, 21, 7].into_iter().collect();
/// assert_eq!(runs.run_count(), 3); // [5,3] [20,2] [7,1]
/// assert_eq!(runs.element_count(), 6);
/// let back: Vec<u64> = runs.iter_elements().collect();
/// assert_eq!(back, vec![5, 6, 7, 20, 21, 7]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrRuns {
    runs: Vec<AddrRun>,
    elements: u64,
}

impl AddrRuns {
    /// An empty stream.
    pub fn new() -> AddrRuns {
        AddrRuns::default()
    }

    /// An empty stream with room for `runs` runs.
    pub fn with_capacity(runs: usize) -> AddrRuns {
        AddrRuns {
            runs: Vec::with_capacity(runs),
            elements: 0,
        }
    }

    /// Appends the run `[start, start+len)`, coalescing with the previous
    /// run when exactly adjacent. A zero-length push is a no-op.
    pub fn push(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.elements += len;
        if let Some(last) = self.runs.last_mut() {
            if last.end() == start {
                last.len += len;
                return;
            }
        }
        self.runs.push(AddrRun { start, len });
    }

    /// Appends every run of `other`, preserving order.
    pub fn extend_runs(&mut self, other: &AddrRuns) {
        for run in other.runs() {
            self.push(run.start, run.len);
        }
    }

    /// The runs in stream order.
    pub fn runs(&self) -> &[AddrRun] {
        &self.runs
    }

    /// Total element count (sum of run lengths).
    pub fn element_count(&self) -> u64 {
        self.elements
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Empties the stream, keeping allocations.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.elements = 0;
    }

    /// The uncompressed element sequence.
    pub fn iter_elements(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.start..r.end())
    }
}

impl FromIterator<u64> for AddrRuns {
    /// Order-preserving compression of an element stream: only consecutive
    /// ascending-adjacent elements coalesce, so the element sequence round
    /// trips exactly.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> AddrRuns {
        let mut runs = AddrRuns::new();
        for addr in iter {
            runs.push(addr, 1);
        }
        runs
    }
}

/// A disjoint, coalesced set of half-open address intervals `[start, end)`.
///
/// Supports the queries the run-granular models need: membership span
/// lookup, next-covered-start, union insert, covered-range removal, and
/// gap enumeration — each O(log n) in the number of disjoint spans (plus
/// output size).
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// start -> end, disjoint and non-adjacent (always coalesced).
    spans: BTreeMap<u64, u64>,
    len: u64,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Total number of covered addresses.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` is covered.
    pub fn contains(&self, addr: u64) -> bool {
        self.span_at(addr).is_some()
    }

    /// The `(start, end)` of the span covering `pos`, if any.
    pub fn span_at(&self, pos: u64) -> Option<(u64, u64)> {
        let (&start, &end) = self.spans.range(..=pos).next_back()?;
        (end > pos).then_some((start, end))
    }

    /// The start of the first span at or after `pos`, if any.
    pub fn first_start_at_or_after(&self, pos: u64) -> Option<u64> {
        self.spans.range(pos..).next().map(|(&s, _)| s)
    }

    /// Number of covered addresses `>= pos`.
    pub fn len_at_or_above(&self, pos: u64) -> u64 {
        let mut total = 0;
        if let Some((_, end)) = self.span_at(pos) {
            total += end - pos;
        }
        for (&s, &e) in self.spans.range(pos..) {
            if s >= pos {
                total += e - s;
            }
        }
        total
    }

    /// Unions `[start, end)` into the set, merging overlapping or adjacent
    /// spans.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        if let Some((&ps, &pe)) = self.spans.range(..=start).next_back() {
            if pe >= start {
                if pe >= end {
                    return; // already fully covered
                }
                new_start = ps;
                new_end = new_end.max(pe);
                self.len -= pe - ps;
                self.spans.remove(&ps);
            }
        }
        // Absorb every span starting within the (grown) range, including
        // one starting exactly at new_end (adjacent).
        while let Some((&s, &e)) = self.spans.range(new_start..=new_end).next() {
            self.len -= e - s;
            new_end = new_end.max(e);
            self.spans.remove(&s);
        }
        self.spans.insert(new_start, new_end);
        self.len += new_end - new_start;
    }

    /// Removes `[start, end)`, which must lie entirely within one span.
    pub fn remove_covered(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let (span_start, span_end) = self
            .span_at(start)
            .expect("remove_covered: range not resident");
        debug_assert!(end <= span_end, "remove_covered: range spans a gap");
        self.spans.remove(&span_start);
        if span_start < start {
            self.spans.insert(span_start, start);
        }
        if end < span_end {
            self.spans.insert(end, span_end);
        }
        self.len -= end - start;
    }

    /// Calls `gap(s, e)` for each maximal subrange of `[start, end)` *not*
    /// covered by the set, in ascending order.
    pub fn for_gaps(&self, start: u64, end: u64, mut gap: impl FnMut(u64, u64)) {
        let mut pos = start;
        if let Some((_, span_end)) = self.span_at(pos) {
            pos = span_end.min(end);
        }
        while pos < end {
            match self.first_start_at_or_after(pos) {
                Some(next) if next < end => {
                    gap(pos, next);
                    pos = self.spans[&next].min(end);
                }
                _ => {
                    gap(pos, end);
                    pos = end;
                }
            }
        }
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_coalesces_only_adjacent_ascending() {
        let mut runs = AddrRuns::new();
        runs.push(10, 5);
        runs.push(15, 5); // adjacent: coalesce
        runs.push(30, 1);
        runs.push(29, 1); // descending: new run
        runs.push(30, 1); // adjacent to the previous push: coalesces
        assert_eq!(runs.run_count(), 3);
        assert_eq!(runs.element_count(), 13);
        assert_eq!(runs.runs()[0], AddrRun { start: 10, len: 10 });
        let elems: Vec<u64> = runs.iter_elements().collect();
        assert_eq!(
            elems,
            vec![10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 30, 29, 30]
        );
    }

    #[test]
    fn from_iter_round_trips_any_sequence() {
        let seq = vec![7u64, 8, 9, 3, 4, 4, 5, 100, 2, 1, 0];
        let runs: AddrRuns = seq.iter().copied().collect();
        let back: Vec<u64> = runs.iter_elements().collect();
        assert_eq!(back, seq);
        assert_eq!(runs.element_count(), seq.len() as u64);
    }

    #[test]
    fn zero_length_push_is_noop() {
        let mut runs = AddrRuns::new();
        runs.push(5, 0);
        assert!(runs.is_empty());
        assert_eq!(runs.element_count(), 0);
    }

    #[test]
    fn interval_set_insert_merges_overlaps_and_adjacency() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(30, 40);
        assert_eq!(set.len(), 20);
        set.insert(20, 30); // bridges the two (adjacent on both sides)
        assert_eq!(set.len(), 30);
        assert_eq!(set.span_at(15), Some((10, 40)));
        set.insert(5, 50); // superset
        assert_eq!(set.len(), 45);
        assert_eq!(set.span_at(5), Some((5, 50)));
        set.insert(7, 9); // fully covered: no-op
        assert_eq!(set.len(), 45);
    }

    #[test]
    fn interval_set_remove_covered_splits_spans() {
        let mut set = IntervalSet::new();
        set.insert(0, 100);
        set.remove_covered(20, 30);
        assert_eq!(set.len(), 90);
        assert!(set.contains(19));
        assert!(!set.contains(20));
        assert!(!set.contains(29));
        assert!(set.contains(30));
        assert_eq!(set.span_at(0), Some((0, 20)));
        assert_eq!(set.span_at(30), Some((30, 100)));
        // Remove a full span.
        set.remove_covered(0, 20);
        assert!(!set.contains(0));
        assert_eq!(set.len(), 70);
    }

    #[test]
    fn interval_set_gap_walk() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(30, 40);
        let mut gaps = Vec::new();
        set.for_gaps(5, 45, |s, e| gaps.push((s, e)));
        assert_eq!(gaps, vec![(5, 10), (20, 30), (40, 45)]);
        // Fully covered range: no gaps.
        gaps.clear();
        set.for_gaps(12, 18, |s, e| gaps.push((s, e)));
        assert!(gaps.is_empty());
        // Fully uncovered range: one gap.
        gaps.clear();
        set.for_gaps(100, 110, |s, e| gaps.push((s, e)));
        assert_eq!(gaps, vec![(100, 110)]);
    }

    #[test]
    fn interval_set_queries() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(40, 50);
        assert_eq!(set.first_start_at_or_after(0), Some(10));
        assert_eq!(set.first_start_at_or_after(10), Some(10));
        assert_eq!(set.first_start_at_or_after(11), Some(40));
        assert_eq!(set.first_start_at_or_after(50), None);
        assert_eq!(set.len_at_or_above(0), 20);
        assert_eq!(set.len_at_or_above(15), 15);
        assert_eq!(set.len_at_or_above(45), 5);
        assert_eq!(set.len_at_or_above(50), 0);
    }

    #[test]
    fn interval_set_matches_naive_model() {
        // Deterministic pseudo-random op sequence cross-checked against a
        // HashSet-of-elements model.
        use std::collections::HashSet;
        let mut set = IntervalSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..500 {
            let s = next() % 200;
            let len = next() % 20 + 1;
            let e = s + len;
            if next() % 3 == 0 {
                // Remove a covered subrange, if one exists inside a span.
                if let Some((a, b)) = set.span_at(s) {
                    let e2 = e.min(b);
                    if s < e2 {
                        set.remove_covered(s, e2);
                        for x in s..e2 {
                            model.remove(&x);
                        }
                    }
                    let _ = a;
                }
            } else {
                set.insert(s, e);
                for x in s..e {
                    model.insert(x);
                }
            }
            assert_eq!(set.len(), model.len() as u64);
            for probe in 0..220 {
                assert_eq!(set.contains(probe), model.contains(&probe));
            }
        }
    }
}
