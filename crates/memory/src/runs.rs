//! Run-length-compressed address streams.
//!
//! The conv/GEMM address maps emit overwhelmingly *contiguous* addresses:
//! a GEMM row `A[m][k0..k0+len]` is one run, a conv window row is one run
//! per filter row. Materializing every element as a `Vec<u64>` (the
//! original [`fold_demands`](../../scalesim_systolic/fn.fold_demands.html)
//! representation) makes every downstream model O(elements); representing
//! the same stream as ordered `(start, len)` intervals makes them O(runs).
//!
//! Two types live here:
//!
//! * [`AddrRuns`] — an *ordered* sequence of ascending contiguous runs.
//!   Order is semantic: the SRAM models use FIFO replacement, so the
//!   element sequence (first-use order) must be preserved exactly. The
//!   only compression applied is coalescing a pushed run with the previous
//!   one when they are exactly adjacent — which never changes the
//!   concatenated element sequence.
//! * [`IntervalSet`] — a disjoint, coalesced set of address intervals,
//!   used for run-granular residency tracking ([`crate::RunBuffer`]) and
//!   first-use deduplication in the demand generators.
//!
//! Both are laid out struct-of-arrays: parallel `starts[]` / `lens[]`
//! (resp. `ends[]`) vectors rather than a `Vec` of two-field structs. The
//! hot kernels — bulk append, span probe, union insert, gap walk — then
//! touch dense homogeneous arrays: probes are `partition_point` binary
//! searches, bulk appends are `extend_from_slice` (memcpy), and the
//! length/coverage reductions autovectorize. The previous element-granular
//! and `BTreeMap`-based implementations survive as scalar twins in
//! [`crate::scalar`] for differential testing.

/// One maximal contiguous address run: `start, start+1, …, start+len-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRun {
    /// First address of the run.
    pub start: u64,
    /// Number of consecutive addresses.
    pub len: u64,
}

impl AddrRun {
    /// One past the last address of the run.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// An ordered sequence of address runs — the run-length-compressed form of
/// a demand stream.
///
/// Equivalent to the `Vec<u64>` it compresses: iterating
/// [`AddrRuns::iter_elements`] yields exactly the original element
/// sequence. Duplicate or descending addresses are representable (as
/// separate runs); only exactly-adjacent ascending pushes coalesce.
///
/// ```
/// use scalesim_memory::AddrRuns;
///
/// let runs: AddrRuns = [5u64, 6, 7, 20, 21, 7].into_iter().collect();
/// assert_eq!(runs.run_count(), 3); // [5,3] [20,2] [7,1]
/// assert_eq!(runs.element_count(), 6);
/// let back: Vec<u64> = runs.iter_elements().collect();
/// assert_eq!(back, vec![5, 6, 7, 20, 21, 7]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrRuns {
    starts: Vec<u64>,
    lens: Vec<u64>,
    elements: u64,
}

impl AddrRuns {
    /// An empty stream.
    pub fn new() -> AddrRuns {
        AddrRuns::default()
    }

    /// An empty stream with room for `runs` runs.
    pub fn with_capacity(runs: usize) -> AddrRuns {
        AddrRuns {
            starts: Vec::with_capacity(runs),
            lens: Vec::with_capacity(runs),
            elements: 0,
        }
    }

    /// Appends the run `[start, start+len)`, coalescing with the previous
    /// run when exactly adjacent. A zero-length push is a no-op.
    pub fn push(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.elements += len;
        if let Some(last_len) = self.lens.last_mut() {
            let last_start = *self.starts.last().unwrap();
            if last_start + *last_len == start {
                *last_len += len;
                return;
            }
        }
        self.starts.push(start);
        self.lens.push(len);
    }

    /// Appends every run of `other`, preserving order.
    ///
    /// Bulk kernel: at most the boundary pair can coalesce (each side is
    /// already maximally coalesced), so this is one boundary check plus two
    /// `extend_from_slice` copies — not a per-run loop.
    pub fn extend_runs(&mut self, other: &AddrRuns) {
        let mut from = 0;
        if let (Some(&last_start), Some(&last_len)) = (self.starts.last(), self.lens.last()) {
            if let Some(&first_start) = other.starts.first() {
                if last_start + last_len == first_start {
                    *self.lens.last_mut().unwrap() += other.lens[0];
                    from = 1;
                }
            }
        }
        self.starts.extend_from_slice(&other.starts[from..]);
        self.lens.extend_from_slice(&other.lens[from..]);
        self.elements += other.elements;
    }

    /// The run at index `i` in stream order.
    pub fn run(&self, i: usize) -> AddrRun {
        AddrRun {
            start: self.starts[i],
            len: self.lens[i],
        }
    }

    /// The runs in stream order.
    pub fn iter_runs(&self) -> impl Iterator<Item = AddrRun> + '_ {
        self.starts
            .iter()
            .zip(&self.lens)
            .map(|(&start, &len)| AddrRun { start, len })
    }

    /// The run start addresses, parallel to [`AddrRuns::lens`].
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// The run lengths, parallel to [`AddrRuns::starts`].
    pub fn lens(&self) -> &[u64] {
        &self.lens
    }

    /// Total element count (sum of run lengths).
    pub fn element_count(&self) -> u64 {
        self.elements
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.starts.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Empties the stream, keeping allocations.
    pub fn clear(&mut self) {
        self.starts.clear();
        self.lens.clear();
        self.elements = 0;
    }

    /// The uncompressed element sequence.
    pub fn iter_elements(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter_runs().flat_map(|r| r.start..r.end())
    }
}

impl FromIterator<u64> for AddrRuns {
    /// Order-preserving compression of an element stream: only consecutive
    /// ascending-adjacent elements coalesce, so the element sequence round
    /// trips exactly.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> AddrRuns {
        let mut runs = AddrRuns::new();
        for addr in iter {
            runs.push(addr, 1);
        }
        runs
    }
}

/// A disjoint, coalesced set of half-open address intervals `[start, end)`.
///
/// Stored as parallel sorted `starts[]` / `ends[]` vectors (both strictly
/// increasing, spans never adjacent). Probes are `partition_point` binary
/// searches; mutations splice with `Vec::insert`/`drain`, which in the
/// simulator's streams (a handful of live spans, mutations clustered at
/// the probe point) beats the pointer-chasing `BTreeMap` twin
/// ([`crate::scalar::ScalarIntervalSet`]) by a wide margin.
///
/// Supports the queries the run-granular models need: membership span
/// lookup, next-covered-start, union insert (with fused gap enumeration),
/// covered-range removal, and gap enumeration.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    starts: Vec<u64>,
    ends: Vec<u64>,
    len: u64,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Total number of covered addresses.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disjoint spans.
    pub fn span_count(&self) -> usize {
        self.starts.len()
    }

    /// The spans in ascending order, as `(start, end)` pairs.
    pub fn iter_spans(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.starts.iter().copied().zip(self.ends.iter().copied())
    }

    /// Index of the span covering `pos`, if any.
    #[inline]
    fn span_index_at(&self, pos: u64) -> Option<usize> {
        let idx = self.starts.partition_point(|&s| s <= pos);
        let i = idx.checked_sub(1)?;
        (self.ends[i] > pos).then_some(i)
    }

    /// Whether `addr` is covered.
    pub fn contains(&self, addr: u64) -> bool {
        self.span_index_at(addr).is_some()
    }

    /// The `(start, end)` of the span covering `pos`, if any.
    pub fn span_at(&self, pos: u64) -> Option<(u64, u64)> {
        let i = self.span_index_at(pos)?;
        Some((self.starts[i], self.ends[i]))
    }

    /// The start of the first span at or after `pos`, if any.
    pub fn first_start_at_or_after(&self, pos: u64) -> Option<u64> {
        let idx = self.starts.partition_point(|&s| s < pos);
        self.starts.get(idx).copied()
    }

    /// Number of covered addresses `>= pos`.
    pub fn len_at_or_above(&self, pos: u64) -> u64 {
        let idx = self.starts.partition_point(|&s| s <= pos);
        let mut total = 0;
        if idx > 0 && self.ends[idx - 1] > pos {
            total += self.ends[idx - 1] - pos;
        }
        // Branch-free tail reduction over the parallel arrays.
        total
            + self.ends[idx..]
                .iter()
                .zip(&self.starts[idx..])
                .map(|(e, s)| e - s)
                .sum::<u64>()
    }

    /// Unions `[start, end)` into the set, merging overlapping or adjacent
    /// spans.
    pub fn insert(&mut self, start: u64, end: u64) {
        self.insert_with_gaps(start, end, |_, _| {});
    }

    /// Unions `[start, end)` into the set and calls `gap(s, e)` for each
    /// maximal subrange of `[start, end)` that was *not* previously
    /// covered, in ascending order — [`IntervalSet::for_gaps`] fused with
    /// [`IntervalSet::insert`] so the affected spans are probed once.
    pub fn insert_with_gaps(&mut self, start: u64, end: u64, mut gap: impl FnMut(u64, u64)) {
        if start >= end {
            return;
        }
        // Spans in [lo, hi) overlap or are exactly adjacent to [start, end):
        // both bounds are binary searches (ends[] is sorted because spans
        // are disjoint and non-adjacent).
        let lo = self.ends.partition_point(|&e| e < start);
        let hi = self.starts.partition_point(|&s| s <= end);
        let mut pos = start;
        let mut covered = 0;
        for j in lo..hi {
            let (s, e) = (self.starts[j], self.ends[j]);
            covered += e - s;
            if s > pos {
                gap(pos, s);
            }
            pos = pos.max(e.min(end));
        }
        if pos < end {
            gap(pos, end);
        }
        if lo == hi {
            self.starts.insert(lo, start);
            self.ends.insert(lo, end);
            self.len += end - start;
            return;
        }
        let new_start = start.min(self.starts[lo]);
        let new_end = end.max(self.ends[hi - 1]);
        self.starts[lo] = new_start;
        self.ends[lo] = new_end;
        self.starts.drain(lo + 1..hi);
        self.ends.drain(lo + 1..hi);
        self.len += (new_end - new_start) - covered;
    }

    /// Removes `[start, end)`, which must lie entirely within one span.
    pub fn remove_covered(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let i = self
            .span_index_at(start)
            .expect("remove_covered: range not resident");
        let (span_start, span_end) = (self.starts[i], self.ends[i]);
        debug_assert!(end <= span_end, "remove_covered: range spans a gap");
        match (span_start < start, end < span_end) {
            (true, true) => {
                // Split: keep [span_start, start), insert [end, span_end).
                self.ends[i] = start;
                self.starts.insert(i + 1, end);
                self.ends.insert(i + 1, span_end);
            }
            (true, false) => self.ends[i] = start,
            (false, true) => self.starts[i] = end,
            (false, false) => {
                self.starts.remove(i);
                self.ends.remove(i);
            }
        }
        self.len -= end - start;
    }

    /// Calls `gap(s, e)` for each maximal subrange of `[start, end)` *not*
    /// covered by the set, in ascending order.
    pub fn for_gaps(&self, start: u64, end: u64, mut gap: impl FnMut(u64, u64)) {
        if start >= end {
            return;
        }
        let mut pos = start;
        // First span that can matter: the one covering `start` (its start
        // is <= start) or the first starting after it.
        let mut i = self.starts.partition_point(|&s| s <= start);
        if i > 0 && self.ends[i - 1] > start {
            pos = self.ends[i - 1].min(end);
        }
        while pos < end {
            if i < self.starts.len() && self.starts[i] < end {
                if self.starts[i] > pos {
                    gap(pos, self.starts[i]);
                }
                pos = self.ends[i].min(end);
                i += 1;
            } else {
                gap(pos, end);
                break;
            }
        }
    }

    /// Empties the set, keeping allocations.
    pub fn clear(&mut self) {
        self.starts.clear();
        self.ends.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_coalesces_only_adjacent_ascending() {
        let mut runs = AddrRuns::new();
        runs.push(10, 5);
        runs.push(15, 5); // adjacent: coalesce
        runs.push(30, 1);
        runs.push(29, 1); // descending: new run
        runs.push(30, 1); // adjacent to the previous push: coalesces
        assert_eq!(runs.run_count(), 3);
        assert_eq!(runs.element_count(), 13);
        assert_eq!(runs.run(0), AddrRun { start: 10, len: 10 });
        let elems: Vec<u64> = runs.iter_elements().collect();
        assert_eq!(
            elems,
            vec![10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 30, 29, 30]
        );
    }

    #[test]
    fn from_iter_round_trips_any_sequence() {
        let seq = vec![7u64, 8, 9, 3, 4, 4, 5, 100, 2, 1, 0];
        let runs: AddrRuns = seq.iter().copied().collect();
        let back: Vec<u64> = runs.iter_elements().collect();
        assert_eq!(back, seq);
        assert_eq!(runs.element_count(), seq.len() as u64);
    }

    #[test]
    fn zero_length_push_is_noop() {
        let mut runs = AddrRuns::new();
        runs.push(5, 0);
        assert!(runs.is_empty());
        assert_eq!(runs.element_count(), 0);
    }

    #[test]
    fn extend_runs_merges_only_the_boundary() {
        let mut a = AddrRuns::new();
        a.push(0, 4);
        a.push(10, 2);
        let mut b = AddrRuns::new();
        b.push(12, 3); // adjacent to a's last run
        b.push(0, 1);
        a.extend_runs(&b);
        assert_eq!(a.run_count(), 3);
        assert_eq!(a.run(1), AddrRun { start: 10, len: 5 });
        assert_eq!(a.element_count(), 10);
        // Non-adjacent boundary: plain concatenation.
        let mut c = AddrRuns::new();
        c.push(100, 1);
        a.extend_runs(&c);
        assert_eq!(a.run_count(), 4);
        // Extending an empty stream copies wholesale.
        let mut empty = AddrRuns::new();
        empty.extend_runs(&a);
        assert_eq!(empty, a);
        // Extending with an empty stream is a no-op.
        let snapshot = a.clone();
        a.extend_runs(&AddrRuns::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn interval_set_insert_merges_overlaps_and_adjacency() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(30, 40);
        assert_eq!(set.len(), 20);
        set.insert(20, 30); // bridges the two (adjacent on both sides)
        assert_eq!(set.len(), 30);
        assert_eq!(set.span_at(15), Some((10, 40)));
        set.insert(5, 50); // superset
        assert_eq!(set.len(), 45);
        assert_eq!(set.span_at(5), Some((5, 50)));
        set.insert(7, 9); // fully covered: no-op
        assert_eq!(set.len(), 45);
        assert_eq!(set.span_count(), 1);
    }

    #[test]
    fn interval_set_remove_covered_splits_spans() {
        let mut set = IntervalSet::new();
        set.insert(0, 100);
        set.remove_covered(20, 30);
        assert_eq!(set.len(), 90);
        assert!(set.contains(19));
        assert!(!set.contains(20));
        assert!(!set.contains(29));
        assert!(set.contains(30));
        assert_eq!(set.span_at(0), Some((0, 20)));
        assert_eq!(set.span_at(30), Some((30, 100)));
        // Remove a full span.
        set.remove_covered(0, 20);
        assert!(!set.contains(0));
        assert_eq!(set.len(), 70);
    }

    #[test]
    fn interval_set_gap_walk() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(30, 40);
        let mut gaps = Vec::new();
        set.for_gaps(5, 45, |s, e| gaps.push((s, e)));
        assert_eq!(gaps, vec![(5, 10), (20, 30), (40, 45)]);
        // Fully covered range: no gaps.
        gaps.clear();
        set.for_gaps(12, 18, |s, e| gaps.push((s, e)));
        assert!(gaps.is_empty());
        // Fully uncovered range: one gap.
        gaps.clear();
        set.for_gaps(100, 110, |s, e| gaps.push((s, e)));
        assert_eq!(gaps, vec![(100, 110)]);
    }

    #[test]
    fn insert_with_gaps_reports_exactly_the_uncovered_parts() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(30, 40);
        let mut gaps = Vec::new();
        set.insert_with_gaps(5, 45, |s, e| gaps.push((s, e)));
        assert_eq!(gaps, vec![(5, 10), (20, 30), (40, 45)]);
        assert_eq!(set.span_at(5), Some((5, 45)));
        assert_eq!(set.len(), 40);
        // Re-inserting a covered range reports nothing and changes nothing.
        gaps.clear();
        set.insert_with_gaps(10, 40, |s, e| gaps.push((s, e)));
        assert!(gaps.is_empty());
        assert_eq!(set.len(), 40);
        assert_eq!(set.span_count(), 1);
    }

    #[test]
    fn interval_set_queries() {
        let mut set = IntervalSet::new();
        set.insert(10, 20);
        set.insert(40, 50);
        assert_eq!(set.first_start_at_or_after(0), Some(10));
        assert_eq!(set.first_start_at_or_after(10), Some(10));
        assert_eq!(set.first_start_at_or_after(11), Some(40));
        assert_eq!(set.first_start_at_or_after(50), None);
        assert_eq!(set.len_at_or_above(0), 20);
        assert_eq!(set.len_at_or_above(15), 15);
        assert_eq!(set.len_at_or_above(45), 5);
        assert_eq!(set.len_at_or_above(50), 0);
    }

    #[test]
    fn interval_set_matches_naive_model() {
        // Deterministic pseudo-random op sequence cross-checked against a
        // HashSet-of-elements model.
        use std::collections::HashSet;
        let mut set = IntervalSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..500 {
            let s = next() % 200;
            let len = next() % 20 + 1;
            let e = s + len;
            if next() % 3 == 0 {
                // Remove a covered subrange, if one exists inside a span.
                if let Some((a, b)) = set.span_at(s) {
                    let e2 = e.min(b);
                    if s < e2 {
                        set.remove_covered(s, e2);
                        for x in s..e2 {
                            model.remove(&x);
                        }
                    }
                    let _ = a;
                }
            } else {
                set.insert(s, e);
                for x in s..e {
                    model.insert(x);
                }
            }
            assert_eq!(set.len(), model.len() as u64);
            for probe in 0..220 {
                assert_eq!(set.contains(probe), model.contains(&probe));
            }
        }
    }
}
