//! Scalar twins of the data-oriented kernels, for differential testing.
//!
//! The SoA kernels in [`crate::runs`] replaced earlier reference
//! implementations: a `BTreeMap`-backed interval set and per-run
//! push-loop stream appends. Those originals are preserved here, compiled
//! only for tests (or under the `scalar-twins` feature), so property
//! suites can assert the optimized kernels are *observationally identical*
//! on arbitrary span sets — the byte-identity guarantee for every
//! simulator output rests on these equivalences.

use std::collections::BTreeMap;

use crate::runs::AddrRuns;

/// Per-run scalar twin of [`AddrRuns::extend_runs`]: the original
/// push-loop append. The bulk kernel must produce an identical stream.
pub fn extend_runs_scalar(dst: &mut AddrRuns, other: &AddrRuns) {
    for run in other.iter_runs() {
        dst.push(run.start, run.len);
    }
}

/// The original `BTreeMap`-backed interval set — scalar twin of
/// [`crate::IntervalSet`].
///
/// Semantics are identical: a disjoint, coalesced set of half-open
/// address intervals `[start, end)` supporting span probes, union
/// insert, covered-range removal, and gap walks.
#[derive(Debug, Clone, Default)]
pub struct ScalarIntervalSet {
    /// start -> end, disjoint and non-adjacent (always coalesced).
    spans: BTreeMap<u64, u64>,
    len: u64,
}

impl ScalarIntervalSet {
    /// An empty set.
    pub fn new() -> ScalarIntervalSet {
        ScalarIntervalSet::default()
    }

    /// Total number of covered addresses.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disjoint spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// The spans in ascending order, as `(start, end)` pairs.
    pub fn iter_spans(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.spans.iter().map(|(&s, &e)| (s, e))
    }

    /// Whether `addr` is covered.
    pub fn contains(&self, addr: u64) -> bool {
        self.span_at(addr).is_some()
    }

    /// The `(start, end)` of the span covering `pos`, if any.
    pub fn span_at(&self, pos: u64) -> Option<(u64, u64)> {
        let (&start, &end) = self.spans.range(..=pos).next_back()?;
        (end > pos).then_some((start, end))
    }

    /// The start of the first span at or after `pos`, if any.
    pub fn first_start_at_or_after(&self, pos: u64) -> Option<u64> {
        self.spans.range(pos..).next().map(|(&s, _)| s)
    }

    /// Number of covered addresses `>= pos`.
    pub fn len_at_or_above(&self, pos: u64) -> u64 {
        // A span starting exactly at `pos` is picked up whole by the range
        // walk below; only a strictly-earlier covering span needs the
        // partial `end - pos` contribution.
        let mut total = 0;
        if let Some((start, end)) = self.span_at(pos) {
            if start < pos {
                total += end - pos;
            }
        }
        for (&s, &e) in self.spans.range(pos..) {
            total += e - s;
        }
        total
    }

    /// Unions `[start, end)` into the set, merging overlapping or adjacent
    /// spans.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        if let Some((&ps, &pe)) = self.spans.range(..=start).next_back() {
            if pe >= start {
                if pe >= end {
                    return; // already fully covered
                }
                new_start = ps;
                new_end = new_end.max(pe);
                self.len -= pe - ps;
                self.spans.remove(&ps);
            }
        }
        // Absorb every span starting within the (grown) range, including
        // one starting exactly at new_end (adjacent).
        while let Some((&s, &e)) = self.spans.range(new_start..=new_end).next() {
            self.len -= e - s;
            new_end = new_end.max(e);
            self.spans.remove(&s);
        }
        self.spans.insert(new_start, new_end);
        self.len += new_end - new_start;
    }

    /// Gap walk followed by insert — scalar twin of
    /// [`crate::IntervalSet::insert_with_gaps`], built from the two
    /// primitive operations it fuses.
    pub fn insert_with_gaps(&mut self, start: u64, end: u64, gap: impl FnMut(u64, u64)) {
        self.for_gaps(start, end, gap);
        self.insert(start, end);
    }

    /// Removes `[start, end)`, which must lie entirely within one span.
    pub fn remove_covered(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let (span_start, span_end) = self
            .span_at(start)
            .expect("remove_covered: range not resident");
        debug_assert!(end <= span_end, "remove_covered: range spans a gap");
        self.spans.remove(&span_start);
        if span_start < start {
            self.spans.insert(span_start, start);
        }
        if end < span_end {
            self.spans.insert(end, span_end);
        }
        self.len -= end - start;
    }

    /// Calls `gap(s, e)` for each maximal subrange of `[start, end)` *not*
    /// covered by the set, in ascending order.
    pub fn for_gaps(&self, start: u64, end: u64, mut gap: impl FnMut(u64, u64)) {
        let mut pos = start;
        if let Some((_, span_end)) = self.span_at(pos) {
            pos = span_end.min(end);
        }
        while pos < end {
            match self.first_start_at_or_after(pos) {
                Some(next) if next < end => {
                    gap(pos, next);
                    pos = self.spans[&next].min(end);
                }
                _ => {
                    gap(pos, end);
                    pos = end;
                }
            }
        }
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.len = 0;
    }
}
