#![warn(missing_docs)]

//! Memory-system models for `scale-sim-rs`.
//!
//! SCALE-Sim's memory side (Section II-C of the paper) has three pieces,
//! all implemented here:
//!
//! 1. **Address maps** ([`address`]) — translate the GEMM coordinates the
//!    trace engines work in (`A[m][k]`, `B[k][n]`, `O[m][n]`) into the flat
//!    SRAM addresses the traces record. Convolutions get overlapping-window
//!    IFMAP addressing so spatial reuse is visible in the address stream.
//! 2. **Double-buffered SRAM** ([`buffer`]) — a working-set model with FIFO
//!    replacement that classifies each fold's demand into hits and misses.
//! 3. **DRAM interface** ([`dram`]) — converts per-fold miss sets into
//!    prefetch traffic and the *stall-free bandwidth requirement*: misses of
//!    fold *f* must arrive while fold *f−1* computes (double buffering).
//!
//! The [`bandwidth`] module provides the windowed bytes-per-cycle profiler
//! both SRAM and DRAM reporting share.

pub mod address;
pub mod arena;
pub mod bandwidth;
pub mod buffer;
pub mod dram;
pub mod dram_trace;
pub mod fast_hash;
pub mod reuse;
pub mod runs;
#[cfg(any(test, feature = "scalar-twins"))]
pub mod scalar;
pub mod stall;

pub use address::{AddressMap, ConvAddressMap, GemmAddressMap, RegionOffsets, SubGemmMap};
pub use arena::BufferPool;
pub use bandwidth::BandwidthProfile;
pub use buffer::{DoubleBuffer, EpochStats, RunBuffer};
pub use dram::{DramModel, DramSummary, FoldTraffic, OperandBufferSpec};
pub use dram_trace::DramTraceWriter;
pub use fast_hash::{AddrBuildHasher, AddrMap, AddrSet};
pub use reuse::{ReuseProfile, ReuseScratch};
pub use runs::{AddrRun, AddrRuns, IntervalSet};
pub use stall::{StallModel, StallSummary};
