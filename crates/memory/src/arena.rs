//! Reusable simulation scratch: buffer pooling for the fold hot loop.
//!
//! A cold sweep simulates thousands of layer × config points, and each
//! point builds a [`crate::DramModel`] with three operand
//! [`crate::RunBuffer`]s plus per-fold miss scratch. The structures are
//! small but their backing vectors grow to the layer's working set; letting
//! each point allocate them fresh puts the allocator on the hot path. A
//! [`BufferPool`] keeps retired buffers (with their grown capacity) for
//! the next point on the same worker, so steady-state simulation performs
//! no heap allocation — see `SimArena` in `scalesim-core` for the
//! per-worker aggregate that owns one.

use crate::buffer::RunBuffer;
use crate::runs::AddrRuns;

/// A free list of retired [`RunBuffer`]s.
///
/// `take` prefers a pooled buffer (reset to the requested capacity, its
/// allocations intact) and falls back to a fresh one; `put` returns a
/// buffer to the pool. The pool is deliberately dumb — buffers are
/// interchangeable after [`RunBuffer::reset`], so LIFO reuse maximizes
/// allocation warmth.
///
/// ```
/// use scalesim_memory::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let buf = pool.take(1024);
/// assert_eq!(buf.capacity(), 1024);
/// pool.put(buf);
/// let again = pool.take(64); // same backing storage, new capacity
/// assert_eq!(again.capacity(), 64);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<RunBuffer>,
    free_runs: Vec<AddrRuns>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Takes a buffer with the given element capacity, reusing a retired
    /// one when available.
    pub fn take(&mut self, capacity_elems: u64) -> RunBuffer {
        match self.free.pop() {
            Some(mut buf) => {
                buf.reset(capacity_elems);
                buf
            }
            None => RunBuffer::new(capacity_elems),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buffer: RunBuffer) {
        self.free.push(buffer);
    }

    /// Takes an empty [`AddrRuns`] scratch stream, reusing a retired one's
    /// grown storage when available.
    pub fn take_runs(&mut self) -> AddrRuns {
        match self.free_runs.pop() {
            Some(mut runs) => {
                runs.clear();
                runs
            }
            None => AddrRuns::new(),
        }
    }

    /// Returns a scratch stream to the pool for reuse.
    pub fn put_runs(&mut self, runs: AddrRuns) {
        self.free_runs.push(runs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::AddrRuns;

    #[test]
    fn take_reuses_retired_buffers() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take(8);
        let demand: AddrRuns = (0..4u64).collect();
        buf.epoch(&demand);
        assert_eq!(buf.resident_count(), 4);
        pool.put(buf);
        assert_eq!(pool.pooled(), 1);
        // The reused buffer starts empty at the new capacity.
        let buf = pool.take(2);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(buf.capacity(), 2);
        assert_eq!(buf.resident_count(), 0);
    }

    #[test]
    fn empty_pool_allocates_fresh() {
        let mut pool = BufferPool::new();
        let a = pool.take(1);
        let b = pool.take(1);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.pooled(), 2);
    }
}
