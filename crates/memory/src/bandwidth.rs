//! Windowed bandwidth accounting.
//!
//! Both the SRAM and DRAM reporting paths reduce to the same question: given
//! a sequence of *(window length in cycles, bytes moved in that window)*
//! samples, what are the average and worst-case bytes-per-cycle? The paper's
//! Fig. 11 plots exactly this stall-free *requirement* as partitioning
//! increases.

use serde::{Deserialize, Serialize};

/// Accumulates windowed traffic samples into average / peak bandwidth.
///
/// ```
/// use scalesim_memory::BandwidthProfile;
///
/// let mut bw = BandwidthProfile::new();
/// bw.record(100, 400); // 400 bytes over 100 cycles -> 4 B/cycle
/// bw.record(50, 400);  // 8 B/cycle
/// assert_eq!(bw.peak(), 8.0);
/// assert!((bw.average() - 800.0 / 150.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BandwidthProfile {
    total_bytes: u64,
    total_cycles: u64,
    peak: f64,
    samples: u64,
}

impl BandwidthProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` moved during a window of `cycles` cycles.
    ///
    /// Zero-length windows with traffic are treated as a one-cycle window
    /// (they can occur for degenerate single-cycle folds); zero-traffic
    /// windows still extend the denominator of the average.
    pub fn record(&mut self, cycles: u64, bytes: u64) {
        let cycles = if cycles == 0 && bytes > 0 { 1 } else { cycles };
        self.total_bytes += bytes;
        self.total_cycles += cycles;
        if cycles > 0 {
            let rate = bytes as f64 / cycles as f64;
            if rate > self.peak {
                self.peak = rate;
            }
        }
        self.samples += 1;
    }

    /// Folds another profile into this one (used when aggregating
    /// partitions: bandwidths of concurrent partitions add).
    pub fn merge_concurrent(&mut self, other: &BandwidthProfile) {
        self.total_bytes += other.total_bytes;
        // Concurrent streams share the timeline: keep the longer one.
        self.total_cycles = self.total_cycles.max(other.total_cycles);
        self.peak += other.peak;
        self.samples += other.samples;
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles observed.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Average bytes per cycle over the whole run (0 if no cycles).
    pub fn average(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_cycles as f64
        }
    }

    /// Worst single-window bytes per cycle — the stall-free requirement.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_reports_zero() {
        let bw = BandwidthProfile::new();
        assert_eq!(bw.average(), 0.0);
        assert_eq!(bw.peak(), 0.0);
        assert_eq!(bw.samples(), 0);
    }

    #[test]
    fn peak_tracks_worst_window() {
        let mut bw = BandwidthProfile::new();
        bw.record(10, 10);
        bw.record(10, 100);
        bw.record(10, 50);
        assert_eq!(bw.peak(), 10.0);
        assert_eq!(bw.total_bytes(), 160);
    }

    #[test]
    fn zero_cycle_window_with_traffic_counts_one_cycle() {
        let mut bw = BandwidthProfile::new();
        bw.record(0, 7);
        assert_eq!(bw.peak(), 7.0);
        assert_eq!(bw.total_cycles(), 1);
    }

    #[test]
    fn zero_traffic_window_extends_average_denominator() {
        let mut bw = BandwidthProfile::new();
        bw.record(10, 100);
        bw.record(90, 0);
        assert_eq!(bw.average(), 1.0);
        assert_eq!(bw.peak(), 10.0);
    }

    #[test]
    fn merge_concurrent_adds_bytes_and_peaks() {
        let mut a = BandwidthProfile::new();
        a.record(100, 100);
        let mut b = BandwidthProfile::new();
        b.record(80, 160);
        a.merge_concurrent(&b);
        assert_eq!(a.total_bytes(), 260);
        assert_eq!(a.total_cycles(), 100);
        assert_eq!(a.peak(), 1.0 + 2.0);
    }
}
