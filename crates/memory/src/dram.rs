//! DRAM interface model: prefetch traffic and stall-free bandwidth.
//!
//! SCALE-Sim derives DRAM behaviour from the SRAM traces (Section II-C): the
//! demand of each fold is filtered through the double-buffered SRAMs, and
//! whatever misses must be prefetched over the system interface *before the
//! fold begins* — under double buffering, during the previous fold's compute
//! window. The bandwidth that makes this possible with zero stalls is the
//! paper's "DRAM bandwidth requirement" (Fig. 11).
//!
//! Outputs stream out as they are produced, so write bandwidth is accounted
//! over each fold's own duration. Partial-sum spill (WS/IS folding along the
//! contraction dimension) is filtered through the OFMAP buffer: if the
//! working set of live partials fits, accumulation stays on-chip; misses
//! become DRAM read-modify-write traffic.

use serde::{Deserialize, Serialize};

use crate::arena::BufferPool;
use crate::bandwidth::BandwidthProfile;
use crate::buffer::{EpochStats, RunBuffer};
use crate::runs::AddrRuns;

/// Sizing of one operand SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperandBufferSpec {
    /// Buffer size in bytes (e.g. `512 * 1024` for the paper's 512 KB).
    pub size_bytes: u64,
    /// Bytes per element word.
    pub word_bytes: u64,
}

impl OperandBufferSpec {
    /// Creates a spec from a size in kilobytes, the unit Table I uses.
    pub fn from_kb(kb: u64, word_bytes: u64) -> Self {
        OperandBufferSpec {
            size_bytes: kb * 1024,
            word_bytes: word_bytes.max(1),
        }
    }

    /// How many elements the buffer holds.
    pub fn capacity_elems(&self) -> usize {
        (self.size_bytes / self.word_bytes) as usize
    }
}

/// Per-fold interface traffic, returned by [`DramModel::fold`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FoldTraffic {
    /// Compute duration of the fold in cycles.
    pub duration: u64,
    /// Operand-A (IFMAP) elements fetched from DRAM for this fold.
    pub a_misses: u64,
    /// Operand-B (filter) elements fetched from DRAM for this fold.
    pub b_misses: u64,
    /// Partial-sum elements that had to round-trip to DRAM.
    pub o_spill_misses: u64,
    /// Total bytes read from DRAM for this fold.
    pub read_bytes: u64,
    /// Total bytes written to DRAM during this fold.
    pub write_bytes: u64,
    /// Read bandwidth this fold requires for stall-free operation
    /// (bytes/cycle over its prefetch window).
    pub required_read_bw: f64,
}

/// Aggregated DRAM interface summary for one simulated layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramSummary {
    /// Total operand-A elements read from DRAM.
    pub reads_a: u64,
    /// Total operand-B elements read from DRAM.
    pub reads_b: u64,
    /// Partial-sum elements re-read from DRAM (spill).
    pub reads_o: u64,
    /// Output elements written to DRAM (every produced value streams out).
    pub writes_o: u64,
    /// Bytes per element used for traffic accounting.
    pub word_bytes: u64,
    /// Read-side bandwidth profile (per prefetch window).
    pub read_bw: BandwidthProfile,
    /// Write-side bandwidth profile (per fold).
    pub write_bw: BandwidthProfile,
    /// Number of folds processed.
    pub folds: u64,
}

impl DramSummary {
    /// Total DRAM read traffic in bytes.
    pub fn read_bytes(&self) -> u64 {
        (self.reads_a + self.reads_b + self.reads_o) * self.word_bytes
    }

    /// Total DRAM write traffic in bytes.
    pub fn write_bytes(&self) -> u64 {
        self.writes_o * self.word_bytes
    }

    /// Total DRAM traffic (reads + writes) in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes() + self.write_bytes()
    }

    /// Total DRAM accesses in elements (for the energy model).
    pub fn total_accesses(&self) -> u64 {
        self.reads_a + self.reads_b + self.reads_o + self.writes_o
    }

    /// Combined stall-free bandwidth requirement in bytes/cycle
    /// (peak read window plus peak write window).
    pub fn required_bandwidth(&self) -> f64 {
        self.read_bw.peak() + self.write_bw.peak()
    }

    /// Average interface bandwidth in bytes/cycle.
    pub fn average_bandwidth(&self) -> f64 {
        self.read_bw.average() + self.write_bw.average()
    }

    /// Merges the summary of a *concurrently executing* partition
    /// (scale-out): traffic adds, bandwidth requirements add.
    pub fn merge_concurrent(&mut self, other: &DramSummary) {
        self.reads_a += other.reads_a;
        self.reads_b += other.reads_b;
        self.reads_o += other.reads_o;
        self.writes_o += other.writes_o;
        self.word_bytes = self.word_bytes.max(other.word_bytes);
        self.read_bw.merge_concurrent(&other.read_bw);
        self.write_bw.merge_concurrent(&other.write_bw);
        self.folds = self.folds.max(other.folds);
    }
}

/// The per-layer DRAM interface model.
///
/// Feed it each fold in execution order via [`DramModel::fold`], then call
/// [`DramModel::finish`].
///
/// ```
/// use scalesim_memory::{DramModel, OperandBufferSpec};
///
/// let spec = OperandBufferSpec::from_kb(1, 1); // 1 KB, 1-byte words
/// let mut dram = DramModel::new(spec, spec, spec);
/// // Fold 0: 100 cycles, touches A[0..100] and B[0..10], writes 5 outputs.
/// dram.fold(100, (0..100).collect(), (1000..1010).collect(), vec![], (2000..2005).collect());
/// let summary = dram.finish();
/// assert_eq!(summary.reads_a, 100);
/// assert_eq!(summary.writes_o, 5);
/// ```
#[derive(Debug)]
pub struct DramModel {
    a_buf: RunBuffer,
    b_buf: RunBuffer,
    o_buf: RunBuffer,
    word_bytes: u64,
    prev_duration: Option<u64>,
    summary: DramSummary,
    /// Reused across [`DramModel::fold_traced`] calls (clear-don't-drop)
    /// so the traced path allocates per layer, not per fold.
    trace_miss_runs: AddrRuns,
    trace_miss_elems: Vec<u64>,
    /// Output installs deferred until the next non-empty spill epoch. The
    /// OFMAP buffer is only observable through spill epochs, so installs
    /// from spill-free folds (all of OS, the first contraction fold of
    /// WS/IS) need never be applied unless a spill arrives later — the
    /// flush replays them in order, so buffer state at every epoch is
    /// identical to eager installation.
    pending_o: AddrRuns,
}

impl DramModel {
    /// Creates a model with one buffer spec per operand. The word size of
    /// the A-operand spec is used for traffic accounting (all three specs
    /// should agree in practice).
    pub fn new(a: OperandBufferSpec, b: OperandBufferSpec, o: OperandBufferSpec) -> Self {
        Self::with_buffers(
            a,
            RunBuffer::new(a.capacity_elems() as u64),
            RunBuffer::new(b.capacity_elems() as u64),
            RunBuffer::new(o.capacity_elems() as u64),
        )
    }

    /// Like [`DramModel::new`], but draws the operand buffers from `pool`
    /// so repeated simulations reuse grown allocations. Pair with
    /// [`DramModel::finish_into`] to retire them back.
    pub fn new_in(
        a: OperandBufferSpec,
        b: OperandBufferSpec,
        o: OperandBufferSpec,
        pool: &mut BufferPool,
    ) -> Self {
        // Take in reverse of the `finish_into` put order (LIFO pool), so
        // each operand buffer gets its own grown storage back.
        let o_buf = pool.take(o.capacity_elems() as u64);
        let b_buf = pool.take(b.capacity_elems() as u64);
        let a_buf = pool.take(a.capacity_elems() as u64);
        let mut model = Self::with_buffers(a, a_buf, b_buf, o_buf);
        // Reverse of the `finish_into` put order (LIFO pool), so each
        // scratch stream gets its own grown storage back.
        model.trace_miss_runs = pool.take_runs();
        model.pending_o = pool.take_runs();
        model
    }

    fn with_buffers(
        a: OperandBufferSpec,
        a_buf: RunBuffer,
        b_buf: RunBuffer,
        o_buf: RunBuffer,
    ) -> Self {
        DramModel {
            a_buf,
            b_buf,
            o_buf,
            word_bytes: a.word_bytes,
            prev_duration: None,
            summary: DramSummary {
                word_bytes: a.word_bytes,
                ..DramSummary::default()
            },
            trace_miss_runs: AddrRuns::new(),
            trace_miss_elems: Vec::new(),
            pending_o: AddrRuns::new(),
        }
    }

    /// Applies deferred output installs in order. Must run before any
    /// operation that observes OFMAP buffer state.
    fn flush_pending_o(&mut self) {
        if !self.pending_o.is_empty() {
            self.o_buf.install(&self.pending_o);
            self.pending_o.clear();
        }
    }

    /// Processes one fold given element-granular demand vectors.
    ///
    /// * `duration` — the fold's compute cycles (Eq. 3 of the paper).
    /// * `a_demand` / `b_demand` — the fold's unique operand addresses in
    ///   first-use order.
    /// * `o_spill` — partial-sum addresses this fold must *re-read* to
    ///   accumulate into (empty for OS, and for the first contraction fold
    ///   of WS/IS). A spill that still sits in the OFMAP buffer accumulates
    ///   on-chip; a miss is a DRAM read-back.
    /// * `o_writes` — output addresses produced by this fold (finals or
    ///   partials). They stream to DRAM as produced — the original tool's
    ///   behaviour — and are write-allocated into the OFMAP buffer so later
    ///   spill reads can hit.
    ///
    /// This is a compatibility wrapper over [`DramModel::fold_runs`]: the
    /// vectors are run-length compressed order-preservingly (only
    /// consecutive ascending-adjacent addresses coalesce), so the counts
    /// are identical to feeding the elements one by one.
    pub fn fold(
        &mut self,
        duration: u64,
        a_demand: Vec<u64>,
        b_demand: Vec<u64>,
        o_spill: Vec<u64>,
        o_writes: Vec<u64>,
    ) -> FoldTraffic {
        let a: AddrRuns = a_demand.into_iter().collect();
        let b: AddrRuns = b_demand.into_iter().collect();
        let o_spill: AddrRuns = o_spill.into_iter().collect();
        let o_writes: AddrRuns = o_writes.into_iter().collect();
        self.fold_runs(duration, &a, &b, &o_spill, &o_writes)
    }

    /// Processes one fold of run-compressed demand — the hot path. See
    /// [`DramModel::fold`] for the operand semantics; all buffer traffic
    /// here is computed per-run instead of per-element.
    pub fn fold_runs(
        &mut self,
        duration: u64,
        a_demand: &AddrRuns,
        b_demand: &AddrRuns,
        o_spill: &AddrRuns,
        o_writes: &AddrRuns,
    ) -> FoldTraffic {
        let a_stats = self.a_buf.epoch(a_demand);
        let b_stats = self.b_buf.epoch(b_demand);
        // Partial sums live in the OFMAP buffer; a spill address that is not
        // resident must be fetched back from DRAM (it was written out
        // earlier when produced). An empty spill epoch observes nothing, so
        // deferred installs only flush when a real probe arrives.
        let o_stats = if o_spill.is_empty() {
            EpochStats::default()
        } else {
            self.flush_pending_o();
            self.o_buf.epoch(o_spill)
        };
        self.pending_o.extend_runs(o_writes);
        self.account(
            duration,
            a_stats.misses,
            b_stats.misses,
            o_stats.misses,
            o_writes.element_count(),
        )
    }

    /// Like [`DramModel::fold`], but also reconstructs the interface
    /// schedule into `tracer` (the "DRAM R/W" trace of Fig. 2): the fold's
    /// miss addresses in fetch order as the read trace, the produced
    /// outputs as the write trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the trace writers.
    pub fn fold_traced<W: std::io::Write>(
        &mut self,
        duration: u64,
        a_demand: Vec<u64>,
        b_demand: Vec<u64>,
        o_spill: Vec<u64>,
        o_writes: Vec<u64>,
        tracer: &mut crate::dram_trace::DramTraceWriter<W>,
    ) -> std::io::Result<FoldTraffic> {
        let a: AddrRuns = a_demand.into_iter().collect();
        let b: AddrRuns = b_demand.into_iter().collect();
        let o_spill: AddrRuns = o_spill.into_iter().collect();
        // Miss runs come out in fetch order; expanding them reproduces the
        // element-granular miss sequence exactly (within a missing span the
        // element order is ascending, and spans appear in demand order).
        // Both scratch buffers persist across folds (clear-don't-drop).
        self.flush_pending_o();
        self.trace_miss_runs.clear();
        let a_stats = self.a_buf.epoch_with_misses(&a, &mut self.trace_miss_runs);
        let b_stats = self.b_buf.epoch_with_misses(&b, &mut self.trace_miss_runs);
        let o_stats = self
            .o_buf
            .epoch_with_misses(&o_spill, &mut self.trace_miss_runs);
        self.trace_miss_elems.clear();
        self.trace_miss_elems
            .extend(self.trace_miss_runs.iter_elements());
        tracer.fold(duration, &self.trace_miss_elems, &o_writes)?;
        let o_write_count = o_writes.len() as u64;
        let o_write_runs: AddrRuns = o_writes.into_iter().collect();
        self.o_buf.install(&o_write_runs);
        Ok(self.account(
            duration,
            a_stats.misses,
            b_stats.misses,
            o_stats.misses,
            o_write_count,
        ))
    }

    fn account(
        &mut self,
        duration: u64,
        a_misses: u64,
        b_misses: u64,
        o_spill_misses: u64,
        o_write_count: u64,
    ) -> FoldTraffic {
        let read_elems = a_misses + b_misses + o_spill_misses;
        let read_bytes = read_elems * self.word_bytes;
        let write_bytes = o_write_count * self.word_bytes;

        // Double buffering: fold f's misses arrive during fold f-1. The
        // first fold's data loads during a cold-start window of its own
        // length (the tool's prefetch lead-in).
        let window = self.prev_duration.unwrap_or(duration);
        self.summary.read_bw.record(window, read_bytes);
        self.summary.write_bw.record(duration, write_bytes);

        self.summary.reads_a += a_misses;
        self.summary.reads_b += b_misses;
        self.summary.reads_o += o_spill_misses;
        self.summary.writes_o += o_write_count;
        self.summary.folds += 1;
        self.prev_duration = Some(duration);

        FoldTraffic {
            duration,
            a_misses,
            b_misses,
            o_spill_misses,
            read_bytes,
            write_bytes,
            required_read_bw: if window > 0 {
                read_bytes as f64 / window as f64
            } else {
                read_bytes as f64
            },
        }
    }

    /// Finalizes and returns the layer summary.
    pub fn finish(self) -> DramSummary {
        self.summary
    }

    /// Finalizes the layer summary and retires the operand buffers into
    /// `pool` for the next simulation — the counterpart of
    /// [`DramModel::new_in`].
    pub fn finish_into(self, pool: &mut BufferPool) -> DramSummary {
        pool.put(self.a_buf);
        pool.put(self.b_buf);
        pool.put(self.o_buf);
        pool.put_runs(self.pending_o);
        pool.put_runs(self.trace_miss_runs);
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(kb: u64) -> OperandBufferSpec {
        OperandBufferSpec::from_kb(kb, 1)
    }

    #[test]
    fn capacity_from_kb_and_word_size() {
        assert_eq!(
            OperandBufferSpec::from_kb(512, 1).capacity_elems(),
            512 * 1024
        );
        assert_eq!(
            OperandBufferSpec::from_kb(512, 4).capacity_elems(),
            128 * 1024
        );
        // Zero word size is clamped to 1.
        assert_eq!(OperandBufferSpec::from_kb(1, 0).capacity_elems(), 1024);
    }

    #[test]
    fn cold_start_fetches_everything_once() {
        let mut dram = DramModel::new(kb(64), kb(64), kb(64));
        let t = dram.fold(
            10,
            (0..50).collect(),
            (100..120).collect(),
            vec![],
            (200..205).collect(),
        );
        assert_eq!(t.a_misses, 50);
        assert_eq!(t.b_misses, 20);
        assert_eq!(t.read_bytes, 70);
        assert_eq!(t.write_bytes, 5);
        let s = dram.finish();
        assert_eq!(s.reads_a, 50);
        assert_eq!(s.writes_o, 5);
        assert_eq!(s.total_bytes(), 75);
    }

    #[test]
    fn warm_folds_reuse_resident_data() {
        let mut dram = DramModel::new(kb(64), kb(64), kb(64));
        dram.fold(10, (0..50).collect(), (100..120).collect(), vec![], vec![]);
        let t = dram.fold(10, (0..50).collect(), (100..120).collect(), vec![], vec![]);
        assert_eq!(t.a_misses + t.b_misses, 0);
        assert_eq!(t.required_read_bw, 0.0);
    }

    #[test]
    fn tiny_buffer_forces_refetch() {
        // 32-element A buffer cannot hold the 50-element working set.
        let tiny = OperandBufferSpec {
            size_bytes: 32,
            word_bytes: 1,
        };
        let mut dram = DramModel::new(tiny, kb(64), kb(64));
        dram.fold(10, (0..50).collect(), vec![], vec![], vec![]);
        let t = dram.fold(10, (0..50).collect(), vec![], vec![], vec![]);
        assert_eq!(t.a_misses, 50, "thrash should refetch all of A");
    }

    #[test]
    fn resident_partials_accumulate_on_chip() {
        let mut dram = DramModel::new(kb(64), kb(64), kb(64));
        // Fold 0 writes 10 partials; they are write-allocated.
        dram.fold(10, vec![], vec![], vec![], (0..10).collect());
        // Fold 1 re-reads them: all hit the OFMAP buffer.
        let t = dram.fold(10, vec![], vec![], (0..10).collect(), (0..10).collect());
        assert_eq!(t.o_spill_misses, 0);
        let s = dram.finish();
        assert_eq!(s.reads_o, 0);
        assert_eq!(s.writes_o, 20); // every produced value streams out
    }

    #[test]
    fn evicted_partials_round_trip_to_dram() {
        // OFMAP buffer of 4 elements cannot hold 10 live partials.
        let tiny = OperandBufferSpec {
            size_bytes: 4,
            word_bytes: 1,
        };
        let mut dram = DramModel::new(kb(64), kb(64), tiny);
        dram.fold(10, vec![], vec![], vec![], (0..10).collect());
        let t = dram.fold(10, vec![], vec![], (0..10).collect(), (0..10).collect());
        assert!(t.o_spill_misses >= 6, "most partials were evicted");
        let s = dram.finish();
        assert!(s.reads_o >= 6);
    }

    #[test]
    fn bandwidth_requirement_uses_previous_fold_window() {
        let mut dram = DramModel::new(kb(64), kb(64), kb(64));
        // Fold 0: 100 bytes over its own 100-cycle window -> 1 B/c.
        let t0 = dram.fold(100, (0..100).collect(), vec![], vec![], vec![]);
        assert_eq!(t0.required_read_bw, 1.0);
        // Fold 1 needs 200 new bytes prefetched during fold 0's 100 cycles.
        let t1 = dram.fold(50, (1000..1200).collect(), vec![], vec![], vec![]);
        assert_eq!(t1.required_read_bw, 2.0);
        let s = dram.finish();
        assert_eq!(s.read_bw.peak(), 2.0);
    }

    #[test]
    fn fold_traced_matches_untraced_accounting() {
        use crate::dram_trace::DramTraceWriter;
        let mut plain = DramModel::new(kb(1), kb(1), kb(1));
        let mut traced = DramModel::new(kb(1), kb(1), kb(1));
        let mut tracer = DramTraceWriter::new(Vec::new(), Vec::new());
        for step in 0..4u64 {
            let a: Vec<u64> = (step * 100..step * 100 + 40).collect();
            let b: Vec<u64> = (5000..5020).collect();
            let w: Vec<u64> = (9000 + step * 10..9000 + step * 10 + 10).collect();
            let t1 = plain.fold(25, a.clone(), b.clone(), vec![], w.clone());
            let t2 = traced
                .fold_traced(25, a, b, vec![], w, &mut tracer)
                .unwrap();
            assert_eq!(t1, t2);
        }
        assert_eq!(plain.finish(), traced.finish());
        let (reads, writes) = tracer.finish().unwrap();
        assert!(!reads.is_empty());
        assert!(!writes.is_empty());
    }

    #[test]
    fn merge_concurrent_sums_partition_traffic() {
        let mut a = DramModel::new(kb(64), kb(64), kb(64));
        a.fold(10, (0..10).collect(), vec![], vec![], (30..32).collect());
        let mut sa = a.finish();
        let mut b = DramModel::new(kb(64), kb(64), kb(64));
        b.fold(10, (0..10).collect(), vec![], vec![], (30..32).collect());
        let sb = b.finish();
        sa.merge_concurrent(&sb);
        assert_eq!(sa.reads_a, 20);
        assert_eq!(sa.writes_o, 4);
        assert_eq!(sa.read_bw.peak(), 2.0);
    }
}
