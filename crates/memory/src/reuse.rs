//! Reuse-distance analysis: miss counts for *every* buffer capacity in one
//! pass.
//!
//! The double-buffer model answers "how many misses at capacity C?" for one
//! C per simulation. SRAM sizing studies (our `ext_sram_sweep` ablation,
//! or any "how much SRAM does this layer want?" question) need the whole
//! curve. The classic Mattson stack algorithm computes it in a single pass
//! over the demand stream for any stack algorithm; this implementation
//! profiles LRU stack distances, which upper-bounds the FIFO buffer's hit
//! rate and pinpoints the working-set knees exactly.

use std::collections::BTreeMap;

use crate::fast_hash::AddrMap;
use crate::runs::{AddrRuns, IntervalSet};

/// Histogram of LRU stack distances for a demand stream.
///
/// `distance d` means: the address was last touched with `d` distinct
/// addresses touched in between, so any LRU buffer of capacity `> d` hits.
/// Cold (first-touch) accesses are counted separately — no capacity avoids
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with stack distance exactly `d`.
    histogram: Vec<u64>,
    /// First-touch accesses (compulsory misses at any capacity).
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// Builds the profile of `demands` (processed in order).
    ///
    /// Runs in O(N log N) using an order-statistics walk over a Fenwick
    /// tree of "most-recent-touch" flags.
    pub fn from_demands(demands: impl IntoIterator<Item = u64>) -> Self {
        let demands: Vec<u64> = demands.into_iter().collect();
        let mut last_position: AddrMap<usize> = AddrMap::default();
        // Fenwick trees cannot be grown by zero-extension (new nodes would
        // miss counts already recorded below them), so size it up front.
        let mut fenwick = Fenwick::with_len(demands.len());
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for (pos, &addr) in demands.iter().enumerate() {
            total += 1;
            match last_position.insert(addr, pos) {
                None => cold += 1,
                Some(prev) => {
                    // Distinct addresses touched strictly between prev and
                    // pos = live flags in (prev, pos).
                    let distance = fenwick.range_count(prev + 1, pos);
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    // The previous touch position is no longer the last one.
                    fenwick.clear(prev);
                }
            }
            fenwick.set(pos);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Builds the profile from a run-compressed demand stream without
    /// expanding it: O(R · log R) in the number of runs and last-touch
    /// segments instead of O(N log N) elements.
    ///
    /// Each run must be internally ascending and duplicate-free (true of
    /// every [`AddrRuns`] run by construction — a run *is* a contiguous
    /// ascending interval). The result is identical to
    /// [`ReuseProfile::from_demands`] over the expanded element stream.
    ///
    /// The key observation: for every element of a maximal segment whose
    /// previous touch lies in the same earlier run, the LRU stack distance
    /// is *constant* — walking the segment left to right, each step gains
    /// one "touched earlier in the current run" address and loses exactly
    /// one "still-live above" address of the previous toucher.
    pub fn from_runs(runs: &AddrRuns) -> Self {
        let n = runs.run_count();
        // fenwick[t] = number of still-live addresses whose most recent
        // touch was run t (decremented eagerly as later runs re-touch them).
        let mut fenwick = Fenwick::with_len(n);
        let mut live: Vec<IntervalSet> = Vec::with_capacity(n);
        // Disjoint last-touch segments: start -> (end, most recent run).
        let mut last_touch: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for (i, run) in runs.runs().iter().enumerate() {
            let (s, e) = (run.start, run.end());
            total += run.len;
            // Last-touch segments overlapping [s, e), ascending. They are
            // disjoint with ascending ends, so the overlap is a contiguous
            // suffix of the entries starting below `e`.
            let mut overlapping: Vec<(u64, u64, usize)> = last_touch
                .range(..e)
                .rev()
                .take_while(|&(_, &(en, _))| en > s)
                .map(|(&st, &(en, j))| (st, en, j))
                .collect();
            overlapping.reverse();
            let mut pos = s;
            for &(seg_start, seg_end, j) in &overlapping {
                let a1 = seg_start.max(s);
                let a2 = seg_end.min(e);
                cold += a1 - pos; // uncovered gap: first touches
                pos = a2;
                let seg = a2 - a1;
                // Constant stack distance for the whole segment (evaluated
                // at its last element a2-1): addresses touched earlier in
                // this run, plus run j's still-live tail above the segment,
                // plus everything still live in runs strictly between.
                let distance =
                    (a2 - 1 - s) + live[j].len_at_or_above(a2) + fenwick.range_sum(j + 1, i);
                let distance = distance as usize;
                if histogram.len() <= distance {
                    histogram.resize(distance + 1, 0);
                }
                histogram[distance] += seg;
                // These addresses are now last-touched by run i.
                live[j].remove_covered(a1, a2);
                fenwick.add(j, -(seg as i64));
            }
            cold += e - pos; // tail gap
                             // Rewrite the last-touch map for [s, e).
            for &(st, _, _) in &overlapping {
                last_touch.remove(&st);
            }
            if let Some(&(st, _, j)) = overlapping.first() {
                if st < s {
                    last_touch.insert(st, (s, j));
                }
            }
            if let Some(&(_, en, j)) = overlapping.last() {
                if en > e {
                    last_touch.insert(e, (en, j));
                }
            }
            last_touch.insert(s, (e, i));
            let mut now_live = IntervalSet::new();
            now_live.insert(s, e);
            live.push(now_live);
            fenwick.add(i, run.len as i64);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Total accesses profiled.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// First-touch (compulsory) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU buffer of `capacity` elements would take on this
    /// stream: cold misses plus every access with stack distance
    /// ≥ capacity.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let reuse_misses: u64 = self.histogram.iter().skip(capacity).sum();
        self.cold + reuse_misses
    }

    /// Hit rate at `capacity` (0.0 for an empty stream).
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.misses_at(capacity) as f64 / self.total as f64
        }
    }

    /// The miss curve sampled at the given capacities — the input for an
    /// SRAM sizing plot.
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<(usize, u64)> {
        capacities.iter().map(|&c| (c, self.misses_at(c))).collect()
    }

    /// The smallest capacity achieving at least `target` hit rate, if any
    /// capacity does (cold misses bound the maximum achievable rate).
    pub fn capacity_for_hit_rate(&self, target: f64) -> Option<usize> {
        let max_needed = self.histogram.len();
        (0..=max_needed).find(|&c| self.hit_rate_at(c) >= target)
    }
}

/// A fixed-size Fenwick (binary indexed) tree over access positions.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn with_len(len: usize) -> Self {
        Fenwick { tree: vec![0; len] }
    }

    fn add(&mut self, mut index: usize, delta: i64) {
        let n = self.tree.len();
        while index < n {
            self.tree[index] += delta;
            index |= index + 1;
        }
    }

    fn set(&mut self, index: usize) {
        self.add(index, 1);
    }

    fn clear(&mut self, index: usize) {
        self.add(index, -1);
    }

    /// Sum of flags in `[0, end)`.
    fn prefix(&self, end: usize) -> i64 {
        let mut sum = 0;
        let mut i = end;
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }

    /// Count of set flags with positions in `[lo, hi)`.
    fn range_count(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        (self.prefix(hi) - self.prefix(lo)) as usize
    }

    /// Sum of (nonnegative) counts in `[lo, hi)` — the same walk as
    /// [`Fenwick::range_count`], named for the run-granular profile where
    /// nodes hold live-element counts rather than 0/1 flags.
    fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        self.range_count(lo, hi) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_stream_has_uniform_distance() {
        // a b c a b c a b c: after the cold pass, every access has stack
        // distance 2 (two distinct addresses in between).
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(profile.cold_accesses(), 3);
        assert_eq!(profile.total_accesses(), 9);
        assert_eq!(profile.misses_at(2), 3 + 6); // capacity 2 < distance+1
        assert_eq!(profile.misses_at(3), 3); // fits: only cold misses
        assert!((profile.hit_rate_at(3) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let profile = ReuseProfile::from_demands([7, 7, 7, 7]);
        assert_eq!(profile.cold_accesses(), 1);
        assert_eq!(profile.misses_at(1), 1);
        assert_eq!(profile.misses_at(0), 4);
    }

    #[test]
    fn streaming_stream_never_hits() {
        let profile = ReuseProfile::from_demands(0..100u64);
        assert_eq!(profile.cold_accesses(), 100);
        assert_eq!(profile.misses_at(1_000_000), 100);
        assert_eq!(profile.hit_rate_at(1_000_000), 0.0);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        // A mixed stream with several working-set sizes.
        let mut demands = Vec::new();
        for round in 0..10u64 {
            for a in 0..(4 + round % 3) {
                demands.push(a);
            }
        }
        let profile = ReuseProfile::from_demands(demands);
        let caps: Vec<usize> = (0..10).collect();
        let curve = profile.miss_curve(&caps);
        assert!(curve.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn matches_brute_force_lru() {
        // Reference LRU simulation vs the stack-distance prediction.
        fn lru_misses(demands: &[u64], capacity: usize) -> u64 {
            let mut stack: Vec<u64> = Vec::new();
            let mut misses = 0;
            for &a in demands {
                if let Some(idx) = stack.iter().position(|&x| x == a) {
                    stack.remove(idx);
                } else {
                    misses += 1;
                    if capacity == 0 {
                        continue;
                    }
                    if stack.len() >= capacity {
                        stack.pop();
                    }
                }
                if capacity > 0 {
                    stack.insert(0, a);
                }
            }
            misses
        }
        let demands: Vec<u64> = [
            1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 7, 3, 2, 1, 8, 2, 3,
        ]
        .to_vec();
        let profile = ReuseProfile::from_demands(demands.iter().copied());
        for capacity in 0..10 {
            assert_eq!(
                profile.misses_at(capacity),
                lru_misses(&demands, capacity),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn capacity_for_hit_rate_finds_the_knee() {
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        // 9 of 12 accesses can hit with capacity 3.
        assert_eq!(profile.capacity_for_hit_rate(0.7), Some(3));
        // Cold misses cap the hit rate at 75%.
        assert_eq!(profile.capacity_for_hit_rate(0.9), None);
    }

    #[test]
    fn empty_stream() {
        let profile = ReuseProfile::from_demands(std::iter::empty());
        assert_eq!(profile.total_accesses(), 0);
        assert_eq!(profile.misses_at(10), 0);
        assert_eq!(profile.hit_rate_at(10), 0.0);
    }

    fn runs_from_intervals(intervals: &[(u64, u64)]) -> AddrRuns {
        let mut runs = AddrRuns::new();
        // Push through a non-coalescing path is unnecessary: adjacent
        // pushes coalescing is exactly the stream the generators produce.
        for &(start, len) in intervals {
            runs.push(start, len);
        }
        runs
    }

    fn assert_runs_match_demands(intervals: &[(u64, u64)]) {
        let runs = runs_from_intervals(intervals);
        let by_runs = ReuseProfile::from_runs(&runs);
        let by_elems = ReuseProfile::from_demands(runs.iter_elements());
        assert_eq!(by_runs, by_elems, "intervals {intervals:?}");
    }

    #[test]
    fn from_runs_matches_from_demands_on_worked_examples() {
        // The two hand-verified examples from the derivation.
        assert_runs_match_demands(&[(0, 5), (5, 3), (0, 8)]);
        assert_runs_match_demands(&[(10, 10), (0, 5), (0, 30)]);
        // Disjoint streaming: all cold.
        assert_runs_match_demands(&[(0, 8), (100, 8), (200, 8)]);
        // Exact repeat.
        assert_runs_match_demands(&[(0, 16), (0, 16), (0, 16)]);
        // Partial overlaps crossing several last-touch segments.
        assert_runs_match_demands(&[(0, 10), (20, 10), (5, 20), (0, 40), (15, 3), (2, 30)]);
        // Single-element runs (degenerate to the element algorithm).
        assert_runs_match_demands(&[(3, 1), (1, 1), (3, 1), (2, 1), (1, 1)]);
        // Re-touch that splits a previous run's live interval in half.
        assert_runs_match_demands(&[(0, 30), (10, 5), (0, 30), (12, 1), (0, 13)]);
    }

    #[test]
    fn from_runs_matches_from_demands_pseudorandom() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for trial in 0..50 {
            let count = next() % 12 + 1;
            let intervals: Vec<(u64, u64)> =
                (0..count).map(|_| (next() % 60, next() % 25 + 1)).collect();
            let runs = runs_from_intervals(&intervals);
            let by_runs = ReuseProfile::from_runs(&runs);
            let by_elems = ReuseProfile::from_demands(runs.iter_elements());
            assert_eq!(by_runs, by_elems, "trial {trial}: {intervals:?}");
        }
    }
}
