//! Reuse-distance analysis: miss counts for *every* buffer capacity in one
//! pass.
//!
//! The double-buffer model answers "how many misses at capacity C?" for one
//! C per simulation. SRAM sizing studies (our `ext_sram_sweep` ablation,
//! or any "how much SRAM does this layer want?" question) need the whole
//! curve. The classic Mattson stack algorithm computes it in a single pass
//! over the demand stream for any stack algorithm; this implementation
//! profiles LRU stack distances, which upper-bounds the FIFO buffer's hit
//! rate and pinpoints the working-set knees exactly.

use crate::fast_hash::AddrMap;
use crate::runs::{AddrRuns, IntervalSet};

/// Histogram of LRU stack distances for a demand stream.
///
/// `distance d` means: the address was last touched with `d` distinct
/// addresses touched in between, so any LRU buffer of capacity `> d` hits.
/// Cold (first-touch) accesses are counted separately — no capacity avoids
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with stack distance exactly `d`.
    histogram: Vec<u64>,
    /// First-touch accesses (compulsory misses at any capacity).
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// Builds the profile of `demands` (processed in order).
    ///
    /// Runs in O(N log N) using an order-statistics walk over a Fenwick
    /// tree of "most-recent-touch" flags. The stream is consumed as it
    /// arrives — the Fenwick tree grows by doubling (with an O(n) rebuild
    /// from its kept value array), so no pass materializes the stream.
    pub fn from_demands(demands: impl IntoIterator<Item = u64>) -> Self {
        let mut last_position: AddrMap<usize> = AddrMap::default();
        let mut fenwick = Fenwick::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for (pos, addr) in demands.into_iter().enumerate() {
            total += 1;
            match last_position.insert(addr, pos) {
                None => cold += 1,
                Some(prev) => {
                    // Distinct addresses touched strictly between prev and
                    // pos = live flags in (prev, pos).
                    let distance = fenwick.range_count(prev + 1, pos);
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    // The previous touch position is no longer the last one.
                    fenwick.clear(prev);
                }
            }
            fenwick.set(pos);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Builds the profile from a run-compressed demand stream without
    /// expanding it: O(R · log R) in the number of runs and last-touch
    /// segments instead of O(N log N) elements.
    ///
    /// Each run must be internally ascending and duplicate-free (true of
    /// every [`AddrRuns`] run by construction — a run *is* a contiguous
    /// ascending interval). The result is identical to
    /// [`ReuseProfile::from_demands`] over the expanded element stream.
    ///
    /// The key observation: for every element of a maximal segment whose
    /// previous touch lies in the same earlier run, the LRU stack distance
    /// is *constant* — walking the segment left to right, each step gains
    /// one "touched earlier in the current run" address and loses exactly
    /// one "still-live above" address of the previous toucher.
    pub fn from_runs(runs: &AddrRuns) -> Self {
        Self::from_runs_in(runs, &mut ReuseScratch::new())
    }

    /// [`ReuseProfile::from_runs`] with caller-provided scratch, so
    /// repeated profiling (sweeps, per-layer telemetry) reuses the Fenwick
    /// storage, live-interval pool and last-touch segment arrays instead
    /// of reallocating them per call.
    pub fn from_runs_in(runs: &AddrRuns, scratch: &mut ReuseScratch) -> Self {
        let n = runs.run_count();
        assert!(
            u32::try_from(n).is_ok(),
            "from_runs supports at most u32::MAX runs per stream"
        );
        let ReuseScratch {
            fenwick,
            live,
            seg_starts,
            seg_ends,
            seg_owners,
        } = scratch;
        // fenwick[t] = number of still-live addresses whose most recent
        // touch was run t (decremented eagerly as later runs re-touch them).
        fenwick.reset(n);
        if live.len() < n {
            live.resize_with(n, IntervalSet::new);
        }
        for set in live[..n].iter_mut() {
            set.clear();
        }
        // Disjoint last-touch segments, SoA and sorted: segment k covers
        // [seg_starts[k], seg_ends[k]) and was last touched by run
        // seg_owners[k]. Starts and ends are both strictly increasing, so
        // the segments overlapping a run form one contiguous index range
        // found by two binary probes.
        seg_starts.clear();
        seg_ends.clear();
        seg_owners.clear();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for i in 0..n {
            let s = runs.starts()[i];
            let len = runs.lens()[i];
            let e = s + len;
            total += len;
            let lo = seg_ends.partition_point(|&en| en <= s);
            let hi = seg_starts.partition_point(|&st| st < e);
            let mut pos = s;
            for k in lo..hi {
                let (seg_start, seg_end) = (seg_starts[k], seg_ends[k]);
                let j = seg_owners[k] as usize;
                let a1 = seg_start.max(s);
                let a2 = seg_end.min(e);
                cold += a1 - pos; // uncovered gap: first touches
                pos = a2;
                let seg = a2 - a1;
                // Constant stack distance for the whole segment (evaluated
                // at its last element a2-1): addresses touched earlier in
                // this run, plus run j's still-live tail above the segment,
                // plus everything still live in runs strictly between.
                let distance =
                    (a2 - 1 - s) + live[j].len_at_or_above(a2) + fenwick.range_sum(j + 1, i);
                let distance = distance as usize;
                if histogram.len() <= distance {
                    histogram.resize(distance + 1, 0);
                }
                histogram[distance] += seg;
                // These addresses are now last-touched by run i.
                live[j].remove_covered(a1, a2);
                fenwick.add(j, -(seg as i64));
            }
            cold += e - pos; // tail gap
                             // Rewrite the last-touch segments covering [s, e): an optional
                             // kept head of the first overlap, the new segment, an optional
                             // kept tail of the last overlap.
            let mut repl = [(0u64, 0u64, 0u32); 3];
            let mut count = 0;
            if hi > lo && seg_starts[lo] < s {
                repl[count] = (seg_starts[lo], s, seg_owners[lo]);
                count += 1;
            }
            let tail = (hi > lo && seg_ends[hi - 1] > e)
                .then(|| (e, seg_ends[hi - 1], seg_owners[hi - 1]));
            repl[count] = (s, e, i as u32);
            count += 1;
            if let Some(tail) = tail {
                repl[count] = tail;
                count += 1;
            }
            splice_segments(seg_starts, seg_ends, seg_owners, lo, hi, &repl[..count]);
            live[i].insert(s, e);
            fenwick.add(i, len as i64);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Total accesses profiled.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// First-touch (compulsory) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU buffer of `capacity` elements would take on this
    /// stream: cold misses plus every access with stack distance
    /// ≥ capacity.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let reuse_misses: u64 = self.histogram.iter().skip(capacity).sum();
        self.cold + reuse_misses
    }

    /// Hit rate at `capacity` (0.0 for an empty stream).
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.misses_at(capacity) as f64 / self.total as f64
        }
    }

    /// The miss curve sampled at the given capacities — the input for an
    /// SRAM sizing plot.
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<(usize, u64)> {
        capacities.iter().map(|&c| (c, self.misses_at(c))).collect()
    }

    /// The smallest capacity achieving at least `target` hit rate, if any
    /// capacity does (cold misses bound the maximum achievable rate).
    pub fn capacity_for_hit_rate(&self, target: f64) -> Option<usize> {
        let max_needed = self.histogram.len();
        (0..=max_needed).find(|&c| self.hit_rate_at(c) >= target)
    }
}

/// Reusable scratch for [`ReuseProfile::from_runs_in`]: Fenwick storage,
/// the per-run live-interval pool, and the SoA last-touch segment arrays.
/// All vectors are cleared, never dropped, between profiles.
#[derive(Debug, Default)]
pub struct ReuseScratch {
    fenwick: Fenwick,
    live: Vec<IntervalSet>,
    seg_starts: Vec<u64>,
    seg_ends: Vec<u64>,
    seg_owners: Vec<u32>,
}

impl ReuseScratch {
    /// Empty scratch; grows to the largest profiled stream and stays there.
    pub fn new() -> ReuseScratch {
        ReuseScratch::default()
    }
}

/// Replaces segments `[lo, hi)` of the parallel SoA arrays with `repl`
/// (at most 3 entries), reusing the overwritten slots.
fn splice_segments(
    starts: &mut Vec<u64>,
    ends: &mut Vec<u64>,
    owners: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    repl: &[(u64, u64, u32)],
) {
    let old = hi - lo;
    let common = repl.len().min(old);
    for (offset, &(s, e, o)) in repl[..common].iter().enumerate() {
        starts[lo + offset] = s;
        ends[lo + offset] = e;
        owners[lo + offset] = o;
    }
    if repl.len() < old {
        starts.drain(lo + repl.len()..hi);
        ends.drain(lo + repl.len()..hi);
        owners.drain(lo + repl.len()..hi);
    } else {
        for (offset, &(s, e, o)) in repl[old..].iter().enumerate() {
            starts.insert(hi + offset, s);
            ends.insert(hi + offset, e);
            owners.insert(hi + offset, o);
        }
    }
}

/// A growable Fenwick (binary indexed) tree over access positions.
///
/// Fenwick trees cannot be grown by zero-extension (new nodes would miss
/// counts already recorded below them), so the raw per-index values are
/// kept alongside: growth doubles the value array and rebuilds the tree in
/// O(n), amortizing to O(1) per insertion. `reset` re-sizes in place for
/// scratch reuse.
#[derive(Debug, Default)]
struct Fenwick {
    tree: Vec<i64>,
    values: Vec<i64>,
}

impl Fenwick {
    fn new() -> Self {
        Fenwick::default()
    }

    /// Zeroes the tree at exactly `len` positions, keeping allocations.
    fn reset(&mut self, len: usize) {
        self.values.clear();
        self.values.resize(len, 0);
        self.tree.clear();
        self.tree.resize(len, 0);
    }

    fn ensure(&mut self, index: usize) {
        if index < self.values.len() {
            return;
        }
        self.values.resize((index + 1).next_power_of_two(), 0);
        self.rebuild();
    }

    /// O(n) tree construction from the value array.
    fn rebuild(&mut self) {
        let n = self.values.len();
        self.tree.clear();
        self.tree.extend_from_slice(&self.values);
        for i in 0..n {
            let j = i | (i + 1);
            if j < n {
                self.tree[j] += self.tree[i];
            }
        }
    }

    fn add(&mut self, index: usize, delta: i64) {
        self.ensure(index);
        self.values[index] += delta;
        let n = self.tree.len();
        let mut i = index;
        while i < n {
            self.tree[i] += delta;
            i |= i + 1;
        }
    }

    fn set(&mut self, index: usize) {
        self.add(index, 1);
    }

    fn clear(&mut self, index: usize) {
        self.add(index, -1);
    }

    /// Sum of flags in `[0, end)`.
    fn prefix(&self, end: usize) -> i64 {
        let mut sum = 0;
        let mut i = end.min(self.tree.len());
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }

    /// Count of set flags with positions in `[lo, hi)`.
    fn range_count(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        (self.prefix(hi) - self.prefix(lo)) as usize
    }

    /// Sum of (nonnegative) counts in `[lo, hi)` — the same walk as
    /// [`Fenwick::range_count`], named for the run-granular profile where
    /// nodes hold live-element counts rather than 0/1 flags.
    fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        self.range_count(lo, hi) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_stream_has_uniform_distance() {
        // a b c a b c a b c: after the cold pass, every access has stack
        // distance 2 (two distinct addresses in between).
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(profile.cold_accesses(), 3);
        assert_eq!(profile.total_accesses(), 9);
        assert_eq!(profile.misses_at(2), 3 + 6); // capacity 2 < distance+1
        assert_eq!(profile.misses_at(3), 3); // fits: only cold misses
        assert!((profile.hit_rate_at(3) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let profile = ReuseProfile::from_demands([7, 7, 7, 7]);
        assert_eq!(profile.cold_accesses(), 1);
        assert_eq!(profile.misses_at(1), 1);
        assert_eq!(profile.misses_at(0), 4);
    }

    #[test]
    fn streaming_stream_never_hits() {
        let profile = ReuseProfile::from_demands(0..100u64);
        assert_eq!(profile.cold_accesses(), 100);
        assert_eq!(profile.misses_at(1_000_000), 100);
        assert_eq!(profile.hit_rate_at(1_000_000), 0.0);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        // A mixed stream with several working-set sizes.
        let mut demands = Vec::new();
        for round in 0..10u64 {
            for a in 0..(4 + round % 3) {
                demands.push(a);
            }
        }
        let profile = ReuseProfile::from_demands(demands);
        let caps: Vec<usize> = (0..10).collect();
        let curve = profile.miss_curve(&caps);
        assert!(curve.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn matches_brute_force_lru() {
        // Reference LRU simulation vs the stack-distance prediction.
        fn lru_misses(demands: &[u64], capacity: usize) -> u64 {
            let mut stack: Vec<u64> = Vec::new();
            let mut misses = 0;
            for &a in demands {
                if let Some(idx) = stack.iter().position(|&x| x == a) {
                    stack.remove(idx);
                } else {
                    misses += 1;
                    if capacity == 0 {
                        continue;
                    }
                    if stack.len() >= capacity {
                        stack.pop();
                    }
                }
                if capacity > 0 {
                    stack.insert(0, a);
                }
            }
            misses
        }
        let demands: Vec<u64> = [
            1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 7, 3, 2, 1, 8, 2, 3,
        ]
        .to_vec();
        let profile = ReuseProfile::from_demands(demands.iter().copied());
        for capacity in 0..10 {
            assert_eq!(
                profile.misses_at(capacity),
                lru_misses(&demands, capacity),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn capacity_for_hit_rate_finds_the_knee() {
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        // 9 of 12 accesses can hit with capacity 3.
        assert_eq!(profile.capacity_for_hit_rate(0.7), Some(3));
        // Cold misses cap the hit rate at 75%.
        assert_eq!(profile.capacity_for_hit_rate(0.9), None);
    }

    #[test]
    fn empty_stream() {
        let profile = ReuseProfile::from_demands(std::iter::empty());
        assert_eq!(profile.total_accesses(), 0);
        assert_eq!(profile.misses_at(10), 0);
        assert_eq!(profile.hit_rate_at(10), 0.0);
    }

    fn runs_from_intervals(intervals: &[(u64, u64)]) -> AddrRuns {
        let mut runs = AddrRuns::new();
        // Push through a non-coalescing path is unnecessary: adjacent
        // pushes coalescing is exactly the stream the generators produce.
        for &(start, len) in intervals {
            runs.push(start, len);
        }
        runs
    }

    fn assert_runs_match_demands(intervals: &[(u64, u64)]) {
        let runs = runs_from_intervals(intervals);
        let by_runs = ReuseProfile::from_runs(&runs);
        let by_elems = ReuseProfile::from_demands(runs.iter_elements());
        assert_eq!(by_runs, by_elems, "intervals {intervals:?}");
    }

    #[test]
    fn from_runs_matches_from_demands_on_worked_examples() {
        // The two hand-verified examples from the derivation.
        assert_runs_match_demands(&[(0, 5), (5, 3), (0, 8)]);
        assert_runs_match_demands(&[(10, 10), (0, 5), (0, 30)]);
        // Disjoint streaming: all cold.
        assert_runs_match_demands(&[(0, 8), (100, 8), (200, 8)]);
        // Exact repeat.
        assert_runs_match_demands(&[(0, 16), (0, 16), (0, 16)]);
        // Partial overlaps crossing several last-touch segments.
        assert_runs_match_demands(&[(0, 10), (20, 10), (5, 20), (0, 40), (15, 3), (2, 30)]);
        // Single-element runs (degenerate to the element algorithm).
        assert_runs_match_demands(&[(3, 1), (1, 1), (3, 1), (2, 1), (1, 1)]);
        // Re-touch that splits a previous run's live interval in half.
        assert_runs_match_demands(&[(0, 30), (10, 5), (0, 30), (12, 1), (0, 13)]);
    }

    #[test]
    fn from_runs_matches_from_demands_pseudorandom() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for trial in 0..50 {
            let count = next() % 12 + 1;
            let intervals: Vec<(u64, u64)> =
                (0..count).map(|_| (next() % 60, next() % 25 + 1)).collect();
            let runs = runs_from_intervals(&intervals);
            let by_runs = ReuseProfile::from_runs(&runs);
            let by_elems = ReuseProfile::from_demands(runs.iter_elements());
            assert_eq!(by_runs, by_elems, "trial {trial}: {intervals:?}");
        }
    }

    #[test]
    fn reused_scratch_gives_identical_profiles() {
        let mut scratch = ReuseScratch::new();
        let streams: [&[(u64, u64)]; 3] = [
            &[(0, 10), (20, 10), (5, 20), (0, 40)],
            &[(3, 1), (1, 1), (3, 1)],
            &[(0, 16), (0, 16), (100, 4), (0, 120)],
        ];
        for intervals in streams {
            let runs = runs_from_intervals(intervals);
            let fresh = ReuseProfile::from_runs(&runs);
            let pooled = ReuseProfile::from_runs_in(&runs, &mut scratch);
            assert_eq!(fresh, pooled, "intervals {intervals:?}");
        }
    }
}
