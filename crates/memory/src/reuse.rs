//! Reuse-distance analysis: miss counts for *every* buffer capacity in one
//! pass.
//!
//! The double-buffer model answers "how many misses at capacity C?" for one
//! C per simulation. SRAM sizing studies (our `ext_sram_sweep` ablation,
//! or any "how much SRAM does this layer want?" question) need the whole
//! curve. The classic Mattson stack algorithm computes it in a single pass
//! over the demand stream for any stack algorithm; this implementation
//! profiles LRU stack distances, which upper-bounds the FIFO buffer's hit
//! rate and pinpoints the working-set knees exactly.

use crate::fast_hash::AddrMap;

/// Histogram of LRU stack distances for a demand stream.
///
/// `distance d` means: the address was last touched with `d` distinct
/// addresses touched in between, so any LRU buffer of capacity `> d` hits.
/// Cold (first-touch) accesses are counted separately — no capacity avoids
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with stack distance exactly `d`.
    histogram: Vec<u64>,
    /// First-touch accesses (compulsory misses at any capacity).
    cold: u64,
    total: u64,
}

impl ReuseProfile {
    /// Builds the profile of `demands` (processed in order).
    ///
    /// Runs in O(N log N) using an order-statistics walk over a Fenwick
    /// tree of "most-recent-touch" flags.
    pub fn from_demands(demands: impl IntoIterator<Item = u64>) -> Self {
        let demands: Vec<u64> = demands.into_iter().collect();
        let mut last_position: AddrMap<usize> = AddrMap::default();
        // Fenwick trees cannot be grown by zero-extension (new nodes would
        // miss counts already recorded below them), so size it up front.
        let mut fenwick = Fenwick::with_len(demands.len());
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        let mut total = 0u64;
        for (pos, &addr) in demands.iter().enumerate() {
            total += 1;
            match last_position.insert(addr, pos) {
                None => cold += 1,
                Some(prev) => {
                    // Distinct addresses touched strictly between prev and
                    // pos = live flags in (prev, pos).
                    let distance = fenwick.range_count(prev + 1, pos);
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    // The previous touch position is no longer the last one.
                    fenwick.clear(prev);
                }
            }
            fenwick.set(pos);
        }
        ReuseProfile {
            histogram,
            cold,
            total,
        }
    }

    /// Total accesses profiled.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// First-touch (compulsory) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU buffer of `capacity` elements would take on this
    /// stream: cold misses plus every access with stack distance
    /// ≥ capacity.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let reuse_misses: u64 = self.histogram.iter().skip(capacity).sum();
        self.cold + reuse_misses
    }

    /// Hit rate at `capacity` (0.0 for an empty stream).
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.misses_at(capacity) as f64 / self.total as f64
        }
    }

    /// The miss curve sampled at the given capacities — the input for an
    /// SRAM sizing plot.
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<(usize, u64)> {
        capacities.iter().map(|&c| (c, self.misses_at(c))).collect()
    }

    /// The smallest capacity achieving at least `target` hit rate, if any
    /// capacity does (cold misses bound the maximum achievable rate).
    pub fn capacity_for_hit_rate(&self, target: f64) -> Option<usize> {
        let max_needed = self.histogram.len();
        (0..=max_needed).find(|&c| self.hit_rate_at(c) >= target)
    }
}

/// A fixed-size Fenwick (binary indexed) tree over access positions.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn with_len(len: usize) -> Self {
        Fenwick { tree: vec![0; len] }
    }

    fn add(&mut self, mut index: usize, delta: i64) {
        let n = self.tree.len();
        while index < n {
            self.tree[index] += delta;
            index |= index + 1;
        }
    }

    fn set(&mut self, index: usize) {
        self.add(index, 1);
    }

    fn clear(&mut self, index: usize) {
        self.add(index, -1);
    }

    /// Sum of flags in `[0, end)`.
    fn prefix(&self, end: usize) -> i64 {
        let mut sum = 0;
        let mut i = end;
        while i > 0 {
            sum += self.tree[i - 1];
            i &= i - 1;
        }
        sum
    }

    /// Count of set flags with positions in `[lo, hi)`.
    fn range_count(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        (self.prefix(hi) - self.prefix(lo)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_stream_has_uniform_distance() {
        // a b c a b c a b c: after the cold pass, every access has stack
        // distance 2 (two distinct addresses in between).
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(profile.cold_accesses(), 3);
        assert_eq!(profile.total_accesses(), 9);
        assert_eq!(profile.misses_at(2), 3 + 6); // capacity 2 < distance+1
        assert_eq!(profile.misses_at(3), 3); // fits: only cold misses
        assert!((profile.hit_rate_at(3) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let profile = ReuseProfile::from_demands([7, 7, 7, 7]);
        assert_eq!(profile.cold_accesses(), 1);
        assert_eq!(profile.misses_at(1), 1);
        assert_eq!(profile.misses_at(0), 4);
    }

    #[test]
    fn streaming_stream_never_hits() {
        let profile = ReuseProfile::from_demands(0..100u64);
        assert_eq!(profile.cold_accesses(), 100);
        assert_eq!(profile.misses_at(1_000_000), 100);
        assert_eq!(profile.hit_rate_at(1_000_000), 0.0);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        // A mixed stream with several working-set sizes.
        let mut demands = Vec::new();
        for round in 0..10u64 {
            for a in 0..(4 + round % 3) {
                demands.push(a);
            }
        }
        let profile = ReuseProfile::from_demands(demands);
        let caps: Vec<usize> = (0..10).collect();
        let curve = profile.miss_curve(&caps);
        assert!(curve.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn matches_brute_force_lru() {
        // Reference LRU simulation vs the stack-distance prediction.
        fn lru_misses(demands: &[u64], capacity: usize) -> u64 {
            let mut stack: Vec<u64> = Vec::new();
            let mut misses = 0;
            for &a in demands {
                if let Some(idx) = stack.iter().position(|&x| x == a) {
                    stack.remove(idx);
                } else {
                    misses += 1;
                    if capacity == 0 {
                        continue;
                    }
                    if stack.len() >= capacity {
                        stack.pop();
                    }
                }
                if capacity > 0 {
                    stack.insert(0, a);
                }
            }
            misses
        }
        let demands: Vec<u64> = [
            1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 1, 2, 6, 7, 3, 2, 1, 8, 2, 3,
        ]
        .to_vec();
        let profile = ReuseProfile::from_demands(demands.iter().copied());
        for capacity in 0..10 {
            assert_eq!(
                profile.misses_at(capacity),
                lru_misses(&demands, capacity),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn capacity_for_hit_rate_finds_the_knee() {
        let profile = ReuseProfile::from_demands([1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        // 9 of 12 accesses can hit with capacity 3.
        assert_eq!(profile.capacity_for_hit_rate(0.7), Some(3));
        // Cold misses cap the hit rate at 75%.
        assert_eq!(profile.capacity_for_hit_rate(0.9), None);
    }

    #[test]
    fn empty_stream() {
        let profile = ReuseProfile::from_demands(std::iter::empty());
        assert_eq!(profile.total_accesses(), 0);
        assert_eq!(profile.misses_at(10), 0);
        assert_eq!(profile.hit_rate_at(10), 0.0);
    }
}
