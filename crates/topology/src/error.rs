//! Error types for workload parsing and validation.

use std::error::Error;
use std::fmt;

/// Reasons a layer description can be rejected.
///
/// Returned by [`crate::ConvLayer::validate`] and by the topology CSV parser
/// (wrapped in [`ParseTopologyError::InvalidLayer`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateLayerError {
    /// A dimension that must be at least 1 was zero.
    ZeroDimension {
        /// Name of the offending field (e.g. `"ifmap_h"`).
        field: &'static str,
    },
    /// The filter does not fit inside the (already padded) input feature map.
    FilterLargerThanIfmap {
        /// Filter extent along the offending axis.
        filter: u64,
        /// Ifmap extent along the offending axis.
        ifmap: u64,
        /// `"height"` or `"width"`.
        axis: &'static str,
    },
}

impl fmt::Display for ValidateLayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateLayerError::ZeroDimension { field } => {
                write!(f, "layer dimension `{field}` must be at least 1")
            }
            ValidateLayerError::FilterLargerThanIfmap {
                filter,
                ifmap,
                axis,
            } => write!(f, "filter {axis} ({filter}) exceeds ifmap {axis} ({ifmap})"),
        }
    }
}

impl Error for ValidateLayerError {}

/// Errors produced while parsing a topology CSV file (Table II format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTopologyError {
    /// A row had fewer columns than the format requires.
    MissingColumn {
        /// 1-based line number of the offending row.
        line: usize,
        /// Name of the missing column.
        column: &'static str,
    },
    /// A numeric field failed to parse.
    InvalidNumber {
        /// 1-based line number of the offending row.
        line: usize,
        /// Name of the column that failed to parse.
        column: &'static str,
        /// The raw text that was rejected.
        text: String,
    },
    /// The row parsed but described an invalid layer.
    InvalidLayer {
        /// 1-based line number of the offending row.
        line: usize,
        /// The underlying validation failure.
        source: ValidateLayerError,
    },
    /// The file contained no layer rows at all.
    Empty,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTopologyError::MissingColumn { line, column } => {
                write!(f, "line {line}: missing column `{column}`")
            }
            ParseTopologyError::InvalidNumber { line, column, text } => {
                write!(
                    f,
                    "line {line}: column `{column}` is not a number: `{text}`"
                )
            }
            ParseTopologyError::InvalidLayer { line, source } => {
                write!(f, "line {line}: invalid layer: {source}")
            }
            ParseTopologyError::Empty => write!(f, "topology file contains no layers"),
        }
    }
}

impl Error for ParseTopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTopologyError::InvalidLayer { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_dimension() {
        let err = ValidateLayerError::ZeroDimension { field: "channels" };
        assert_eq!(
            err.to_string(),
            "layer dimension `channels` must be at least 1"
        );
    }

    #[test]
    fn display_filter_too_large() {
        let err = ValidateLayerError::FilterLargerThanIfmap {
            filter: 7,
            ifmap: 5,
            axis: "height",
        };
        assert_eq!(
            err.to_string(),
            "filter height (7) exceeds ifmap height (5)"
        );
    }

    #[test]
    fn parse_error_source_chains_to_validation() {
        let err = ParseTopologyError::InvalidLayer {
            line: 3,
            source: ValidateLayerError::ZeroDimension { field: "ifmap_h" },
        };
        assert!(err.source().is_some());
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValidateLayerError>();
        assert_send_sync::<ParseTopologyError>();
    }
}
