//! Layer descriptions: convolutions (Table II rows) and raw GEMMs (Table IV).

use serde::{Deserialize, Serialize};

use crate::{GemmShape, ValidateLayerError};

/// One convolution layer, as described by a row of a topology file.
///
/// Field semantics follow Table II of the paper. The IFMAP dimensions are
/// the *padded* input extents (SCALE-Sim topology files bake padding into the
/// IFMAP size), so the OFMAP extent along an axis is
/// `(ifmap − filter) / stride + 1` with flooring division.
///
/// Fully-connected layers are expressed as convolutions whose filter covers
/// the whole IFMAP (the paper's convention): a 2048→1000 FC layer is
/// `1×1` IFMAP, `1×1` filter, 2048 channels, 1000 filters.
///
/// Construct with [`ConvLayer::new`] for the common square-stride case or
/// with [`ConvLayerBuilder`] when per-axis strides are needed.
///
/// ```
/// use scalesim_topology::ConvLayer;
///
/// let conv1 = ConvLayer::new("Conv1", 230, 230, 7, 7, 3, 64, 2)?;
/// assert_eq!(conv1.ofmap_h(), 112);
/// assert_eq!(conv1.window_size(), 7 * 7 * 3);
/// # Ok::<(), scalesim_topology::ValidateLayerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    name: String,
    ifmap_h: u64,
    ifmap_w: u64,
    filter_h: u64,
    filter_w: u64,
    channels: u64,
    num_filters: u64,
    stride_h: u64,
    stride_w: u64,
}

impl ConvLayer {
    /// Creates a convolution layer with equal strides along both axes.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateLayerError`] if any dimension is zero or the filter
    /// does not fit inside the IFMAP.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        ifmap_h: u64,
        ifmap_w: u64,
        filter_h: u64,
        filter_w: u64,
        channels: u64,
        num_filters: u64,
        stride: u64,
    ) -> Result<Self, ValidateLayerError> {
        ConvLayerBuilder::new(name)
            .ifmap(ifmap_h, ifmap_w)
            .filter(filter_h, filter_w)
            .channels(channels)
            .num_filters(num_filters)
            .stride(stride)
            .build()
    }

    /// User-defined layer tag.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Padded IFMAP height.
    pub fn ifmap_h(&self) -> u64 {
        self.ifmap_h
    }

    /// Padded IFMAP width.
    pub fn ifmap_w(&self) -> u64 {
        self.ifmap_w
    }

    /// Filter height.
    pub fn filter_h(&self) -> u64 {
        self.filter_h
    }

    /// Filter width.
    pub fn filter_w(&self) -> u64 {
        self.filter_w
    }

    /// Input channels.
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Number of filters (= OFMAP channels).
    pub fn num_filters(&self) -> u64 {
        self.num_filters
    }

    /// Stride along the height axis.
    pub fn stride_h(&self) -> u64 {
        self.stride_h
    }

    /// Stride along the width axis.
    pub fn stride_w(&self) -> u64 {
        self.stride_w
    }

    /// OFMAP height: `(ifmap_h − filter_h) / stride_h + 1`.
    pub fn ofmap_h(&self) -> u64 {
        (self.ifmap_h - self.filter_h) / self.stride_h + 1
    }

    /// OFMAP width: `(ifmap_w − filter_w) / stride_w + 1`.
    pub fn ofmap_w(&self) -> u64 {
        (self.ifmap_w - self.filter_w) / self.stride_w + 1
    }

    /// Number of OFMAP pixels generated per filter (`N_ofmap` in Table III).
    pub fn ofmap_pixels(&self) -> u64 {
        self.ofmap_h() * self.ofmap_w()
    }

    /// Convolution window size (`W_conv` in Table III):
    /// `filter_h · filter_w · channels` partial sums per output pixel.
    pub fn window_size(&self) -> u64 {
        self.filter_h * self.filter_w * self.channels
    }

    /// Total IFMAP elements (`ifmap_h · ifmap_w · channels`).
    pub fn ifmap_elems(&self) -> u64 {
        self.ifmap_h * self.ifmap_w * self.channels
    }

    /// Total filter elements across all filters.
    pub fn filter_elems(&self) -> u64 {
        self.window_size() * self.num_filters
    }

    /// Total OFMAP elements (`ofmap_pixels · num_filters`).
    pub fn ofmap_elems(&self) -> u64 {
        self.ofmap_pixels() * self.num_filters
    }

    /// Total multiply-accumulate operations for this layer.
    pub fn macs(&self) -> u64 {
        self.ofmap_pixels() * self.window_size() * self.num_filters
    }

    /// Whether the layer is a fully-connected layer in the paper's encoding
    /// (filter extents equal the IFMAP extents, so one output pixel per
    /// filter).
    pub fn is_fully_connected(&self) -> bool {
        self.filter_h == self.ifmap_h && self.filter_w == self.ifmap_w
    }

    /// The GEMM this convolution lowers to (Section III-A):
    /// `M = N_ofmap`, `K = W_conv`, `N = N_filter`.
    pub fn shape(&self) -> GemmShape {
        GemmShape::new(self.ofmap_pixels(), self.window_size(), self.num_filters)
    }

    /// Re-validates the invariants (used by deserialization paths).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, if any.
    pub fn validate(&self) -> Result<(), ValidateLayerError> {
        validate_fields(
            self.ifmap_h,
            self.ifmap_w,
            self.filter_h,
            self.filter_w,
            self.channels,
            self.num_filters,
            self.stride_h,
            self.stride_w,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn validate_fields(
    ifmap_h: u64,
    ifmap_w: u64,
    filter_h: u64,
    filter_w: u64,
    channels: u64,
    num_filters: u64,
    stride_h: u64,
    stride_w: u64,
) -> Result<(), ValidateLayerError> {
    let nonzero = [
        (ifmap_h, "ifmap_h"),
        (ifmap_w, "ifmap_w"),
        (filter_h, "filter_h"),
        (filter_w, "filter_w"),
        (channels, "channels"),
        (num_filters, "num_filters"),
        (stride_h, "stride_h"),
        (stride_w, "stride_w"),
    ];
    for (value, field) in nonzero {
        if value == 0 {
            return Err(ValidateLayerError::ZeroDimension { field });
        }
    }
    if filter_h > ifmap_h {
        return Err(ValidateLayerError::FilterLargerThanIfmap {
            filter: filter_h,
            ifmap: ifmap_h,
            axis: "height",
        });
    }
    if filter_w > ifmap_w {
        return Err(ValidateLayerError::FilterLargerThanIfmap {
            filter: filter_w,
            ifmap: ifmap_w,
            axis: "width",
        });
    }
    Ok(())
}

/// Incremental constructor for [`ConvLayer`].
///
/// ```
/// use scalesim_topology::ConvLayerBuilder;
///
/// let layer = ConvLayerBuilder::new("CB2a_2")
///     .ifmap(58, 58)
///     .filter(3, 3)
///     .channels(64)
///     .num_filters(64)
///     .strides(1, 1)
///     .build()?;
/// assert_eq!(layer.ofmap_pixels(), 56 * 56);
/// # Ok::<(), scalesim_topology::ValidateLayerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConvLayerBuilder {
    name: String,
    ifmap_h: u64,
    ifmap_w: u64,
    filter_h: u64,
    filter_w: u64,
    channels: u64,
    num_filters: u64,
    stride_h: u64,
    stride_w: u64,
}

impl ConvLayerBuilder {
    /// Starts a builder for a layer called `name`.
    ///
    /// All dimensions default to 1, so a plain `build()` yields a valid
    /// (degenerate 1×1) layer.
    pub fn new(name: impl Into<String>) -> Self {
        ConvLayerBuilder {
            name: name.into(),
            ifmap_h: 1,
            ifmap_w: 1,
            filter_h: 1,
            filter_w: 1,
            channels: 1,
            num_filters: 1,
            stride_h: 1,
            stride_w: 1,
        }
    }

    /// Sets the padded IFMAP extents.
    pub fn ifmap(mut self, h: u64, w: u64) -> Self {
        self.ifmap_h = h;
        self.ifmap_w = w;
        self
    }

    /// Sets the filter extents.
    pub fn filter(mut self, h: u64, w: u64) -> Self {
        self.filter_h = h;
        self.filter_w = w;
        self
    }

    /// Sets the input channel count.
    pub fn channels(mut self, c: u64) -> Self {
        self.channels = c;
        self
    }

    /// Sets the number of filters (OFMAP channels).
    pub fn num_filters(mut self, n: u64) -> Self {
        self.num_filters = n;
        self
    }

    /// Sets equal strides along both axes.
    pub fn stride(self, s: u64) -> Self {
        self.strides(s, s)
    }

    /// Sets per-axis strides.
    pub fn strides(mut self, h: u64, w: u64) -> Self {
        self.stride_h = h;
        self.stride_w = w;
        self
    }

    /// Validates and builds the layer.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateLayerError`] if any dimension is zero or the filter
    /// exceeds the IFMAP extents.
    pub fn build(self) -> Result<ConvLayer, ValidateLayerError> {
        validate_fields(
            self.ifmap_h,
            self.ifmap_w,
            self.filter_h,
            self.filter_w,
            self.channels,
            self.num_filters,
            self.stride_h,
            self.stride_w,
        )?;
        Ok(ConvLayer {
            name: self.name,
            ifmap_h: self.ifmap_h,
            ifmap_w: self.ifmap_w,
            filter_h: self.filter_h,
            filter_w: self.filter_w,
            channels: self.channels,
            num_filters: self.num_filters,
            stride_h: self.stride_h,
            stride_w: self.stride_w,
        })
    }
}

/// A workload layer: either a convolution or a raw GEMM.
///
/// The paper's CNN workloads (ResNet-50 etc.) are [`Layer::Conv`]; the
/// language-model layers of Table IV are [`Layer::Gemm`], given directly as
/// matrix dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// A convolution (or FC-as-convolution) layer.
    Conv(ConvLayer),
    /// A named raw matrix multiplication.
    Gemm {
        /// User-defined layer tag.
        name: String,
        /// Matrix dimensions.
        shape: GemmShape,
    },
}

impl Layer {
    /// Creates a named GEMM layer from `(m, k, n)` dimensions.
    ///
    /// Table IV lists language-model layers as `(S_R, T, S_C)`, which is
    /// exactly `(m, k, n)` — the OS-dataflow projection is the identity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (see [`GemmShape::new`]).
    pub fn gemm(name: impl Into<String>, m: u64, k: u64, n: u64) -> Self {
        Layer::Gemm {
            name: name.into(),
            shape: GemmShape::new(m, k, n),
        }
    }

    /// The layer's user-defined tag.
    pub fn name(&self) -> &str {
        match self {
            Layer::Conv(c) => c.name(),
            Layer::Gemm { name, .. } => name,
        }
    }

    /// The GEMM this layer lowers to.
    pub fn shape(&self) -> GemmShape {
        match self {
            Layer::Conv(c) => c.shape(),
            Layer::Gemm { shape, .. } => *shape,
        }
    }

    /// The convolution description, if this is a conv layer.
    pub fn as_conv(&self) -> Option<&ConvLayer> {
        match self {
            Layer::Conv(c) => Some(c),
            Layer::Gemm { .. } => None,
        }
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        self.shape().macs()
    }

    /// Trainable parameter elements: the filter tensor for a convolution,
    /// the `K × N` weight matrix for a GEMM.
    pub fn param_elems(&self) -> u64 {
        match self {
            Layer::Conv(c) => c.filter_elems(),
            Layer::Gemm { shape, .. } => shape.operand_b_elems(),
        }
    }

    /// Arithmetic intensity upper bound: MACs per element if every operand
    /// and output crossed the interface exactly once.
    pub fn macs_per_element(&self) -> f64 {
        let s = self.shape();
        let traffic = match self {
            // Convolution input is the real (overlap-free) ifmap.
            Layer::Conv(c) => c.ifmap_elems() + c.filter_elems() + c.ofmap_elems(),
            Layer::Gemm { shape, .. } => {
                shape.operand_a_elems() + shape.operand_b_elems() + shape.output_elems()
            }
        };
        s.macs() as f64 / traffic as f64
    }
}

impl From<ConvLayer> for Layer {
    fn from(c: ConvLayer) -> Self {
        Layer::Conv(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataflow;

    fn sample() -> ConvLayer {
        ConvLayer::new("t", 8, 8, 3, 3, 4, 16, 1).unwrap()
    }

    #[test]
    fn ofmap_dims_floor_division() {
        // (230 - 7) / 2 + 1 = 112 with flooring.
        let l = ConvLayer::new("conv1", 230, 230, 7, 7, 3, 64, 2).unwrap();
        assert_eq!(l.ofmap_h(), 112);
        assert_eq!(l.ofmap_w(), 112);
    }

    #[test]
    fn derived_quantities() {
        let l = sample();
        assert_eq!(l.ofmap_h(), 6);
        assert_eq!(l.ofmap_pixels(), 36);
        assert_eq!(l.window_size(), 36);
        assert_eq!(l.macs(), 36 * 36 * 16);
        assert_eq!(l.ifmap_elems(), 8 * 8 * 4);
        assert_eq!(l.filter_elems(), 36 * 16);
        assert_eq!(l.ofmap_elems(), 36 * 16);
    }

    #[test]
    fn fc_layer_detection() {
        let fc = ConvLayer::new("fc", 1, 1, 1, 1, 2048, 1000, 1).unwrap();
        assert!(fc.is_fully_connected());
        assert_eq!(fc.ofmap_pixels(), 1);
        assert_eq!(fc.shape(), GemmShape::new(1, 2048, 1000));
        assert!(!sample().is_fully_connected());
    }

    #[test]
    fn gemm_lowering_matches_table_iii_via_projection() {
        let l = sample();
        let os = l.shape().project(Dataflow::OutputStationary);
        assert_eq!(os.spatial_rows, l.ofmap_pixels());
        assert_eq!(os.spatial_cols, l.num_filters());
        assert_eq!(os.temporal, l.window_size());
    }

    #[test]
    fn validation_rejects_zero_and_oversized() {
        assert!(ConvLayer::new("z", 8, 8, 3, 3, 0, 16, 1).is_err());
        assert!(ConvLayer::new("f", 2, 8, 3, 3, 4, 16, 1).is_err());
        assert!(ConvLayer::new("s", 8, 8, 3, 3, 4, 16, 0).is_err());
    }

    #[test]
    fn builder_defaults_are_valid() {
        let l = ConvLayerBuilder::new("unit").build().unwrap();
        assert_eq!(l.macs(), 1);
        assert!(l.is_fully_connected());
    }

    #[test]
    fn per_axis_strides() {
        let l = ConvLayerBuilder::new("aniso")
            .ifmap(16, 16)
            .filter(3, 3)
            .channels(1)
            .num_filters(1)
            .strides(2, 1)
            .build()
            .unwrap();
        assert_eq!(l.ofmap_h(), 7);
        assert_eq!(l.ofmap_w(), 14);
    }

    #[test]
    fn param_and_intensity_helpers() {
        let conv: Layer = sample().into();
        assert_eq!(conv.param_elems(), 36 * 16);
        assert!(conv.macs_per_element() > 1.0);
        let gemm = Layer::gemm("g", 4, 5, 6);
        assert_eq!(gemm.param_elems(), 30);
        let expected = (4.0 * 5.0 * 6.0) / (20.0 + 30.0 + 24.0);
        assert!((gemm.macs_per_element() - expected).abs() < 1e-12);
    }

    #[test]
    fn layer_enum_accessors() {
        let conv: Layer = sample().into();
        assert_eq!(conv.name(), "t");
        assert!(conv.as_conv().is_some());

        let gemm = Layer::gemm("TF0", 31999, 84, 1024);
        assert_eq!(gemm.name(), "TF0");
        assert!(gemm.as_conv().is_none());
        assert_eq!(gemm.macs(), 31999 * 84 * 1024);
    }
}
