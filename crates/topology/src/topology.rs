//! A named sequence of layers — one workload file.

use serde::{Deserialize, Serialize};

use crate::Layer;

/// A neural-network workload: an ordered list of layers.
///
/// SCALE-Sim simulates the layers of a topology strictly in order (modern
/// "cells" with parallel branches are serialized in file order — Section II-E
/// of the paper), so a `Topology` is simply a named `Vec<Layer>`.
///
/// ```
/// use scalesim_topology::{Layer, Topology};
///
/// let mut topo = Topology::new("two_gemms");
/// topo.push(Layer::gemm("A", 64, 64, 64));
/// topo.push(Layer::gemm("B", 128, 32, 16));
/// assert_eq!(topo.len(), 2);
/// assert_eq!(topo.total_macs(), 64u64.pow(3) + 128 * 32 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    layers: Vec<Layer>,
}

impl Topology {
    /// Creates an empty topology called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Creates a topology from an existing layer list.
    pub fn from_layers(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Topology {
            name: name.into(),
            layers,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, in simulation order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Into<Layer>) {
        self.layers.push(layer.into());
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the topology has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Finds a layer by its tag.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Layer> {
        self.layers.iter()
    }

    /// Sum of MAC operations over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Sum of trainable parameter elements over all layers (the model's
    /// weight footprint in elements).
    pub fn total_param_elems(&self) -> u64 {
        self.layers.iter().map(Layer::param_elems).sum()
    }

    /// Returns a new topology containing only the layers whose tags satisfy
    /// `keep` — handy for the paper's "first and last five layers" subsets.
    pub fn filtered(&self, keep: impl Fn(&Layer) -> bool) -> Topology {
        Topology {
            name: self.name.clone(),
            layers: self.layers.iter().filter(|l| keep(l)).cloned().collect(),
        }
    }
}

impl Extend<Layer> for Topology {
    fn extend<T: IntoIterator<Item = Layer>>(&mut self, iter: T) {
        self.layers.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Topology {
    type Item = &'a Layer;
    type IntoIter = std::slice::Iter<'a, Layer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl IntoIterator for Topology {
    type Item = Layer;
    type IntoIter = std::vec::IntoIter<Layer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Topology {
        let mut t = Topology::new("sample");
        t.push(Layer::gemm("a", 2, 3, 4));
        t.push(Layer::gemm("b", 5, 6, 7));
        t
    }

    #[test]
    fn push_len_lookup() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(t.layer("a").is_some());
        assert!(t.layer("missing").is_none());
    }

    #[test]
    fn total_macs_sums_layers() {
        assert_eq!(sample().total_macs(), 2 * 3 * 4 + 5 * 6 * 7);
    }

    #[test]
    fn total_params_sums_weight_matrices() {
        assert_eq!(sample().total_param_elems(), 3 * 4 + 6 * 7);
    }

    #[test]
    fn filtered_keeps_matching_layers() {
        let t = sample().filtered(|l| l.name() == "b");
        assert_eq!(t.len(), 1);
        assert_eq!(t.layers()[0].name(), "b");
    }

    #[test]
    fn iteration_orders_match() {
        let t = sample();
        let names: Vec<&str> = t.iter().map(Layer::name).collect();
        assert_eq!(names, ["a", "b"]);
        let owned: Vec<Layer> = t.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        let by_ref: Vec<&Layer> = (&t).into_iter().collect();
        assert_eq!(by_ref.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample();
        t.extend([Layer::gemm("c", 1, 1, 1)]);
        assert_eq!(t.len(), 3);
    }
}
