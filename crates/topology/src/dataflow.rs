//! The three true systolic dataflows considered by the paper (Section II-A).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Mapping strategy ("dataflow") for a systolic array.
///
/// The *stationarity* of a dataflow names the tensor whose elements stay put
/// in the processing elements for the longest time (Fig. 3 of the paper). The
/// choice of dataflow decides which workload dimension is mapped onto array
/// rows, which onto columns, and which unrolls in time — see
/// [`GemmShape::project`](crate::GemmShape::project) and Table III.
///
/// The string forms accepted by [`FromStr`] are the ones used in SCALE-Sim
/// configuration files: `"os"`, `"ws"`, `"is"` (case-insensitive).
///
/// ```
/// use scalesim_topology::Dataflow;
/// let df: Dataflow = "ws".parse()?;
/// assert_eq!(df, Dataflow::WeightStationary);
/// # Ok::<(), scalesim_topology::ParseTopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataflow {
    /// Each PE owns one OFMAP pixel and accumulates it in place.
    OutputStationary,
    /// Filter weights are pre-filled into the array; IFMAP streams through.
    WeightStationary,
    /// IFMAP elements are pre-filled; filter weights stream through.
    InputStationary,
}

impl Dataflow {
    /// All three dataflows, in the order the paper introduces them.
    ///
    /// ```
    /// assert_eq!(scalesim_topology::Dataflow::ALL.len(), 3);
    /// ```
    pub const ALL: [Dataflow; 3] = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ];

    /// The short mnemonic used in SCALE-Sim config files (`os`/`ws`/`is`).
    ///
    /// ```
    /// use scalesim_topology::Dataflow;
    /// assert_eq!(Dataflow::OutputStationary.mnemonic(), "os");
    /// ```
    pub fn mnemonic(self) -> &'static str {
        match self {
            Dataflow::OutputStationary => "os",
            Dataflow::WeightStationary => "ws",
            Dataflow::InputStationary => "is",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Dataflow {
    type Err = crate::ParseTopologyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "os" | "output_stationary" => Ok(Dataflow::OutputStationary),
            "ws" | "weight_stationary" => Ok(Dataflow::WeightStationary),
            "is" | "input_stationary" => Ok(Dataflow::InputStationary),
            _ => Err(crate::ParseTopologyError::InvalidNumber {
                line: 0,
                column: "dataflow",
                text: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        for df in Dataflow::ALL {
            let parsed: Dataflow = df.mnemonic().parse().expect("mnemonic parses");
            assert_eq!(parsed, df);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(
            " OS ".parse::<Dataflow>().unwrap(),
            Dataflow::OutputStationary
        );
        assert_eq!(
            "Ws".parse::<Dataflow>().unwrap(),
            Dataflow::WeightStationary
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("rs".parse::<Dataflow>().is_err());
        assert!("".parse::<Dataflow>().is_err());
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(Dataflow::InputStationary.to_string(), "is");
    }
}
