//! GEMM shapes and the spatio-temporal projection of Table III.

use serde::{Deserialize, Serialize};

use crate::Dataflow;

/// The dense matrix-multiplication underlying a DNN layer.
///
/// Every dense layer the paper considers generalizes to multiplying an
/// `M × K` operand by a `K × N` operand (Section III-A). For a convolution:
/// `M` is the number of OFMAP pixels per filter, `K` the convolution window
/// size (`filter_h · filter_w · channels`) and `N` the number of filters. For
/// fully-connected / language-model layers the matrices are used directly
/// (Table IV lists them already projected for the OS dataflow, i.e. as
/// `(S_R, T, S_C) = (M, K, N)`).
///
/// ```
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let tf0 = GemmShape::new(31999, 84, 1024); // Transformer layer TF0
/// assert_eq!(tf0.macs(), 31999 * 84 * 1024);
/// let os = tf0.project(Dataflow::OutputStationary);
/// assert_eq!((os.spatial_rows, os.temporal, os.spatial_cols), (31999, 84, 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Rows of the first operand (OFMAP pixels per filter for a conv).
    pub m: u64,
    /// Contraction dimension (convolution window size for a conv).
    pub k: u64,
    /// Columns of the second operand (number of filters for a conv).
    pub n: u64,
}

impl GemmShape {
    /// Creates a GEMM shape for an `m × k` by `k × n` product.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — a degenerate matrix product has no
    /// meaningful mapping onto a systolic array.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be nonzero");
        GemmShape { m, k, n }
    }

    /// Total multiply-accumulate operations in this product.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }

    /// Elements in the first (`m × k`) operand.
    pub fn operand_a_elems(&self) -> u64 {
        self.m * self.k
    }

    /// Elements in the second (`k × n`) operand.
    pub fn operand_b_elems(&self) -> u64 {
        self.k * self.n
    }

    /// Elements in the `m × n` result.
    pub fn output_elems(&self) -> u64 {
        self.m * self.n
    }

    /// Projects the GEMM onto array rows / columns / time for `dataflow`.
    ///
    /// This is Table III of the paper:
    ///
    /// | Dataflow | `S_R` | `S_C` | `T` |
    /// |---|---|---|---|
    /// | OS | `N_ofmap` (= m) | `N_filter` (= n) | `W_conv` (= k) |
    /// | WS | `W_conv` (= k)  | `N_filter` (= n) | `N_ofmap` (= m) |
    /// | IS | `W_conv` (= k)  | `N_ofmap` (= m)  | `N_filter` (= n) |
    pub fn project(&self, dataflow: Dataflow) -> MappedDims {
        let (sr, sc, t) = match dataflow {
            Dataflow::OutputStationary => (self.m, self.n, self.k),
            Dataflow::WeightStationary => (self.k, self.n, self.m),
            Dataflow::InputStationary => (self.k, self.m, self.n),
        };
        MappedDims {
            spatial_rows: sr,
            spatial_cols: sc,
            temporal: t,
            dataflow,
        }
    }
}

/// A GEMM projected onto the systolic array's spatio-temporal dimensions.
///
/// Produced by [`GemmShape::project`]; consumed by the trace engines and the
/// analytical runtime model. `spatial_rows` elements want to map along array
/// rows, `spatial_cols` along columns, and `temporal` unrolls over cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MappedDims {
    /// `S_R`: extent mapped across array rows.
    pub spatial_rows: u64,
    /// `S_C`: extent mapped across array columns.
    pub spatial_cols: u64,
    /// `T`: extent unrolled in time.
    pub temporal: u64,
    /// The dataflow this projection was made for.
    pub dataflow: Dataflow,
}

impl MappedDims {
    /// Total MAC operations — invariant under the choice of dataflow.
    pub fn macs(&self) -> u64 {
        self.spatial_rows * self.spatial_cols * self.temporal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_matches_table_iii() {
        let g = GemmShape::new(10, 20, 30);
        let os = g.project(Dataflow::OutputStationary);
        assert_eq!(
            (os.spatial_rows, os.spatial_cols, os.temporal),
            (10, 30, 20)
        );
        let ws = g.project(Dataflow::WeightStationary);
        assert_eq!(
            (ws.spatial_rows, ws.spatial_cols, ws.temporal),
            (20, 30, 10)
        );
        let is = g.project(Dataflow::InputStationary);
        assert_eq!(
            (is.spatial_rows, is.spatial_cols, is.temporal),
            (20, 10, 30)
        );
    }

    #[test]
    fn macs_invariant_across_dataflows() {
        let g = GemmShape::new(7, 11, 13);
        for df in Dataflow::ALL {
            assert_eq!(g.project(df).macs(), g.macs());
        }
    }

    #[test]
    fn operand_and_output_counts() {
        let g = GemmShape::new(4, 5, 6);
        assert_eq!(g.operand_a_elems(), 20);
        assert_eq!(g.operand_b_elems(), 30);
        assert_eq!(g.output_elems(), 24);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }
}
