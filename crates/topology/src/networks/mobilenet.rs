//! MobileNet-v1 (Howard et al.) — depthwise-separable convolutions.
//!
//! Depthwise layers follow the original SCALE-Sim topology convention:
//! a depthwise 3×3 over `C` channels is listed with `Channels = 1` and
//! `Num Filter = C` (each filter sees one input channel), which makes the
//! MAC count come out right (`ofmap_px · 9 · C`). The per-channel
//! independence gives these layers a tiny contraction dimension — a useful
//! stress case for dataflow and scaling studies.

use crate::{ConvLayer, Layer, Topology};

/// Builds the 28-layer MobileNet-v1 topology (stem, 13 depthwise-separable
/// blocks, classifier).
pub fn mobilenet_v1() -> Topology {
    let mut layers: Vec<Layer> = Vec::with_capacity(28);
    let mut add = |name: String, ih: u64, fh: u64, c: u64, nf: u64, s: u64| {
        layers.push(Layer::Conv(
            ConvLayer::new(name, ih, ih, fh, fh, c, nf, s)
                .expect("built-in MobileNet layer is valid"),
        ));
    };

    add("Conv1".into(), 226, 3, 3, 32, 2); // 224 + pad -> 112

    // (block, feature-map extent, input channels, output channels, stride
    // of the depthwise conv)
    let blocks: [(u64, u64, u64, u64); 13] = [
        (112, 32, 64, 1),
        (112, 64, 128, 2),
        (56, 128, 128, 1),
        (56, 128, 256, 2),
        (28, 256, 256, 1),
        (28, 256, 512, 2),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 512, 1),
        (14, 512, 1024, 2),
        (7, 1024, 1024, 1),
    ];
    for (i, (fmap, c_in, c_out, stride)) in blocks.into_iter().enumerate() {
        let n = i + 1;
        // Depthwise 3x3: pad 1 each side.
        add(format!("DW{n}"), fmap + 2, 3, 1, c_in, stride);
        let out_fmap = if stride == 2 { fmap / 2 } else { fmap };
        // Pointwise 1x1.
        add(format!("PW{n}"), out_fmap, 1, c_in, c_out, 1);
    }

    add("FC1000".into(), 1, 1, 1024, 1000, 1);
    Topology::from_layers("mobilenet_v1", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count() {
        assert_eq!(mobilenet_v1().len(), 1 + 13 * 2 + 1);
    }

    #[test]
    fn depthwise_layers_have_single_channel_windows() {
        let net = mobilenet_v1();
        let dw = net.layer("DW7").unwrap().as_conv().unwrap();
        assert_eq!(dw.channels(), 1);
        assert_eq!(dw.num_filters(), 512);
        assert_eq!(dw.window_size(), 9);
    }

    #[test]
    fn strided_blocks_halve_the_map() {
        let net = mobilenet_v1();
        let dw2 = net.layer("DW2").unwrap().as_conv().unwrap();
        assert_eq!(dw2.ofmap_h(), 56);
        let pw2 = net.layer("PW2").unwrap().as_conv().unwrap();
        assert_eq!(pw2.ifmap_h(), 56);
    }

    #[test]
    fn pointwise_dominates_compute() {
        // The whole point of depthwise separability: ~95% of MACs live in
        // the 1x1 convolutions.
        let net = mobilenet_v1();
        let dw: u64 = net
            .iter()
            .filter(|l| l.name().starts_with("DW"))
            .map(|l| l.macs())
            .sum();
        let pw: u64 = net
            .iter()
            .filter(|l| l.name().starts_with("PW"))
            .map(|l| l.macs())
            .sum();
        assert!(pw > 10 * dw);
    }

    #[test]
    fn total_macs_in_mobilenet_ballpark() {
        // MobileNet-v1 is ~0.57 GMACs at 224x224.
        let macs = mobilenet_v1().total_macs();
        assert!((450_000_000..750_000_000).contains(&macs), "got {macs}");
    }
}
