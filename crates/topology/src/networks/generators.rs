//! Parametric workload generators.
//!
//! The paper's language-model layers (Table IV) are snapshots of larger
//! models; these generators produce whole model stacks so users can study
//! their own configurations — an MLP of arbitrary widths, a transformer
//! encoder stack (the GEMMs behind each attention + feed-forward block),
//! and batched variants of any GEMM workload.

use crate::{GemmShape, Layer, Topology};

/// A fully-connected network: one GEMM per layer, `batch × in → batch ×
/// out`.
///
/// # Panics
///
/// Panics if `batch` is zero or `widths` has fewer than two entries (a
/// network needs an input and an output width).
///
/// ```
/// use scalesim_topology::networks::mlp;
///
/// let net = mlp("m", 32, &[784, 512, 256, 10]);
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.layers()[0].shape().m, 32); // batch maps to GEMM rows
/// ```
pub fn mlp(name: impl Into<String>, batch: u64, widths: &[u64]) -> Topology {
    assert!(batch > 0, "batch must be nonzero");
    assert!(widths.len() >= 2, "an MLP needs at least two widths");
    let layers = widths
        .windows(2)
        .enumerate()
        .map(|(i, w)| Layer::gemm(format!("fc{i}"), batch, w[0], w[1]))
        .collect();
    Topology::from_layers(name, layers)
}

/// The GEMMs of one transformer encoder layer, repeated `n_layers` times:
/// fused QKV projection, attention scores (`QKᵀ`), attention-weighted
/// values, output projection, and the two feed-forward GEMMs.
///
/// `seq` is the sequence length, `d_model` the embedding width, `d_ff` the
/// feed-forward width. Attention-head splitting only reshapes the score
/// GEMMs; heads are folded into one GEMM here, matching how Table IV
/// snapshots Transformer layers (TF0/TF1 are exactly such GEMMs).
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn transformer_encoder(
    name: impl Into<String>,
    seq: u64,
    d_model: u64,
    d_ff: u64,
    n_layers: u64,
) -> Topology {
    assert!(
        seq > 0 && d_model > 0 && d_ff > 0 && n_layers > 0,
        "transformer dimensions must be nonzero"
    );
    let mut layers = Vec::with_capacity((n_layers * 6) as usize);
    for l in 0..n_layers {
        layers.push(Layer::gemm(format!("L{l}_qkv"), seq, d_model, 3 * d_model));
        layers.push(Layer::gemm(format!("L{l}_scores"), seq, d_model, seq));
        layers.push(Layer::gemm(format!("L{l}_values"), seq, seq, d_model));
        layers.push(Layer::gemm(format!("L{l}_proj"), seq, d_model, d_model));
        layers.push(Layer::gemm(format!("L{l}_ff1"), seq, d_model, d_ff));
        layers.push(Layer::gemm(format!("L{l}_ff2"), seq, d_ff, d_model));
    }
    Topology::from_layers(name, layers)
}

/// Returns a copy of `topology` with every layer's GEMM batched `batch`
/// times: the output-row dimension (`M`) is multiplied, which is how
/// inference batching composes for both FC layers and (flattened)
/// convolutions.
///
/// Convolution layers are lowered to their GEMM form in the process —
/// batching across images shares filters but not IFMAP windows, so the
/// conv-specific overlap addressing no longer applies. Use this for
/// throughput studies, not for single-image DRAM traffic.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batched(topology: &Topology, batch: u64) -> Topology {
    assert!(batch > 0, "batch must be nonzero");
    let layers = topology
        .iter()
        .map(|layer| {
            let s = layer.shape();
            Layer::Gemm {
                name: layer.name().to_owned(),
                shape: GemmShape::new(s.m * batch, s.k, s.n),
            }
        })
        .collect();
    Topology::from_layers(format!("{}_b{batch}", topology.name()), layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn mlp_shapes_chain() {
        let net = mlp("m", 8, &[100, 50, 10]);
        let shapes: Vec<GemmShape> = net.iter().map(|l| l.shape()).collect();
        assert_eq!(shapes[0], GemmShape::new(8, 100, 50));
        assert_eq!(shapes[1], GemmShape::new(8, 50, 10));
    }

    #[test]
    #[should_panic(expected = "two widths")]
    fn mlp_needs_two_widths() {
        let _ = mlp("m", 1, &[10]);
    }

    #[test]
    fn transformer_layer_structure() {
        let net = transformer_encoder("t", 128, 512, 2048, 2);
        assert_eq!(net.len(), 12);
        let scores = net.layer("L0_scores").unwrap().shape();
        assert_eq!(scores, GemmShape::new(128, 512, 128));
        let ff1 = net.layer("L1_ff1").unwrap().shape();
        assert_eq!(ff1, GemmShape::new(128, 512, 2048));
        // Total MACs: per layer 3dm² + 2·s·dm + dm² + 2·dm·dff per token.
        let per_layer = 128 * (3 * 512 * 512 + 512 * 128 + 128 * 512 + 512 * 512 + 512 * 2048 * 2);
        assert_eq!(net.total_macs(), 2 * per_layer);
    }

    #[test]
    fn batching_scales_macs_linearly() {
        let base = networks::alexnet();
        let b4 = batched(&base, 4);
        assert_eq!(b4.total_macs(), 4 * base.total_macs());
        assert_eq!(b4.len(), base.len());
        assert_eq!(b4.name(), "alexnet_b4");
        // Layers are lowered to GEMMs.
        assert!(b4.layers().iter().all(|l| l.as_conv().is_none()));
    }

    #[test]
    fn batch_one_preserves_shapes() {
        let base = networks::language_models();
        let b1 = batched(&base, 1);
        for (a, b) in base.iter().zip(&b1) {
            assert_eq!(a.shape(), b.shape());
        }
    }
}
