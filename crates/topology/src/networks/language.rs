//! The language-model GEMM layers of Table IV.
//!
//! The paper characterizes contemporary NLP models by representative matrix
//! multiplications: GNMT (neural machine translation), DeepSpeech2 (speech
//! recognition), Transformer, and Neural Collaborative Filtering. Table IV
//! lists them as `(S_R, T, S_C)` triples, i.e. already projected for the OS
//! dataflow, which equals the raw `(M, K, N)` GEMM dimensions.

use crate::{Layer, Topology};

/// `(name, S_R, T, S_C)` rows of Table IV, in paper order.
const TABLE_IV: [(&str, u64, u64, u64); 10] = [
    ("GNMT0", 128, 4096, 2048),
    ("GNMT1", 320, 4096, 3072),
    ("GNMT2", 1632, 1024, 36548),
    ("GNMT3", 2048, 32, 4096),
    ("DB0", 1024, 50000, 16),
    ("DB1", 35, 2560, 4096),
    ("TF0", 31999, 84, 1024),
    ("TF1", 84, 4096, 1024),
    ("NCF0", 2048, 128, 1),
    ("NCF1", 256, 2048, 256),
];

/// The layer tags of Table IV, in paper order.
pub const LANGUAGE_MODEL_NAMES: [&str; 10] = [
    "GNMT0", "GNMT1", "GNMT2", "GNMT3", "DB0", "DB1", "TF0", "TF1", "NCF0", "NCF1",
];

/// Builds the full Table IV workload suite as one topology.
pub fn language_models() -> Topology {
    let layers = TABLE_IV
        .into_iter()
        .map(|(name, sr, t, sc)| Layer::gemm(name, sr, t, sc))
        .collect();
    Topology::from_layers("language_models", layers)
}

/// Looks up a single Table IV layer by tag (e.g. `"TF0"`).
pub fn language_model(name: &str) -> Option<Layer> {
    TABLE_IV
        .into_iter()
        .find(|(tag, ..)| *tag == name)
        .map(|(tag, sr, t, sc)| Layer::gemm(tag, sr, t, sc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataflow;

    #[test]
    fn table_iv_has_ten_rows() {
        assert_eq!(language_models().len(), 10);
        assert_eq!(LANGUAGE_MODEL_NAMES.len(), 10);
    }

    #[test]
    fn tf0_matches_paper() {
        let tf0 = language_model("TF0").unwrap();
        let dims = tf0.shape().project(Dataflow::OutputStationary);
        assert_eq!(dims.spatial_rows, 31999);
        assert_eq!(dims.temporal, 84);
        assert_eq!(dims.spatial_cols, 1024);
    }

    #[test]
    fn ncf0_is_a_matrix_vector_product() {
        // NCF0 has S_C = 1: the degenerate matrix-vector case the paper's
        // footnote 1 calls out.
        let ncf0 = language_model("NCF0").unwrap();
        assert_eq!(ncf0.shape().n, 1);
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(language_model("GPT3").is_none());
    }

    #[test]
    fn names_constant_matches_topology_order() {
        let topo = language_models();
        for (layer, name) in topo.iter().zip(LANGUAGE_MODEL_NAMES) {
            assert_eq!(layer.name(), name);
        }
    }
}
