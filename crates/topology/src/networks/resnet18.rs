//! ResNet-18 (He et al.) — the basic-block sibling of ResNet-50, useful
//! when a CNN workload is wanted at a fraction of the simulation cost.

use crate::{ConvLayer, Layer, Topology};

/// Builds the 21-layer ResNet-18 topology (stem, four 2-block stages of
/// 3×3 basic blocks with projection shortcuts, classifier).
pub fn resnet18() -> Topology {
    let mut layers: Vec<Layer> = Vec::with_capacity(21);
    let mut add = |name: String, ih: u64, fh: u64, c: u64, nf: u64, s: u64| {
        layers.push(Layer::Conv(
            ConvLayer::new(name, ih, ih, fh, fh, c, nf, s)
                .expect("built-in ResNet-18 layer is valid"),
        ));
    };

    add("Conv1".into(), 230, 7, 3, 64, 2); // -> 112, pool -> 56

    // Stage 1: 56x56, 64 channels, no downsampling.
    for block in 1..=2 {
        for conv in 1..=2 {
            add(format!("S1B{block}_{conv}"), 58, 3, 64, 64, 1);
        }
    }
    // Stages 2-4: first block downsamples (stride-2 3x3 + 1x1 projection).
    let stages: [(u64, u64, u64, &str); 3] = [
        (58, 64, 128, "S2"),
        (30, 128, 256, "S3"),
        (16, 256, 512, "S4"),
    ];
    for (ifmap_in, c_in, c_out, tag) in stages {
        let fmap_out = (ifmap_in - 2) / 2; // post-stride extent
        add(format!("{tag}B1_proj"), ifmap_in - 2, 1, c_in, c_out, 2);
        add(format!("{tag}B1_1"), ifmap_in, 3, c_in, c_out, 2);
        add(format!("{tag}B1_2"), fmap_out + 2, 3, c_out, c_out, 1);
        add(format!("{tag}B2_1"), fmap_out + 2, 3, c_out, c_out, 1);
        add(format!("{tag}B2_2"), fmap_out + 2, 3, c_out, c_out, 1);
    }

    add("FC1000".into(), 1, 1, 512, 1000, 1);
    Topology::from_layers("resnet18", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count() {
        assert_eq!(resnet18().len(), 1 + 4 + 3 * 5 + 1);
    }

    #[test]
    fn stage_extents_follow_the_halving_schedule() {
        let net = resnet18();
        let px = |name: &str| net.layer(name).unwrap().as_conv().unwrap().ofmap_h();
        assert_eq!(px("S1B1_1"), 56);
        assert_eq!(px("S2B1_1"), 28);
        assert_eq!(px("S3B1_1"), 14);
        assert_eq!(px("S4B2_2"), 7);
    }

    #[test]
    fn projection_matches_main_path_output() {
        let net = resnet18();
        for tag in ["S2", "S3", "S4"] {
            let proj = net
                .layer(&format!("{tag}B1_proj"))
                .unwrap()
                .as_conv()
                .unwrap();
            let main = net.layer(&format!("{tag}B1_2")).unwrap().as_conv().unwrap();
            assert_eq!(proj.num_filters(), main.num_filters(), "{tag}");
            assert_eq!(proj.ofmap_pixels(), main.ofmap_pixels(), "{tag}");
        }
    }

    #[test]
    fn total_macs_in_resnet18_ballpark() {
        // ResNet-18 is ~1.8 GMACs at 224x224.
        let macs = resnet18().total_macs();
        assert!((1_500_000_000..2_400_000_000).contains(&macs), "got {macs}");
    }
}
