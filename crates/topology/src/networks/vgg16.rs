//! VGG-16 (Simonyan & Zisserman) — the uniform all-3×3 workhorse; its
//! huge FC6 layer (25088 → 4096) is a classic bandwidth stress test.

use crate::{ConvLayer, Layer, Topology};

/// Builds the 16-layer VGG-16 topology (13 convolutions, 3 FC layers;
/// pooling elided, padding baked into IFMAP extents).
pub fn vgg16() -> Topology {
    let mut layers: Vec<Layer> = Vec::with_capacity(16);
    let mut add = |name: String, ih: u64, fh: u64, c: u64, nf: u64| {
        layers.push(Layer::Conv(
            ConvLayer::new(name, ih, ih, fh, fh, c, nf, 1).expect("built-in VGG-16 layer is valid"),
        ));
    };

    // (stage feature-map extent, input channels, output channels, convs)
    let stages: [(u64, u64, u64, u64); 5] = [
        (224, 3, 64, 2),
        (112, 64, 128, 2),
        (56, 128, 256, 3),
        (28, 256, 512, 3),
        (14, 512, 512, 3),
    ];
    for (si, (fmap, c_in, c_out, convs)) in stages.into_iter().enumerate() {
        for ci in 0..convs {
            let c = if ci == 0 { c_in } else { c_out };
            add(format!("Conv{}_{}", si + 1, ci + 1), fmap + 2, 3, c, c_out);
        }
    }
    add("FC6".into(), 1, 1, 512 * 7 * 7, 4096);
    add("FC7".into(), 1, 1, 4096, 4096);
    add("FC8".into(), 1, 1, 4096, 1000);

    Topology::from_layers("vgg16", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_layers() {
        assert_eq!(vgg16().len(), 16);
    }

    #[test]
    fn channel_chaining() {
        let net = vgg16();
        let c = |name: &str| net.layer(name).unwrap().as_conv().unwrap().channels();
        assert_eq!(c("Conv1_2"), 64);
        assert_eq!(c("Conv3_1"), 128);
        assert_eq!(c("Conv5_3"), 512);
        assert_eq!(c("FC6"), 25088);
    }

    #[test]
    fn total_macs_in_vgg16_ballpark() {
        // VGG-16 is ~15.5 GMACs at 224x224.
        let macs = vgg16().total_macs();
        assert!(
            (14_000_000_000..18_000_000_000).contains(&macs),
            "got {macs}"
        );
    }

    #[test]
    fn conv_extents_match_stage_plan() {
        let net = vgg16();
        let px = |name: &str| net.layer(name).unwrap().as_conv().unwrap().ofmap_h();
        assert_eq!(px("Conv1_1"), 224);
        assert_eq!(px("Conv4_2"), 28);
        assert_eq!(px("Conv5_3"), 14);
    }
}
