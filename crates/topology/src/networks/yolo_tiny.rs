//! YOLO-tiny — a compact detection backbone shipped with the original
//! SCALE-Sim release; all-3×3 convolutions with steadily growing channel
//! counts, a usefully different shape profile from ResNet bottlenecks.

use crate::{ConvLayer, Layer, Topology};

/// (name, ifmap_h, ifmap_w, filter_h, filter_w, channels, filters, stride).
type ConvRow = (&'static str, u64, u64, u64, u64, u64, u64, u64);

/// Builds the 9-convolution YOLO-tiny topology (padding baked into IFMAPs,
/// pooling layers elided — SCALE-Sim simulates only the convolutions).
pub fn yolo_tiny() -> Topology {
    let rows: [ConvRow; 9] = [
        ("Conv1", 418, 418, 3, 3, 3, 16, 1),
        ("Conv2", 210, 210, 3, 3, 16, 32, 1),
        ("Conv3", 106, 106, 3, 3, 32, 64, 1),
        ("Conv4", 54, 54, 3, 3, 64, 128, 1),
        ("Conv5", 28, 28, 3, 3, 128, 256, 1),
        ("Conv6", 15, 15, 3, 3, 256, 512, 1),
        ("Conv7", 15, 15, 3, 3, 512, 1024, 1),
        ("Conv8", 15, 15, 3, 3, 1024, 1024, 1),
        ("Conv9", 13, 13, 1, 1, 1024, 125, 1),
    ];
    let layers = rows
        .into_iter()
        .map(|(name, ih, iw, fh, fw, c, nf, s)| {
            Layer::Conv(
                ConvLayer::new(name, ih, iw, fh, fw, c, nf, s)
                    .expect("built-in YOLO-tiny layer is valid"),
            )
        })
        .collect();
    Topology::from_layers("yolo_tiny", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_layers() {
        assert_eq!(yolo_tiny().len(), 9);
    }

    #[test]
    fn first_layer_dominates_ofmap_pixels() {
        let net = yolo_tiny();
        let first = net.layers()[0].shape().m;
        let last = net.layers()[8].shape().m;
        assert!(first > last * 100);
    }
}
