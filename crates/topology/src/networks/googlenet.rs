//! GoogLeNet / Inception-v1 (Szegedy et al.) — shipped with the original
//! SCALE-Sim release. Its inception modules are exactly the "cells composed
//! of multiple convolution layers in parallel" that Section II-E of the
//! paper describes; SCALE-Sim serializes the branches in file order, and so
//! does this listing.

use crate::{ConvLayer, Layer, Topology};

/// Dimensions of one inception module's six convolutions.
struct Inception {
    tag: &'static str,
    /// Spatial extent of the (unpadded) feature map.
    fmap: u64,
    /// Input channels.
    c_in: u64,
    /// 1x1 branch filters.
    p1: u64,
    /// 3x3 branch: reduction filters, then 3x3 filters.
    p3_red: u64,
    p3: u64,
    /// 5x5 branch: reduction filters, then 5x5 filters.
    p5_red: u64,
    p5: u64,
    /// Pool-projection 1x1 filters.
    pool_proj: u64,
}

impl Inception {
    fn layers(&self, out: &mut Vec<Layer>) {
        let mut add = |suffix: &str, ifmap: u64, f: u64, c: u64, nf: u64| {
            let layer = ConvLayer::new(
                format!("{}_{suffix}", self.tag),
                ifmap,
                ifmap,
                f,
                f,
                c,
                nf,
                1,
            )
            .expect("built-in GoogLeNet layer is valid");
            out.push(Layer::Conv(layer));
        };
        add("1x1", self.fmap, 1, self.c_in, self.p1);
        add("3x3red", self.fmap, 1, self.c_in, self.p3_red);
        add("3x3", self.fmap + 2, 3, self.p3_red, self.p3);
        add("5x5red", self.fmap, 1, self.c_in, self.p5_red);
        add("5x5", self.fmap + 4, 5, self.p5_red, self.p5);
        add("pool_proj", self.fmap, 1, self.c_in, self.pool_proj);
    }

    fn c_out(&self) -> u64 {
        self.p1 + self.p3 + self.p5 + self.pool_proj
    }
}

/// Builds the 58-layer GoogLeNet topology (stem, 9 inception modules,
/// classifier; pooling elided as usual).
pub fn googlenet() -> Topology {
    fn add(layers: &mut Vec<Layer>, name: &str, ih: u64, fh: u64, c: u64, nf: u64, s: u64) {
        layers.push(Layer::Conv(
            ConvLayer::new(name, ih, ih, fh, fh, c, nf, s)
                .expect("built-in GoogLeNet layer is valid"),
        ));
    }
    let mut layers: Vec<Layer> = Vec::with_capacity(58);
    add(&mut layers, "Conv1", 230, 7, 3, 64, 2); // -> 112, pool -> 56
    add(&mut layers, "Conv2_red", 56, 1, 64, 64, 1);
    add(&mut layers, "Conv2", 58, 3, 64, 192, 1); // pool -> 28

    let modules = [
        Inception {
            tag: "3a",
            fmap: 28,
            c_in: 192,
            p1: 64,
            p3_red: 96,
            p3: 128,
            p5_red: 16,
            p5: 32,
            pool_proj: 32,
        },
        Inception {
            tag: "3b",
            fmap: 28,
            c_in: 256,
            p1: 128,
            p3_red: 128,
            p3: 192,
            p5_red: 32,
            p5: 96,
            pool_proj: 64,
        },
        Inception {
            tag: "4a",
            fmap: 14,
            c_in: 480,
            p1: 192,
            p3_red: 96,
            p3: 208,
            p5_red: 16,
            p5: 48,
            pool_proj: 64,
        },
        Inception {
            tag: "4b",
            fmap: 14,
            c_in: 512,
            p1: 160,
            p3_red: 112,
            p3: 224,
            p5_red: 24,
            p5: 64,
            pool_proj: 64,
        },
        Inception {
            tag: "4c",
            fmap: 14,
            c_in: 512,
            p1: 128,
            p3_red: 128,
            p3: 256,
            p5_red: 24,
            p5: 64,
            pool_proj: 64,
        },
        Inception {
            tag: "4d",
            fmap: 14,
            c_in: 512,
            p1: 112,
            p3_red: 144,
            p3: 288,
            p5_red: 32,
            p5: 64,
            pool_proj: 64,
        },
        Inception {
            tag: "4e",
            fmap: 14,
            c_in: 528,
            p1: 256,
            p3_red: 160,
            p3: 320,
            p5_red: 32,
            p5: 128,
            pool_proj: 128,
        },
        Inception {
            tag: "5a",
            fmap: 7,
            c_in: 832,
            p1: 256,
            p3_red: 160,
            p3: 320,
            p5_red: 32,
            p5: 128,
            pool_proj: 128,
        },
        Inception {
            tag: "5b",
            fmap: 7,
            c_in: 832,
            p1: 384,
            p3_red: 192,
            p3: 384,
            p5_red: 48,
            p5: 128,
            pool_proj: 128,
        },
    ];
    // Channel bookkeeping: each module's input must match the previous
    // module's concatenated output (checked in tests).
    for m in &modules {
        m.layers(&mut layers);
    }
    let last_out = modules.last().unwrap().c_out();
    add(&mut layers, "FC1000", 1, 1, last_out, 1000, 1);

    Topology::from_layers("googlenet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count() {
        assert_eq!(googlenet().len(), 3 + 9 * 6 + 1);
    }

    #[test]
    fn inception_channel_chaining_is_consistent() {
        // 3a out 256 feeds 3b; 3b out 480 feeds 4a; 4d out 528 feeds 4e;
        // 4e out 832 feeds 5a and 5b's input.
        let net = googlenet();
        let cin = |name: &str| net.layer(name).unwrap().as_conv().unwrap().channels();
        assert_eq!(cin("3b_1x1"), 256);
        assert_eq!(cin("4a_1x1"), 480);
        assert_eq!(cin("4e_1x1"), 528);
        assert_eq!(cin("5a_1x1"), 832);
        assert_eq!(cin("FC1000"), 1024);
    }

    #[test]
    fn total_macs_in_googlenet_ballpark() {
        // GoogLeNet is ~1.5 GMACs at 224x224 (convs only, padded stem).
        let macs = googlenet().total_macs();
        assert!((1_200_000_000..2_200_000_000).contains(&macs), "got {macs}");
    }

    #[test]
    fn branch_ofmaps_agree_within_a_module() {
        let net = googlenet();
        for tag in ["3a", "4c", "5b"] {
            let px = |suffix: &str| {
                net.layer(&format!("{tag}_{suffix}"))
                    .unwrap()
                    .as_conv()
                    .unwrap()
                    .ofmap_pixels()
            };
            assert_eq!(px("1x1"), px("3x3"), "{tag}");
            assert_eq!(px("1x1"), px("5x5"), "{tag}");
        }
    }
}
