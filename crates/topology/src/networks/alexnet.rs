//! AlexNet (Krizhevsky et al.) — shipped with the original SCALE-Sim
//! release; used here for small, fast examples and tests.

use crate::{ConvLayer, Layer, Topology};

/// (name, ifmap_h, ifmap_w, filter_h, filter_w, channels, filters, stride).
type ConvRow = (&'static str, u64, u64, u64, u64, u64, u64, u64);

/// Builds the 8-layer AlexNet topology (5 convolutions, 3 FC layers).
///
/// IFMAP extents include padding, following the SCALE-Sim topology file.
pub fn alexnet() -> Topology {
    let rows: [ConvRow; 8] = [
        ("Conv1", 227, 227, 11, 11, 3, 96, 4),
        ("Conv2", 31, 31, 5, 5, 96, 256, 1),
        ("Conv3", 15, 15, 3, 3, 256, 384, 1),
        ("Conv4", 15, 15, 3, 3, 384, 384, 1),
        ("Conv5", 15, 15, 3, 3, 384, 256, 1),
        ("FC6", 1, 1, 1, 1, 9216, 4096, 1),
        ("FC7", 1, 1, 1, 1, 4096, 4096, 1),
        ("FC8", 1, 1, 1, 1, 4096, 1000, 1),
    ];
    let layers = rows
        .into_iter()
        .map(|(name, ih, iw, fh, fw, c, nf, s)| {
            Layer::Conv(
                ConvLayer::new(name, ih, iw, fh, fw, c, nf, s)
                    .expect("built-in AlexNet layer is valid"),
            )
        })
        .collect();
    Topology::from_layers("alexnet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eight_layers() {
        assert_eq!(alexnet().len(), 8);
    }

    #[test]
    fn conv1_ofmap_is_55() {
        let net = alexnet();
        let c1 = net.layer("Conv1").unwrap().as_conv().unwrap();
        assert_eq!(c1.ofmap_h(), 55);
    }

    #[test]
    fn fc_layers_are_fully_connected() {
        let net = alexnet();
        for name in ["FC6", "FC7", "FC8"] {
            assert!(net
                .layer(name)
                .unwrap()
                .as_conv()
                .unwrap()
                .is_fully_connected());
        }
    }
}
