//! Built-in workloads used by the paper's evaluation (Section IV).
//!
//! * [`resnet50`] — the convolution + FC layers of ResNet-50 (He et al.),
//!   the CNN workload of Figs. 10–14.
//! * [`language_models`] — the ten language-model GEMMs of Table IV
//!   (GNMT, DeepSpeech2, Transformer, NCF).
//! * [`alexnet`], [`yolo_tiny`] — additional classic CNN topologies shipped
//!   with the original SCALE-Sim release, useful for examples and tests.
//!
//! All topologies encode padding into the IFMAP extents, matching the
//! original tool's topology files.

mod alexnet;
mod generators;
mod googlenet;
mod language;
mod mobilenet;
mod resnet18;
mod resnet50;
mod vgg16;
mod yolo_tiny;

pub use alexnet::alexnet;
pub use generators::{batched, mlp, transformer_encoder};
pub use googlenet::googlenet;
pub use language::{language_model, language_models, LANGUAGE_MODEL_NAMES};
pub use mobilenet::mobilenet_v1;
pub use resnet18::resnet18;
pub use resnet50::{resnet50, resnet50_edges};
pub use vgg16::vgg16;
pub use yolo_tiny::yolo_tiny;

use crate::Topology;

/// Resolves a workload name to a topology.
///
/// Accepts the built-in network names (case-insensitive: `resnet50`,
/// `resnet18`, `alexnet`, `googlenet`, `mobilenet`/`mobilenet_v1`,
/// `vgg16`, `yolo_tiny`, `language_models`) and the Table IV
/// language-model layer tags (`TF0`, `GNMT3`, ... — see
/// [`LANGUAGE_MODEL_NAMES`]), which resolve to single-layer topologies.
/// Returns `None` for unknown names — this is the shared vocabulary of the
/// CLI, the server and the sweep planner.
pub fn by_name(name: &str) -> Option<Topology> {
    match name.to_ascii_lowercase().as_str() {
        "resnet50" => Some(resnet50()),
        "resnet18" => Some(resnet18()),
        "alexnet" => Some(alexnet()),
        "googlenet" => Some(googlenet()),
        "mobilenet" | "mobilenet_v1" => Some(mobilenet_v1()),
        "vgg16" => Some(vgg16()),
        "yolo_tiny" => Some(yolo_tiny()),
        "language_models" => Some(language_models()),
        _ => {
            let tag = name.to_ascii_uppercase();
            let layer = language_model(&tag)?;
            Some(Topology::from_layers(tag, vec![layer]))
        }
    }
}

/// Every built-in topology, for sweep-style tests and examples.
pub fn all() -> Vec<Topology> {
    vec![
        resnet50(),
        resnet18(),
        alexnet(),
        googlenet(),
        mobilenet_v1(),
        vgg16(),
        yolo_tiny(),
        language_models(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_are_nonempty_and_valid() {
        for topo in all() {
            assert!(!topo.is_empty(), "{} has no layers", topo.name());
            for layer in &topo {
                if let Some(conv) = layer.as_conv() {
                    conv.validate().expect("built-in layer validates");
                }
                assert!(layer.macs() > 0);
            }
        }
    }

    #[test]
    fn by_name_resolves_networks_and_layer_tags() {
        assert_eq!(by_name("resnet50").unwrap().name(), "resnet50");
        assert_eq!(by_name("ResNet50").unwrap().name(), "resnet50");
        let tf0 = by_name("TF0").unwrap();
        assert_eq!(tf0.name(), "TF0");
        assert_eq!(tf0.len(), 1);
        assert_eq!(tf0.layers()[0].name(), "TF0");
        // Tags are matched case-insensitively too.
        assert_eq!(by_name("tf0").unwrap().name(), "TF0");
        assert!(by_name("no_such_workload").is_none());
    }

    #[test]
    fn layer_names_are_unique_within_each_network() {
        for topo in all() {
            let mut names: Vec<&str> = topo.iter().map(|l| l.name()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(
                before,
                names.len(),
                "duplicate layer names in {}",
                topo.name()
            );
        }
    }
}
