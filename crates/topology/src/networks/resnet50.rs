//! ResNet-50 (He et al., CVPR 2016) — the paper's CNN workload.
//!
//! Layer names follow the convention of the original SCALE-Sim topology
//! files, which the paper references in Figs. 10–11: `CB<stage><block>_<n>`
//! for the convolution-block (projection) residual blocks and
//! `ID<stage><block>_<n>` for identity blocks. Projection shortcuts are the
//! `_proj` layers. IFMAP extents include padding (e.g. the 3×3 layers list a
//! 58×58 input for a 56×56 feature map).

use crate::{ConvLayer, Layer, Topology};

/// Builds the full ResNet-50 topology: Conv1, 52 block convolutions +
/// 4 projection shortcuts, and the final 1000-way FC layer (54 layers total
/// in the main path representation used by SCALE-Sim).
pub fn resnet50() -> Topology {
    let mut layers: Vec<Layer> = Vec::with_capacity(54);
    let mut add = |name: &str, ih: u64, iw: u64, fh: u64, fw: u64, c: u64, nf: u64, s: u64| {
        let layer = ConvLayer::new(name, ih, iw, fh, fw, c, nf, s)
            .expect("built-in ResNet-50 layer is valid");
        layers.push(Layer::Conv(layer));
    };

    // Stem: 7x7/2 on the padded 230x230 RGB input -> 112x112x64.
    add("Conv1", 230, 230, 7, 7, 3, 64, 2);

    // Stage 2: three bottleneck blocks on the 56x56 map (64 -> 256).
    add("CB2a_proj", 56, 56, 1, 1, 64, 256, 1);
    add("CB2a_1", 56, 56, 1, 1, 64, 64, 1);
    add("CB2a_2", 58, 58, 3, 3, 64, 64, 1);
    add("CB2a_3", 56, 56, 1, 1, 64, 256, 1);
    for block in ["2b", "2c"] {
        add(&format!("ID{block}_1"), 56, 56, 1, 1, 256, 64, 1);
        add(&format!("ID{block}_2"), 58, 58, 3, 3, 64, 64, 1);
        add(&format!("ID{block}_3"), 56, 56, 1, 1, 64, 256, 1);
    }

    // Stage 3: four blocks on the 28x28 map (128 -> 512), stride-2 entry.
    add("CB3a_proj", 56, 56, 1, 1, 256, 512, 2);
    add("CB3a_1", 56, 56, 1, 1, 256, 128, 2);
    add("CB3a_2", 30, 30, 3, 3, 128, 128, 1);
    add("CB3a_3", 28, 28, 1, 1, 128, 512, 1);
    for block in ["3b", "3c", "3d"] {
        add(&format!("ID{block}_1"), 28, 28, 1, 1, 512, 128, 1);
        add(&format!("ID{block}_2"), 30, 30, 3, 3, 128, 128, 1);
        add(&format!("ID{block}_3"), 28, 28, 1, 1, 128, 512, 1);
    }

    // Stage 4: six blocks on the 14x14 map (256 -> 1024), stride-2 entry.
    add("CB4a_proj", 28, 28, 1, 1, 512, 1024, 2);
    add("CB4a_1", 28, 28, 1, 1, 512, 256, 2);
    add("CB4a_2", 16, 16, 3, 3, 256, 256, 1);
    add("CB4a_3", 14, 14, 1, 1, 256, 1024, 1);
    for block in ["4b", "4c", "4d", "4e", "4f"] {
        add(&format!("ID{block}_1"), 14, 14, 1, 1, 1024, 256, 1);
        add(&format!("ID{block}_2"), 16, 16, 3, 3, 256, 256, 1);
        add(&format!("ID{block}_3"), 14, 14, 1, 1, 256, 1024, 1);
    }

    // Stage 5: three blocks on the 7x7 map (512 -> 2048), stride-2 entry.
    add("CB5a_proj", 14, 14, 1, 1, 1024, 2048, 2);
    add("CB5a_1", 14, 14, 1, 1, 1024, 512, 2);
    add("CB5a_2", 9, 9, 3, 3, 512, 512, 1);
    add("CB5a_3", 7, 7, 1, 1, 512, 2048, 1);
    for block in ["5b", "5c"] {
        add(&format!("ID{block}_1"), 7, 7, 1, 1, 2048, 512, 1);
        add(&format!("ID{block}_2"), 9, 9, 3, 3, 512, 512, 1);
        add(&format!("ID{block}_3"), 7, 7, 1, 1, 512, 2048, 1);
    }

    // Classifier: FC expressed as a whole-IFMAP convolution (paper Sec. II-E).
    add("FC1000", 1, 1, 1, 1, 2048, 1000, 1);

    Topology::from_layers("resnet50", layers)
}

/// The "first and last five convolution and fully connected layers" subset
/// used by Fig. 10(a) of the paper.
pub fn resnet50_edges() -> Topology {
    let full = resnet50();
    let n = full.len();
    let layers: Vec<Layer> = full
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 5 || *i >= n - 5)
        .map(|(_, l)| l.clone())
        .collect();
    Topology::from_layers("resnet50_edges", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_matches_bottleneck_structure() {
        // 1 stem + (3+4+6+3) blocks * 3 convs + 4 projections + 1 FC = 54.
        assert_eq!(resnet50().len(), 54);
    }

    #[test]
    fn stage_transitions_have_expected_ofmaps() {
        let net = resnet50();
        let conv1 = net.layer("Conv1").unwrap().as_conv().unwrap();
        assert_eq!((conv1.ofmap_h(), conv1.ofmap_w()), (112, 112));
        let cb3 = net.layer("CB3a_2").unwrap().as_conv().unwrap();
        assert_eq!((cb3.ofmap_h(), cb3.ofmap_w()), (28, 28));
        let cb5 = net.layer("ID5c_2").unwrap().as_conv().unwrap();
        assert_eq!((cb5.ofmap_h(), cb5.ofmap_w()), (7, 7));
    }

    #[test]
    fn total_macs_in_resnet50_ballpark() {
        // ResNet-50 is ~3.8-4.1 GMACs at 224x224 (this listing excludes
        // pooling and counts the padded stem).
        let macs = resnet50().total_macs();
        assert!((3_500_000_000..5_000_000_000).contains(&macs), "got {macs}");
    }

    #[test]
    fn edges_subset_has_ten_layers_from_both_ends() {
        let edges = resnet50_edges();
        assert_eq!(edges.len(), 10);
        assert_eq!(edges.layers()[0].name(), "Conv1");
        assert_eq!(edges.layers()[9].name(), "FC1000");
    }

    #[test]
    fn fc_layer_is_fully_connected() {
        let net = resnet50();
        let fc = net.layer("FC1000").unwrap().as_conv().unwrap();
        assert!(fc.is_fully_connected());
        assert_eq!(fc.shape().n, 1000);
    }
}
