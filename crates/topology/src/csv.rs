//! The topology CSV file format (Table II of the paper).
//!
//! Each row lists: `Layer name, IFMAP Height, IFMAP Width, Filter Height,
//! Filter Width, Channels, Num Filter, Strides`. A header row is detected and
//! skipped; trailing commas (present in the original SCALE-Sim files) are
//! tolerated. As an extension, a 4-column row `name, M, K, N` describes a raw
//! GEMM layer (the format SCALE-Sim later adopted for language models).

use crate::{ConvLayerBuilder, Layer, ParseTopologyError, Topology};

const CONV_COLUMNS: [&str; 8] = [
    "Layer name",
    "IFMAP Height",
    "IFMAP Width",
    "Filter Height",
    "Filter Width",
    "Channels",
    "Num Filter",
    "Strides",
];

/// Parses a topology file's contents.
///
/// ```
/// use scalesim_topology::parse_topology_csv;
///
/// let text = "\
/// Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
/// Conv1,230,230,7,7,3,64,2,
/// TF0,31999,84,1024
/// ";
/// let topo = parse_topology_csv("mixed", text)?;
/// assert_eq!(topo.len(), 2);
/// assert_eq!(topo.layers()[1].shape().n, 1024);
/// # Ok::<(), scalesim_topology::ParseTopologyError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseTopologyError`] when a row is malformed, a field is not a
/// number, a layer fails validation, or the file contains no layers.
pub fn parse_topology_csv(name: &str, text: &str) -> Result<Topology, ParseTopologyError> {
    let mut topo = Topology::new(name);
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Drop empty trailing fields caused by trailing commas.
        let fields: Vec<&str> = {
            let mut f = fields;
            while f.last().is_some_and(|s| s.is_empty()) {
                f.pop();
            }
            f
        };
        if fields.is_empty() {
            continue;
        }
        // Header detection: the second field of a data row is numeric.
        if fields.len() >= 2 && fields[1].parse::<u64>().is_err() && topo.is_empty() {
            continue;
        }
        topo.push(parse_row(line_no, &fields)?);
    }
    if topo.is_empty() {
        return Err(ParseTopologyError::Empty);
    }
    Ok(topo)
}

fn parse_row(line: usize, fields: &[&str]) -> Result<Layer, ParseTopologyError> {
    match fields.len() {
        4 => parse_gemm_row(line, fields),
        8.. => parse_conv_row(line, fields),
        n => {
            // Report the first column that is missing from the conv format.
            let column = if n == 0 {
                CONV_COLUMNS[0]
            } else {
                CONV_COLUMNS[n]
            };
            Err(ParseTopologyError::MissingColumn { line, column })
        }
    }
}

fn parse_num(line: usize, column: &'static str, text: &str) -> Result<u64, ParseTopologyError> {
    text.parse::<u64>()
        .map_err(|_| ParseTopologyError::InvalidNumber {
            line,
            column,
            text: text.to_owned(),
        })
}

fn parse_conv_row(line: usize, fields: &[&str]) -> Result<Layer, ParseTopologyError> {
    let name = fields[0];
    let nums: Vec<u64> = fields[1..8]
        .iter()
        .zip(&CONV_COLUMNS[1..8])
        .map(|(text, col)| parse_num(line, col, text))
        .collect::<Result<_, _>>()?;
    let layer = ConvLayerBuilder::new(name)
        .ifmap(nums[0], nums[1])
        .filter(nums[2], nums[3])
        .channels(nums[4])
        .num_filters(nums[5])
        .stride(nums[6])
        .build()
        .map_err(|source| ParseTopologyError::InvalidLayer { line, source })?;
    Ok(Layer::Conv(layer))
}

fn parse_gemm_row(line: usize, fields: &[&str]) -> Result<Layer, ParseTopologyError> {
    let name = fields[0];
    let m = parse_num(line, "M", fields[1])?;
    let k = parse_num(line, "K", fields[2])?;
    let n = parse_num(line, "N", fields[3])?;
    if m == 0 || k == 0 || n == 0 {
        return Err(ParseTopologyError::InvalidLayer {
            line,
            source: crate::ValidateLayerError::ZeroDimension { field: "gemm dim" },
        });
    }
    Ok(Layer::gemm(name, m, k, n))
}

/// Serializes a topology back to the Table II CSV format.
///
/// Conv layers are emitted as 8-column rows (with the trailing comma the
/// original tool writes); GEMM layers as 4-column rows. The output parses
/// back to an equal topology via [`parse_topology_csv`].
pub fn topology_to_csv(topology: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&CONV_COLUMNS.join(", "));
    out.push_str(",\n");
    for layer in topology {
        match layer {
            Layer::Conv(c) => {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},\n",
                    c.name(),
                    c.ifmap_h(),
                    c.ifmap_w(),
                    c.filter_h(),
                    c.filter_w(),
                    c.channels(),
                    c.num_filters(),
                    c.stride_h(),
                ));
            }
            Layer::Gemm { name, shape } => {
                out.push_str(&format!("{},{},{},{}\n", name, shape.m, shape.k, shape.n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn parses_conv_rows_with_header_and_trailing_commas() {
        let text = "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,\n\
                    Conv1,230,230,7,7,3,64,2,\n";
        let t = parse_topology_csv("net", text).unwrap();
        assert_eq!(t.len(), 1);
        let c = t.layers()[0].as_conv().unwrap();
        assert_eq!(c.num_filters(), 64);
        assert_eq!(c.stride_h(), 2);
    }

    #[test]
    fn parses_gemm_rows() {
        let t = parse_topology_csv("lm", "TF0,31999,84,1024\n").unwrap();
        assert_eq!(t.layers()[0].shape().m, 31999);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let t = parse_topology_csv("n", "\n# comment\nA,1,1,1\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_file_is_an_error() {
        assert_eq!(
            parse_topology_csv("n", "# nothing\n").unwrap_err(),
            ParseTopologyError::Empty
        );
    }

    #[test]
    fn reports_missing_column() {
        let err = parse_topology_csv("n", "Conv1,1,1,1,1,1\n").unwrap_err();
        match err {
            ParseTopologyError::MissingColumn { line: 1, column } => {
                assert_eq!(column, "Num Filter");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn reports_bad_number_with_location() {
        let err = parse_topology_csv("n", "Conv1,230,ab,7,7,3,64,2\n").unwrap_err();
        match err {
            ParseTopologyError::InvalidNumber { line, column, text } => {
                assert_eq!(line, 1);
                assert_eq!(column, "IFMAP Width");
                assert_eq!(text, "ab");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn reports_invalid_layer() {
        let err = parse_topology_csv("n", "Conv1,2,2,7,7,3,64,2\n").unwrap_err();
        assert!(matches!(
            err,
            ParseTopologyError::InvalidLayer { line: 1, .. }
        ));
    }

    #[test]
    fn zero_gemm_dim_rejected() {
        assert!(parse_topology_csv("n", "G,0,1,1\n").is_err());
    }

    #[test]
    fn round_trip_resnet50() {
        let original = networks::resnet50();
        let text = topology_to_csv(&original);
        let parsed = parse_topology_csv(original.name(), &text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn round_trip_language_models() {
        let original = networks::language_models();
        let text = topology_to_csv(&original);
        let parsed = parse_topology_csv(original.name(), &text).unwrap();
        assert_eq!(parsed, original);
    }
}
