#![warn(missing_docs)]

//! Workload descriptions for `scale-sim-rs`.
//!
//! This crate implements the *input side* of SCALE-Sim (Samajdar et al.,
//! ISPASS 2020): neural-network layer descriptions, the topology CSV file
//! format of Table II, the spatio-temporal GEMM projection of Table III, and
//! a library of built-in networks used throughout the paper's evaluation
//! (ResNet-50, AlexNet, YOLO-tiny and the Table IV language-model layers).
//!
//! # Quick example
//!
//! ```
//! use scalesim_topology::{networks, Dataflow};
//!
//! let resnet = networks::resnet50();
//! let conv1 = resnet.layers()[0].as_conv().unwrap();
//! // Project the layer onto the systolic array dimensions for the
//! // output-stationary dataflow (Table III of the paper).
//! let dims = conv1.shape().project(Dataflow::OutputStationary);
//! assert_eq!(dims.spatial_rows, conv1.ofmap_pixels());
//! assert_eq!(dims.spatial_cols, conv1.num_filters());
//! ```

mod csv;
mod dataflow;
mod error;
mod gemm;
mod layer;
pub mod networks;
mod topology;

pub use crate::csv::{parse_topology_csv, topology_to_csv};
pub use crate::dataflow::Dataflow;
pub use crate::error::{ParseTopologyError, ValidateLayerError};
pub use crate::gemm::{GemmShape, MappedDims};
pub use crate::layer::{ConvLayer, ConvLayerBuilder, Layer};
pub use crate::topology::Topology;
